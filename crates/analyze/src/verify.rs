//! Independent plan-invariant verifier.
//!
//! Re-derives, from scratch and along a code path entirely separate from
//! `dmac_core::cost`, everything the planner claims about a plan:
//!
//! * the **Table-2 dependency type** of every non-compute step and the
//!   §4.1 cost-model bytes that type implies (free → 0, partition →
//!   `|A|`, broadcast → `N·|A|`, CPMM output → `N·|AB|`), asserting
//!   **exact** per-step and total agreement with the planner's
//!   predictions and `estimated_comm`;
//! * **scheme compatibility** of every compute step's inputs against the
//!   candidate table ([`dmac_core::strategy::candidates`]);
//! * structural legality of every extended operator (partition targets
//!   Row/Col, extract reads a broadcast copy, transpose flips handedness
//!   and scheme, pulled-up broadcast+extract pairs are well-formed);
//! * plan well-formedness: nodes defined before use and at most once, no
//!   leftover flexible nodes, every program operator planned exactly
//!   once, outputs bound with the right handedness;
//! * the §5.2 **stage invariant**: stages are separated only by
//!   partition/broadcast (or CPMM-shuffle) boundaries;
//! * the **sparsity estimator**: every profile's shape and hard nnz cap
//!   (V14), byte-exact agreement between the planner's propagated
//!   profiles and a re-derivation of the estimator rules implemented
//!   here from the documented contract — deliberately *not* calling
//!   `dmac-stats` (V15), per-step predicted-nnz consistency (V16), and
//!   the dense anchor: all-dense sources must reproduce the worst-case
//!   Table-2 byte sizes exactly (V17).
//!
//! Installed behind `dmac_core::verifyhook`, the verifier runs on every
//! debug-build `Session::{plan, prepare, run}`, so any drift between the
//! planner's bookkeeping and its emitted plans fails loudly.

use std::collections::HashMap;

use dmac_cluster::PartitionScheme;
use dmac_core::plan::{FusedInstr, Plan, PlanStep};
use dmac_core::planner::{Planned, PlannerConfig};
use dmac_core::stage;
use dmac_core::strategy::{candidates, OutScheme, Strategy};
use dmac_core::SparsityProfile;
use dmac_lang::{BinOp, MatrixId, MatrixOrigin, OpKind, Program, ScalarExpr, UnaryOp};

/// What the verifier concluded (returned on success for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifySummary {
    /// Steps checked.
    pub steps: usize,
    /// Steps classified as communication.
    pub comm_steps: usize,
    /// Independently recomputed total communication bytes.
    pub recomputed_comm: u64,
    /// Number of §5.2 stages.
    pub stages: usize,
}

/// The Table-2 dependency type of a non-compute plan step, re-derived
/// from the step's endpoint nodes alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DepType {
    Reference,
    Transpose,
    Extract,
    Partition,
    TransposePartition,
    Broadcast,
    TransposeBroadcast,
}

impl DepType {
    fn name(self) -> &'static str {
        match self {
            DepType::Reference => "Reference",
            DepType::Transpose => "Transpose",
            DepType::Extract => "Extract",
            DepType::Partition => "Partition",
            DepType::TransposePartition => "TransposePartition",
            DepType::Broadcast => "Broadcast",
            DepType::TransposeBroadcast => "TransposeBroadcast",
        }
    }

    /// §4.1: the event bytes this dependency type costs.
    fn bytes(self, size: u64, workers: u64) -> u64 {
        match self {
            DepType::Reference | DepType::Transpose | DepType::Extract => 0,
            DepType::Partition | DepType::TransposePartition => size,
            DepType::Broadcast | DepType::TransposeBroadcast => workers * size,
        }
    }
}

// ---------------------------------------------------------------------
// Sparsity-estimator re-derivation (V14–V17).
//
// The formulas below are written from the *documented contract* in
// `dmac-stats`' crate docs, not by calling its code: same pinned f64
// operation order, independent implementation. Agreement is asserted
// byte-exactly (`f64::to_bits`), so any drift in either side trips V15.
// ---------------------------------------------------------------------

/// The verifier's own profile record (mirrors the published contract).
#[derive(Debug, Clone, PartialEq)]
struct NnzProfile {
    rows: usize,
    cols: usize,
    nnz: u64,
    row: Vec<f64>,
    col: Vec<f64>,
}

/// Strip count along one dimension (matches the block layer: at least 1).
fn strips(len: usize, block: usize) -> usize {
    len.div_ceil(block.max(1)).max(1)
}

/// Length of strip `i`.
fn strip(len: usize, block: usize, i: usize) -> usize {
    (len - i * block).min(block)
}

impl NnzProfile {
    fn dense(rows: usize, cols: usize, block: usize) -> NnzProfile {
        NnzProfile {
            rows,
            cols,
            nnz: rows as u64 * cols as u64,
            row: (0..strips(rows, block))
                .map(|i| (strip(rows, block, i) * cols) as f64)
                .collect(),
            col: (0..strips(cols, block))
                .map(|j| (rows * strip(cols, block, j)) as f64)
                .collect(),
        }
    }

    fn flipped(&self) -> NnzProfile {
        NnzProfile {
            rows: self.cols,
            cols: self.rows,
            nnz: self.nnz,
            row: self.col.clone(),
            col: self.row.clone(),
        }
    }
}

/// Add/Sub: union bound, saturating at matrix and per-strip capacity.
fn rederive_sum(a: &NnzProfile, b: &NnzProfile, block: usize) -> NnzProfile {
    let (rows, cols) = (a.rows, a.cols);
    NnzProfile {
        rows,
        cols,
        nnz: a.nnz.saturating_add(b.nnz).min(rows as u64 * cols as u64),
        row: (0..a.row.len())
            .map(|i| {
                let cap = (strip(rows, block, i) * cols) as f64;
                (a.row[i] + b.row[i]).min(cap)
            })
            .collect(),
        col: (0..a.col.len())
            .map(|j| {
                let cap = (rows * strip(cols, block, j)) as f64;
                (a.col[j] + b.col[j]).min(cap)
            })
            .collect(),
    }
}

/// CellMul/CellDiv: intersection bound, element-wise min.
fn rederive_min(a: &NnzProfile, b: &NnzProfile) -> NnzProfile {
    NnzProfile {
        rows: a.rows,
        cols: a.cols,
        nnz: a.nnz.min(b.nnz),
        row: (0..a.row.len()).map(|i| a.row[i].min(b.row[i])).collect(),
        col: (0..a.col.len()).map(|j| a.col[j].min(b.col[j])).collect(),
    }
}

/// MatMul: the MatFast expectation under independence, with the pinned
/// f64 operation order of the documented contract.
// Index loops are deliberate: the re-derivation must not share code
// *shape* with dmac-stats' iterator implementation, only its arithmetic.
#[allow(clippy::needless_range_loop)]
fn rederive_matmul(a: &NnzProfile, b: &NnzProfile, block: usize) -> NnzProfile {
    let (m, n, p) = (a.rows, a.cols, b.cols);
    let mut row = vec![0.0f64; strips(m, block)];
    let mut col = vec![0.0f64; strips(p, block)];
    let mut total = 0.0f64;
    for i in 0..row.len() {
        let r_i = strip(m, block, i);
        let d_a = if r_i * n > 0 {
            a.row[i] / (r_i * n) as f64
        } else {
            0.0
        };
        for j in 0..col.len() {
            let c_j = strip(p, block, j);
            let d_b = if n * c_j > 0 {
                b.col[j] / (n * c_j) as f64
            } else {
                0.0
            };
            let d = (d_a * d_b).clamp(0.0, 1.0);
            let p_ij = 1.0 - (1.0 - d).powi(n as i32);
            let e_ij = (r_i * c_j) as f64 * p_ij;
            row[i] += e_ij;
            col[j] += e_ij;
            total += e_ij;
        }
    }
    NnzProfile {
        rows: m,
        cols: p,
        nnz: (total.ceil() as u64).min(m as u64 * p as u64),
        row,
        col,
    }
}

/// The densifying-unary condition (a non-zero constant `add_scalar`).
fn rederive_densifies(op: &UnaryOp) -> bool {
    match op {
        UnaryOp::AddScalar(ScalarExpr::Const(v)) => *v != 0.0,
        UnaryOp::AddScalar(_) => true,
        UnaryOp::Scale(_) => false,
    }
}

/// V14: every claimed profile has the declared shape, strip vectors of
/// the right length at the planning blocking, finite non-negative strip
/// masses, and respects the hard cap `nnz ≤ rows·cols`.
fn check_profile_shapes(
    program: &Program,
    profiles: &[SparsityProfile],
    block: usize,
) -> Result<(), String> {
    if profiles.len() != program.matrices().len() {
        return Err(format!(
            "V14: {} profiles for {} declared matrices",
            profiles.len(),
            program.matrices().len()
        ));
    }
    for (decl, p) in program.matrices().iter().zip(profiles) {
        let m = decl.id;
        if (p.rows, p.cols) != (decl.stats.rows, decl.stats.cols) {
            return Err(format!(
                "V14: profile of matrix {m} is {}x{}, declared {}x{}",
                p.rows, p.cols, decl.stats.rows, decl.stats.cols
            ));
        }
        if p.block != block {
            return Err(format!(
                "V14: profile of matrix {m} uses blocking {} instead of {block}",
                p.block
            ));
        }
        if p.row_nnz.len() != strips(p.rows, block) || p.col_nnz.len() != strips(p.cols, block) {
            return Err(format!(
                "V14: profile of matrix {m} has {}x{} strip vectors, expected {}x{}",
                p.row_nnz.len(),
                p.col_nnz.len(),
                strips(p.rows, block),
                strips(p.cols, block)
            ));
        }
        if p.nnz > p.rows as u64 * p.cols as u64 {
            return Err(format!(
                "V14: profile of matrix {m} claims {} non-zeros in a {}x{} matrix",
                p.nnz, p.rows, p.cols
            ));
        }
        if let Some(v) = p
            .row_nnz
            .iter()
            .chain(&p.col_nnz)
            .find(|v| !v.is_finite() || **v < 0.0)
        {
            return Err(format!(
                "V14: profile of matrix {m} has an invalid strip mass {v}"
            ));
        }
    }
    Ok(())
}

/// Re-derive every operator-produced (and `Random`) profile from the
/// estimator contract. `Load` sources are data-dependent measurements
/// the verifier cannot reproduce, so they are taken as given — V14
/// bounds them — and everything downstream is recomputed from them.
fn rederive_profiles(
    program: &Program,
    claimed: &[SparsityProfile],
    block: usize,
) -> Result<Vec<NnzProfile>, String> {
    let mut out: Vec<NnzProfile> = Vec::with_capacity(claimed.len());
    for decl in program.matrices() {
        let p = match decl.origin {
            MatrixOrigin::Load => {
                let c = &claimed[decl.id as usize];
                NnzProfile {
                    rows: c.rows,
                    cols: c.cols,
                    nnz: c.nnz,
                    row: c.row_nnz.clone(),
                    col: c.col_nnz.clone(),
                }
            }
            MatrixOrigin::Random => NnzProfile::dense(decl.stats.rows, decl.stats.cols, block),
            MatrixOrigin::Op(i) => {
                let op = program
                    .ops()
                    .get(i)
                    .ok_or_else(|| format!("V15: matrix {} from unknown operator {i}", decl.id))?;
                let arg = |r: &dmac_lang::MatrixRef| -> NnzProfile {
                    let p = &out[r.id as usize];
                    if r.transposed {
                        p.flipped()
                    } else {
                        p.clone()
                    }
                };
                match &op.kind {
                    OpKind::Binary { op, lhs, rhs } => {
                        let (a, b) = (arg(lhs), arg(rhs));
                        match op {
                            BinOp::MatMul => rederive_matmul(&a, &b, block),
                            BinOp::Add | BinOp::Sub => rederive_sum(&a, &b, block),
                            BinOp::CellMul | BinOp::CellDiv => rederive_min(&a, &b),
                        }
                    }
                    OpKind::Unary { op, input } => {
                        let a = arg(input);
                        if rederive_densifies(op) {
                            NnzProfile::dense(a.rows, a.cols, block)
                        } else {
                            a
                        }
                    }
                    OpKind::Reduce { .. } => NnzProfile {
                        rows: decl.stats.rows,
                        cols: decl.stats.cols,
                        nnz: 0,
                        row: vec![0.0; strips(decl.stats.rows, block)],
                        col: vec![0.0; strips(decl.stats.cols, block)],
                    },
                }
            }
        };
        out.push(p);
    }
    Ok(out)
}

/// V15: the planner's propagated profiles agree with the re-derivation
/// byte-exactly (`f64::to_bits` on every strip mass).
fn check_profile_agreement(
    rederived: &[NnzProfile],
    claimed: &[SparsityProfile],
) -> Result<(), String> {
    for (m, (r, c)) in rederived.iter().zip(claimed).enumerate() {
        if r.nnz != c.nnz {
            return Err(format!(
                "V15: matrix {m} profile claims nnz {} but re-derivation gives {}",
                c.nnz, r.nnz
            ));
        }
        let bits_eq = |x: &[f64], y: &[f64]| {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
        };
        if !bits_eq(&r.row, &c.row_nnz) || !bits_eq(&r.col, &c.col_nnz) {
            return Err(format!(
                "V15: matrix {m} strip vectors diverge from the re-derived estimator"
            ));
        }
    }
    Ok(())
}

/// Verify every invariant of a planner-produced [`Planned`]. Returns a
/// summary on success and a message naming the violated invariant (`Vxx`)
/// and step on failure.
pub fn verify_planned(
    program: &Program,
    planned: &Planned,
    cfg: &PlannerConfig,
    workers: usize,
) -> Result<VerifySummary, String> {
    let block = cfg.fusion_block.max(1);
    check_profile_shapes(program, &planned.profiles, block)?;
    let profiles = rederive_profiles(program, &planned.profiles, block)?;
    check_profile_agreement(&profiles, &planned.profiles)?;
    let v = Verifier {
        program,
        plan: &planned.plan,
        cfg,
        workers: workers as u64,
        profiles,
    };
    let summary = v.run(planned.estimated_comm)?;
    crate::liveness::check_liveness(program, planned, cfg)?;
    Ok(summary)
}

struct Verifier<'a> {
    program: &'a Program,
    plan: &'a Plan,
    cfg: &'a PlannerConfig,
    workers: u64,
    /// The re-derived estimator profiles (already proven byte-equal to
    /// the planner's own, V15).
    profiles: Vec<NnzProfile>,
}

impl<'a> Verifier<'a> {
    /// `|A|` — bytes of a program matrix, recomputed along a path
    /// deliberately separate from `dmac_core::cost`: 8 bytes per
    /// re-derived predicted non-zero under `density_adaptive`, else the
    /// worst-case static estimate from the declared stats (both
    /// transposition invariant).
    fn size(&self, m: MatrixId) -> Result<u64, String> {
        let d = self
            .program
            .decl(m)
            .map_err(|e| format!("V01: plan references unknown matrix {m}: {e}"))?;
        if self.cfg.density_adaptive {
            let p = self
                .profiles
                .get(m as usize)
                .ok_or_else(|| format!("V14: no profile for matrix {m}"))?;
            Ok(8 * p.nnz)
        } else {
            let s = d.stats;
            Ok((s.rows as f64 * s.cols as f64 * s.sparsity * 8.0).ceil() as u64)
        }
    }

    fn run(&self, estimated_comm: u64) -> Result<VerifySummary, String> {
        self.check_nodes()?;
        self.check_definitions()?;
        let recomputed = self.check_steps()?;
        self.check_op_coverage()?;
        self.check_outputs()?;
        let stages = self.check_stages()?;
        self.check_step_nnz()?;
        self.check_dense_anchor()?;

        // V02: totals. The per-step predictions must tile the planner's
        // own estimate, and our independent recomputation must agree with
        // both, byte for byte.
        let predicted_total = self.plan.predicted_total();
        if predicted_total != estimated_comm {
            return Err(format!(
                "V02: per-step predictions sum to {predicted_total} but the planner \
                 estimated {estimated_comm}"
            ));
        }
        if recomputed != estimated_comm {
            return Err(format!(
                "V02: independent cost recomputation gives {recomputed} bytes but the \
                 planner estimated {estimated_comm}"
            ));
        }

        Ok(VerifySummary {
            steps: self.plan.steps.len(),
            comm_steps: self.plan.steps.iter().filter(|s| s.is_comm()).count(),
            recomputed_comm: recomputed,
            stages,
        })
    }

    /// V03: no flexible nodes survive finalisation; every node's matrix
    /// exists; Hash never appears transposed (sources are untransposed and
    /// nothing transposes *into* Hash placement).
    fn check_nodes(&self) -> Result<(), String> {
        for (i, n) in self.plan.nodes.iter().enumerate() {
            if n.flexible {
                return Err(format!(
                    "V03: node {i} ({}) is still flexible after finalisation",
                    self.plan.node_label(self.program, i)
                ));
            }
            self.size(n.matrix)?;
        }
        Ok(())
    }

    /// V04: every node is defined exactly once (as a source or as exactly
    /// one step's output) and every step reads only already-defined nodes.
    fn check_definitions(&self) -> Result<(), String> {
        let mut defined = vec![false; self.plan.nodes.len()];
        for &(n, m) in &self.plan.sources {
            let node = self
                .plan
                .nodes
                .get(n)
                .ok_or_else(|| format!("V04: source entry references missing node {n}"))?;
            if node.matrix != m {
                return Err(format!(
                    "V04: source entry says node {n} holds matrix {m} but the node \
                     holds matrix {}",
                    node.matrix
                ));
            }
            if node.transposed {
                return Err(format!("V04: source node {n} is transposed"));
            }
            defined[n] = true;
        }
        for (i, step) in self.plan.steps.iter().enumerate() {
            for r in step.in_nodes() {
                if !defined.get(r).copied().unwrap_or(false) {
                    return Err(format!("V04: step {i} reads node {r} before it is defined"));
                }
            }
            if let Some(out) = step.out_node() {
                if out >= self.plan.nodes.len() {
                    return Err(format!("V04: step {i} defines missing node {out}"));
                }
                if defined[out] {
                    return Err(format!("V04: step {i} redefines node {out}"));
                }
                defined[out] = true;
            }
        }
        Ok(())
    }

    /// Per-step structural checks + independent cost recomputation.
    /// Returns the recomputed total.
    fn check_steps(&self) -> Result<u64, String> {
        let mut total = 0u64;
        for (i, step) in self.plan.steps.iter().enumerate() {
            let expect = match step {
                PlanStep::Partition { src, out, .. }
                | PlanStep::Broadcast { src, out, .. }
                | PlanStep::Transpose { src, out, .. }
                | PlanStep::Extract { src, out, .. }
                | PlanStep::Reference { src, out, .. } => {
                    let dep = self.classify_extended(i, step, *src, *out)?;
                    dep.bytes(self.size(self.plan.nodes[*src].matrix)?, self.workers)
                }
                PlanStep::Compute {
                    op,
                    strategy,
                    inputs,
                    out,
                    out_scalar,
                    ..
                } => self.check_compute(i, *op, *strategy, inputs, *out, *out_scalar)?,
                PlanStep::FusedCellWise {
                    ops,
                    prog,
                    inputs,
                    out,
                    ..
                } => {
                    self.check_fused(i, ops, prog, inputs, *out)?;
                    0
                }
                // Frees are local releases: no communication, no cost.
                PlanStep::Free { .. } => 0,
            };
            let predicted = self.plan.predicted_bytes(i);
            if predicted != expect {
                return Err(format!(
                    "V05: step {i} predicted {predicted} bytes, independent recomputation \
                     gives {expect}"
                ));
            }
            total += expect;
        }
        Ok(total)
    }

    /// Classify an extended-operator step into its Table-2 dependency type
    /// from its endpoint nodes, and check the step kind actually matches
    /// that classification.
    fn classify_extended(
        &self,
        i: usize,
        step: &PlanStep,
        src: usize,
        out: usize,
    ) -> Result<DepType, String> {
        let s = &self.plan.nodes[src];
        let o = &self.plan.nodes[out];
        if s.matrix != o.matrix {
            return Err(format!(
                "V06: step {i} relates different matrices {} and {}",
                s.matrix, o.matrix
            ));
        }
        let flipped = s.transposed != o.transposed;
        let dep = match step {
            PlanStep::Reference { .. } => {
                if flipped || s.scheme != o.scheme {
                    return Err(format!(
                        "V06: step {i} reference must preserve handedness and scheme \
                         ({} -> {})",
                        self.plan.node_label(self.program, src),
                        self.plan.node_label(self.program, out)
                    ));
                }
                DepType::Reference
            }
            PlanStep::Transpose { .. } => {
                if !flipped || o.scheme != s.scheme.flip() {
                    return Err(format!(
                        "V06: step {i} transpose must flip handedness and scheme \
                         ({} -> {})",
                        self.plan.node_label(self.program, src),
                        self.plan.node_label(self.program, out)
                    ));
                }
                DepType::Transpose
            }
            PlanStep::Extract { .. } => {
                if s.scheme != PartitionScheme::Broadcast || !o.scheme.is_rc() || flipped {
                    return Err(format!(
                        "V06: step {i} extract must filter a broadcast copy of the same \
                         handedness down to Row/Col ({} -> {})",
                        self.plan.node_label(self.program, src),
                        self.plan.node_label(self.program, out)
                    ));
                }
                DepType::Extract
            }
            PlanStep::Partition { .. } => {
                if !o.scheme.is_rc() {
                    return Err(format!(
                        "V06: step {i} partition targets {}, not Row/Col",
                        o.scheme
                    ));
                }
                if flipped {
                    DepType::TransposePartition
                } else {
                    DepType::Partition
                }
            }
            PlanStep::Broadcast { .. } => {
                if o.scheme != PartitionScheme::Broadcast {
                    return Err(format!(
                        "V06: step {i} broadcast targets {}, not Broadcast",
                        o.scheme
                    ));
                }
                if flipped {
                    DepType::TransposeBroadcast
                } else {
                    DepType::Broadcast
                }
            }
            _ => unreachable!("classify_extended is only called on extended operators"),
        };
        // The planner always reconciles handedness locally before paying a
        // communication step, so the transpose-flavoured paid types must
        // never be emitted.
        if matches!(
            dep,
            DepType::TransposePartition | DepType::TransposeBroadcast
        ) {
            return Err(format!(
                "V06: step {i} is a {} — the planner must transpose locally first",
                dep.name()
            ));
        }
        Ok(dep)
    }

    /// Check a compute step against the candidate table; returns its
    /// independently recomputed output-event bytes.
    #[allow(clippy::too_many_arguments)]
    fn check_compute(
        &self,
        i: usize,
        op_idx: usize,
        strategy: Strategy,
        inputs: &[usize],
        out: Option<usize>,
        out_scalar: Option<dmac_lang::ScalarId>,
    ) -> Result<u64, String> {
        let op = self
            .program
            .ops()
            .get(op_idx)
            .ok_or_else(|| format!("V07: step {i} computes unknown operator {op_idx}"))?;
        let cands = candidates(&op.kind, self.cfg.allow_cpmm);
        let cand = cands
            .iter()
            .find(|c| c.strategy == strategy)
            .ok_or_else(|| {
                format!(
                    "V07: step {i} uses strategy {} which is not a candidate for \
                     operator {op_idx}",
                    strategy.name()
                )
            })?;

        // V08: input events — arity, operand identity, handedness, and
        // scheme compatibility with the strategy's requirements.
        let refs = op.kind.inputs();
        if refs.len() != inputs.len() || cand.inputs.len() != inputs.len() {
            return Err(format!(
                "V08: step {i} has {} input nodes for a {}-operand operator",
                inputs.len(),
                refs.len()
            ));
        }
        for (k, (r, (&n, req))) in refs.iter().zip(inputs.iter().zip(&cand.inputs)).enumerate() {
            let node = &self.plan.nodes[n];
            if node.matrix != r.id {
                return Err(format!(
                    "V08: step {i} input {k} holds matrix {} but the operator reads {}",
                    node.matrix, r.id
                ));
            }
            if node.transposed != r.transposed {
                return Err(format!(
                    "V08: step {i} input {k} ({}) has the wrong handedness",
                    self.plan.node_label(self.program, n)
                ));
            }
            if let Some(req) = req {
                if node.scheme != *req {
                    return Err(format!(
                        "V08: step {i} input {k} ({}) does not satisfy the {} \
                         requirement of {}",
                        self.plan.node_label(self.program, n),
                        req,
                        strategy.name()
                    ));
                }
            }
        }

        // V09: output event.
        if out_scalar != op.out_scalar {
            return Err(format!(
                "V09: step {i} scalar binding {:?} does not match operator {op_idx}'s {:?}",
                out_scalar, op.out_scalar
            ));
        }
        match (&cand.output, out) {
            (OutScheme::Scalar, None) => {}
            (OutScheme::Scalar, Some(_)) => {
                return Err(format!("V09: step {i} reduction defines a matrix node"));
            }
            (_, None) => {
                if op.out_matrix.is_some() {
                    return Err(format!("V09: step {i} drops its matrix output"));
                }
            }
            (shape, Some(n)) => {
                let node = &self.plan.nodes[n];
                let m = op.out_matrix.ok_or_else(|| {
                    format!("V09: step {i} defines a node for a matrix-less operator")
                })?;
                if node.matrix != m || node.transposed {
                    return Err(format!(
                        "V09: step {i} output node ({}) must hold matrix {m} untransposed",
                        self.plan.node_label(self.program, n)
                    ));
                }
                let ok = match shape {
                    OutScheme::Fixed(s) => {
                        if self.cfg.exploit_dependencies {
                            node.scheme == *s
                        } else {
                            // SystemML-S writes results back to the
                            // hash-partitioned cache.
                            node.scheme == PartitionScheme::Hash
                        }
                    }
                    // A CPMM output is pinned (by a consumer or by
                    // finalisation) to one of its two free schemes.
                    OutScheme::FlexibleRc => {
                        if self.cfg.exploit_dependencies {
                            node.scheme.is_rc()
                        } else {
                            node.scheme == PartitionScheme::Hash
                        }
                    }
                    OutScheme::SameAsInput => node.scheme == self.plan.nodes[inputs[0]].scheme,
                    OutScheme::Scalar => unreachable!("handled above"),
                };
                if !ok {
                    return Err(format!(
                        "V09: step {i} output ({}) has an illegal scheme for {}",
                        self.plan.node_label(self.program, n),
                        strategy.name()
                    ));
                }
            }
        }

        // §4.1: only CPMM's output event communicates, at N·|AB|.
        match strategy {
            Strategy::Cpmm => {
                let m = op
                    .out_matrix
                    .ok_or_else(|| format!("V09: step {i} CPMM without a matrix output"))?;
                Ok(self.workers * self.size(m)?)
            }
            _ => Ok(0),
        }
    }

    /// V10: fused cell-wise steps are local, scheme-aligned, and replay a
    /// well-formed post-order program whose members are all cell-wise.
    fn check_fused(
        &self,
        i: usize,
        ops: &[usize],
        prog: &[FusedInstr],
        inputs: &[usize],
        out: usize,
    ) -> Result<(), String> {
        if ops.len() < 2 {
            return Err(format!("V10: step {i} fuses fewer than two operators"));
        }
        let out_scheme = self.plan.nodes[out].scheme;
        for &n in inputs {
            if self.plan.nodes[n].scheme != out_scheme {
                return Err(format!(
                    "V10: step {i} fused leaf ({}) is not aligned with its output ({})",
                    self.plan.node_label(self.program, n),
                    self.plan.node_label(self.program, out)
                ));
            }
        }
        let mut cellwise = 0usize;
        for &o in ops {
            let op = self
                .program
                .ops()
                .get(o)
                .ok_or_else(|| format!("V10: step {i} fuses unknown operator {o}"))?;
            let is_cellwise = match &op.kind {
                OpKind::Binary { op: b, .. } => *b != BinOp::MatMul,
                OpKind::Unary { .. } => true,
                OpKind::Reduce { .. } => false,
            };
            if !is_cellwise {
                return Err(format!(
                    "V10: step {i} fuses operator {o}, which is not cell-wise"
                ));
            }
            cellwise += 1;
        }
        // The last fused member produces the step's output.
        let root = *ops.last().expect("checked non-empty");
        if self.program.ops()[root].out_matrix != Some(self.plan.nodes[out].matrix) {
            return Err(format!(
                "V10: step {i} output node holds a matrix no fused member produces"
            ));
        }
        // Replay the post-order program symbolically: every Leaf index in
        // range, stack never underflows, exactly one value remains, and
        // the instruction count matches the member count.
        let mut depth = 0usize;
        let mut instr_ops = 0usize;
        for instr in prog {
            match instr {
                FusedInstr::Leaf(k) => {
                    if *k >= inputs.len() {
                        return Err(format!("V10: step {i} leaf {k} out of range"));
                    }
                    depth += 1;
                }
                FusedInstr::Add | FusedInstr::Sub | FusedInstr::CellMul | FusedInstr::CellDiv => {
                    if depth < 2 {
                        return Err(format!("V10: step {i} fused program underflows"));
                    }
                    depth -= 1;
                    instr_ops += 1;
                }
                FusedInstr::Scale(_) | FusedInstr::AddScalar(_) => {
                    if depth < 1 {
                        return Err(format!("V10: step {i} fused program underflows"));
                    }
                    instr_ops += 1;
                }
            }
        }
        if depth != 1 {
            return Err(format!(
                "V10: step {i} fused program leaves {depth} values on the stack"
            ));
        }
        if instr_ops != cellwise {
            return Err(format!(
                "V10: step {i} fused program has {instr_ops} operator instructions for \
                 {cellwise} members"
            ));
        }
        Ok(())
    }

    /// V11: every program operator is planned exactly once, across plain
    /// compute steps and fused groups.
    fn check_op_coverage(&self) -> Result<(), String> {
        let mut seen: HashMap<usize, usize> = HashMap::new();
        for step in &self.plan.steps {
            match step {
                PlanStep::Compute { op, .. } => *seen.entry(*op).or_insert(0) += 1,
                PlanStep::FusedCellWise { ops, .. } => {
                    for &o in ops {
                        *seen.entry(o).or_insert(0) += 1;
                    }
                }
                _ => {}
            }
        }
        for idx in 0..self.program.ops().len() {
            match seen.get(&idx).copied().unwrap_or(0) {
                1 => {}
                0 => return Err(format!("V11: operator {idx} was never planned")),
                n => return Err(format!("V11: operator {idx} planned {n} times")),
            }
        }
        if let Some(&idx) = seen.keys().find(|&&idx| idx >= self.program.ops().len()) {
            return Err(format!("V11: plan computes nonexistent operator {idx}"));
        }
        Ok(())
    }

    /// V12: every program output is bound to a node holding that matrix
    /// with the requested handedness.
    fn check_outputs(&self) -> Result<(), String> {
        for (r, name) in self.program.outputs() {
            let found = self.plan.outputs.iter().any(|(n, m, bound_name)| {
                *m == r.id
                    && self.plan.nodes[*n].matrix == r.id
                    && self.plan.nodes[*n].transposed == r.transposed
                    && bound_name == name
            });
            if !found {
                return Err(format!(
                    "V12: program output (matrix {}, transposed {}) is not bound",
                    r.id, r.transposed
                ));
            }
        }
        Ok(())
    }

    /// V13: the §5.2 stage invariant — communication steps are exactly the
    /// stage boundaries.
    fn check_stages(&self) -> Result<usize, String> {
        let stages = stage::schedule(self.plan);
        stage::validate(self.plan, &stages)
            .map_err(|i| format!("V13: stage invariant violated at step {i}"))?;
        Ok(stages.count)
    }

    /// V16: the plan's per-step predicted nnz is exactly the re-derived
    /// profile nnz of each step's output matrix (0 for steps without a
    /// matrix output).
    fn check_step_nnz(&self) -> Result<(), String> {
        if self.plan.predicted_nnz.len() != self.plan.steps.len() {
            return Err(format!(
                "V16: {} predicted-nnz entries for {} steps",
                self.plan.predicted_nnz.len(),
                self.plan.steps.len()
            ));
        }
        for (i, step) in self.plan.steps.iter().enumerate() {
            let expect = match step.out_node() {
                Some(n) => {
                    let m = self.plan.nodes[n].matrix;
                    self.profiles
                        .get(m as usize)
                        .ok_or_else(|| format!("V16: step {i} outputs unprofiled matrix {m}"))?
                        .nnz
                }
                None => 0,
            };
            let claimed = self.plan.predicted_nnz[i];
            if claimed != expect {
                return Err(format!(
                    "V16: step {i} claims predicted nnz {claimed}, profile says {expect}"
                ));
            }
        }
        Ok(())
    }

    /// V17: the dense anchor — when every source profile is fully dense,
    /// the estimator must reproduce the worst-case static byte sizes
    /// exactly for *every* matrix (the `density = 1.0` special case of
    /// Table 2).
    fn check_dense_anchor(&self) -> Result<(), String> {
        let all_dense_sources = self.program.matrices().iter().all(|d| {
            matches!(d.origin, MatrixOrigin::Op(_)) || {
                let p = &self.profiles[d.id as usize];
                p.nnz == d.stats.rows as u64 * d.stats.cols as u64
            }
        });
        if !all_dense_sources {
            return Ok(());
        }
        for d in self.program.matrices() {
            // Scalar-producing reductions have no matrix profile mass.
            if let MatrixOrigin::Op(i) = d.origin {
                if matches!(self.program.ops()[i].kind, OpKind::Reduce { .. }) {
                    continue;
                }
            }
            let s = d.stats;
            let static_bytes = (s.rows as f64 * s.cols as f64 * s.sparsity * 8.0).ceil() as u64;
            let nnz_bytes = 8 * self.profiles[d.id as usize].nnz;
            if nnz_bytes != static_bytes {
                return Err(format!(
                    "V17: dense sources, but matrix {} prices {nnz_bytes} nnz-bytes \
                     against {static_bytes} static bytes",
                    d.id
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmac_core::planner::{plan_program, plan_with_forced};
    use std::collections::HashMap as Map;

    fn gnmf_h() -> Program {
        let mut p = Program::new();
        let v = p.load("V", 1000, 800, 0.01);
        let w = p.random("W", 1000, 20);
        let h = p.random("H", 20, 800);
        let wt_v = p.matmul(w.t(), v).unwrap();
        let wt_w = p.matmul(w.t(), w).unwrap();
        let wt_w_h = p.matmul(wt_w, h).unwrap();
        let num = p.cell_mul(h, wt_v).unwrap();
        let h_new = p.cell_div(num, wt_w_h).unwrap();
        p.store(h_new, "H");
        p
    }

    #[test]
    fn gnmf_verifies_under_all_configs() {
        let p = gnmf_h();
        for cfg in [
            PlannerConfig::default(),
            PlannerConfig::systemml_s(),
            PlannerConfig {
                pull_up_broadcast: false,
                ..PlannerConfig::default()
            },
            PlannerConfig {
                fuse_cellwise: false,
                ..PlannerConfig::default()
            },
            PlannerConfig {
                allow_cpmm: false,
                ..PlannerConfig::default()
            },
        ] {
            let planned = plan_program(&p, &cfg, 4, &Map::new()).unwrap();
            let s = verify_planned(&p, &planned, &cfg, 4)
                .unwrap_or_else(|m| panic!("{m}\n{}", planned.plan.explain(&p)));
            assert_eq!(s.steps, planned.plan.steps.len());
            assert_eq!(s.recomputed_comm, planned.estimated_comm);
        }
    }

    #[test]
    fn forced_strategies_verify() {
        // Force each matmul strategy for the first operator; the verifier
        // must agree with whatever plan comes out.
        let p = gnmf_h();
        let cfg = PlannerConfig::default();
        for choice in 0..3 {
            let mut forced = Map::new();
            forced.insert(0, choice);
            let planned = plan_with_forced(&p, &cfg, 4, &Map::new(), Some(&forced)).unwrap();
            verify_planned(&p, &planned, &cfg, 4)
                .unwrap_or_else(|m| panic!("choice {choice}: {m}\n{}", planned.plan.explain(&p)));
        }
    }

    #[test]
    fn tampered_prediction_is_caught() {
        let p = gnmf_h();
        let cfg = PlannerConfig::default();
        let mut planned = plan_program(&p, &cfg, 4, &Map::new()).unwrap();
        let comm_idx = planned
            .plan
            .steps
            .iter()
            .position(|s| s.is_comm())
            .expect("gnmf plan communicates");
        planned.plan.predicted[comm_idx] += 1;
        let err = verify_planned(&p, &planned, &cfg, 4).unwrap_err();
        assert!(err.contains("V05"), "{err}");
    }

    #[test]
    fn tampered_total_is_caught() {
        let p = gnmf_h();
        let cfg = PlannerConfig::default();
        let mut planned = plan_program(&p, &cfg, 4, &Map::new()).unwrap();
        planned.estimated_comm += 1;
        let err = verify_planned(&p, &planned, &cfg, 4).unwrap_err();
        assert!(err.contains("V02"), "{err}");
    }

    #[test]
    fn tampered_scheme_is_caught() {
        let p = gnmf_h();
        let cfg = PlannerConfig::default();
        let mut planned = plan_program(&p, &cfg, 4, &Map::new()).unwrap();
        // Flip the scheme of some compute input node: scheme compatibility
        // (V08) or a structural extended-operator check (V06) must trip.
        let victim = planned
            .plan
            .steps
            .iter()
            .find_map(|s| match s {
                PlanStep::Compute { inputs, .. } => inputs.first().copied(),
                _ => None,
            })
            .expect("plan has computes");
        let old = planned.plan.nodes[victim].scheme;
        planned.plan.nodes[victim].scheme = old.flip();
        if old.is_rc() {
            let err = verify_planned(&p, &planned, &cfg, 4).unwrap_err();
            assert!(
                err.contains("V06") || err.contains("V08"),
                "unexpected error: {err}"
            );
        }
    }

    #[test]
    fn dropped_operator_is_caught() {
        let p = gnmf_h();
        let cfg = PlannerConfig {
            fuse_cellwise: false,
            ..PlannerConfig::default()
        };
        let mut planned = plan_program(&p, &cfg, 4, &Map::new()).unwrap();
        let idx = planned
            .plan
            .steps
            .iter()
            .position(|s| matches!(s, PlanStep::Compute { .. }))
            .unwrap();
        planned.plan.steps.remove(idx);
        planned.plan.predicted.remove(idx);
        let err = verify_planned(&p, &planned, &cfg, 4).unwrap_err();
        // Removing a compute breaks coverage (V11) — or definition order
        // (V04) if a later step read its output.
        assert!(err.contains("V11") || err.contains("V04"), "{err}");
    }

    #[test]
    fn unbound_output_is_caught() {
        let p = gnmf_h();
        let cfg = PlannerConfig::default();
        let mut planned = plan_program(&p, &cfg, 4, &Map::new()).unwrap();
        planned.plan.outputs.clear();
        let err = verify_planned(&p, &planned, &cfg, 4).unwrap_err();
        assert!(err.contains("V12"), "{err}");
    }

    #[test]
    fn tampered_profile_cap_is_caught() {
        let p = gnmf_h();
        let cfg = PlannerConfig::default();
        let mut planned = plan_program(&p, &cfg, 4, &Map::new()).unwrap();
        // Claim more non-zeros than the matrix has cells: the hard cap
        // (V14) must trip before anything downstream prices it.
        planned.profiles[0].nnz = u64::MAX;
        let err = verify_planned(&p, &planned, &cfg, 4).unwrap_err();
        assert!(err.contains("V14"), "{err}");
    }

    #[test]
    fn tampered_profile_propagation_is_caught() {
        let p = gnmf_h();
        let cfg = PlannerConfig::default();
        let mut planned = plan_program(&p, &cfg, 4, &Map::new()).unwrap();
        // W is a random source: the verifier re-derives it as dense, so
        // shrinking the claimed profile diverges from the re-derivation.
        let w = p
            .matrices()
            .iter()
            .find(|d| matches!(d.origin, MatrixOrigin::Random))
            .unwrap()
            .id as usize;
        planned.profiles[w].nnz -= 1;
        let err = verify_planned(&p, &planned, &cfg, 4).unwrap_err();
        assert!(err.contains("V15"), "{err}");
    }

    #[test]
    fn tampered_strip_vector_is_caught() {
        let p = gnmf_h();
        let cfg = PlannerConfig::default();
        let mut planned = plan_program(&p, &cfg, 4, &Map::new()).unwrap();
        let op_out = p
            .matrices()
            .iter()
            .find(|d| matches!(d.origin, MatrixOrigin::Op(_)))
            .unwrap()
            .id as usize;
        planned.profiles[op_out].row_nnz[0] += 0.5;
        let err = verify_planned(&p, &planned, &cfg, 4).unwrap_err();
        assert!(err.contains("V15"), "{err}");
    }

    #[test]
    fn tampered_step_nnz_is_caught() {
        let p = gnmf_h();
        let cfg = PlannerConfig::default();
        let mut planned = plan_program(&p, &cfg, 4, &Map::new()).unwrap();
        let idx = planned
            .plan
            .steps
            .iter()
            .position(|s| s.out_node().is_some())
            .unwrap();
        planned.plan.predicted_nnz[idx] += 1;
        let err = verify_planned(&p, &planned, &cfg, 4).unwrap_err();
        assert!(err.contains("V16"), "{err}");
    }

    #[test]
    fn dense_fixture_prices_identically_under_both_flavours() {
        // The dense anchor, end to end: with all-dense sources the
        // nnz-costed plan and the worst-case plan are the same plan with
        // the same estimate (V17 holds inside both verifications).
        let mut p = Program::new();
        let a = p.load("A", 512, 256, 1.0);
        let b = p.load("B", 256, 128, 1.0);
        let c = p.matmul(a, b).unwrap();
        p.output(c);
        let adaptive = PlannerConfig::default();
        let fixed = PlannerConfig {
            density_adaptive: false,
            ..PlannerConfig::default()
        };
        let pa = plan_program(&p, &adaptive, 4, &Map::new()).unwrap();
        let pf = plan_program(&p, &fixed, 4, &Map::new()).unwrap();
        verify_planned(&p, &pa, &adaptive, 4).unwrap();
        verify_planned(&p, &pf, &fixed, 4).unwrap();
        assert_eq!(pa.estimated_comm, pf.estimated_comm);
    }

    #[test]
    fn leftover_flexible_node_is_caught() {
        let mut p = Program::new();
        let a = p.load("A", 5000, 30, 1.0);
        let x = p.matmul(a.t(), a).unwrap();
        p.output(x);
        let cfg = PlannerConfig::default();
        let mut planned = plan_program(&p, &cfg, 4, &Map::new()).unwrap();
        if let Some(n) = planned.plan.nodes.iter().position(|n| n.scheme.is_rc()) {
            planned.plan.nodes[n].flexible = true;
            let err = verify_planned(&p, &planned, &cfg, 4).unwrap_err();
            assert!(err.contains("V03"), "{err}");
        }
    }
}
