//! Independent liveness / memory-certificate verification (V18–V21).
//!
//! Re-derives, along a code path deliberately separate from
//! `dmac_core::liveness`, everything the planner's liveness pass claims
//! about a plan:
//!
//! * **V18** — no step reads a node after its `free` step: the spliced
//!   releases really do sit at or after every intermediate's last use.
//! * **V19** — release discipline: no double frees, kept nodes (program
//!   outputs, cached input placements) are never freed, and — when free
//!   splicing is enabled — every dead intermediate is freed *exactly
//!   once*, anchored no earlier than its last reader (or its producer,
//!   if it is never read).
//! * **V20** — the plan's [`MemoryCertificate`] dominates an independent
//!   re-derivation of the per-step resident-byte bound and is internally
//!   consistent (`peak` is the maximum of `per_step`, attained at
//!   `argmax`).
//! * **V21** ([`check_observed`]) — the engine's measured per-step
//!   resident bytes never exceed the certified bound. Hooked behind
//!   `dmac_core::verifyhook::install_run_verifier`, so every debug-build
//!   run re-checks its own trace.
//!
//! The re-derivation walks the plan *forward*, materialising per-node
//! live intervals, instead of the planner's backward last-use scan; the
//! byte formulas are restated here from the storage contract (dense cap
//! `8·r·c`; CSC payload-plus-column-pointer bound for sparse-class
//! nodes) rather than shared with `dmac_core::liveness::node_price`.

use dmac_core::plan::{MemoryCertificate, Plan, PlanStep};
use dmac_core::planner::{Planned, PlannerConfig};
use dmac_core::trace::Trace;
use dmac_lang::{BinOp, MatrixOrigin, OpKind, Program, UnaryOp};

/// Can this node materialise CSC-sparse tiles, or is it bounded by the
/// dense cap? Mirrors (independently) the forward class pass in
/// `dmac_core::liveness::storage_classes`.
fn sparse_class(program: &Program, plan: &Plan) -> Vec<bool> {
    let mut sparse = vec![false; plan.nodes.len()];
    for &(node, mid) in &plan.sources {
        sparse[node] = program
            .decl(mid)
            .map(|d| matches!(d.origin, MatrixOrigin::Load) && d.stats.sparsity < 1.0)
            .unwrap_or(false);
    }
    for step in &plan.steps {
        let Some(out) = step.out_node() else { continue };
        sparse[out] = match step {
            PlanStep::Partition { src, .. }
            | PlanStep::Broadcast { src, .. }
            | PlanStep::Transpose { src, .. }
            | PlanStep::Extract { src, .. }
            | PlanStep::Reference { src, .. } => sparse[*src],
            PlanStep::Compute { op, inputs, .. } => match &program.ops()[*op].kind {
                OpKind::Binary { op: b, .. } => {
                    matches!(b, BinOp::Add | BinOp::Sub | BinOp::CellMul)
                        && inputs.iter().all(|&n| sparse[n])
                }
                OpKind::Unary { op: u, .. } => matches!(u, UnaryOp::Scale(_)) && sparse[inputs[0]],
                OpKind::Reduce { .. } => false,
            },
            PlanStep::FusedCellWise { .. } => false,
            PlanStep::Free { .. } => unreachable!("free defines no node"),
        };
    }
    sparse
}

/// Strip count along one dimension (at least 1, matching the blocking).
fn strips(len: usize, block: usize) -> usize {
    len.div_ceil(block.max(1)).max(1)
}

/// Re-derived upper bound on one node's materialised bytes.
fn rederive_price(
    program: &Program,
    plan: &Plan,
    planned: &Planned,
    cfg: &PlannerConfig,
    sparse: &[bool],
    node: usize,
) -> u64 {
    let n = &plan.nodes[node];
    let Ok(decl) = program.decl(n.matrix) else {
        return 0;
    };
    let (r, c) = if n.transposed {
        (decl.stats.cols, decl.stats.rows)
    } else {
        (decl.stats.rows, decl.stats.cols)
    };
    let cells = r as u64 * c as u64;
    if !sparse[node] {
        return 8 * cells;
    }
    let block = cfg.fusion_block.max(1);
    let (br, bc) = (strips(r, block) as u64, strips(c, block) as u64);
    let overhead = 4 * (br * c as u64 + br * bc);
    let payload = if cfg.density_adaptive {
        let nnz = planned
            .profiles
            .get(n.matrix as usize)
            .map(|p| p.nnz)
            .unwrap_or(cells);
        (16 * nnz).min(12 * cells)
    } else {
        12 * cells
    };
    payload + overhead
}

/// Nodes the engine retains to the end of the run: program outputs plus,
/// per bound (`load`-origin) source, the first untransposed Row/Column
/// materialisation of that matrix (the session's cached placement).
fn rederive_keep(program: &Program, plan: &Plan) -> Vec<bool> {
    let mut keep = vec![false; plan.nodes.len()];
    for (node, _, _) in &plan.outputs {
        keep[*node] = true;
    }
    for &(_, mid) in &plan.sources {
        if !program
            .decl(mid)
            .map(|d| matches!(d.origin, MatrixOrigin::Load))
            .unwrap_or(false)
        {
            continue;
        }
        if let Some(n) = plan
            .nodes
            .iter()
            .position(|n| n.matrix == mid && !n.transposed && n.scheme.is_rc())
        {
            keep[n] = true;
        }
    }
    keep
}

/// V18 + V19: the liveness discipline of the spliced frees.
fn check_frees(program: &Program, plan: &Plan, cfg: &PlannerConfig) -> Result<(), String> {
    let keep = rederive_keep(program, plan);
    let n_nodes = plan.nodes.len();
    let mut defined_at = vec![None::<usize>; n_nodes]; // None for sources
    let mut source = vec![false; n_nodes];
    for &(node, _) in &plan.sources {
        source[node] = true;
    }
    let mut freed_at = vec![None::<usize>; n_nodes];
    let mut last_read = vec![None::<usize>; n_nodes];
    for (i, step) in plan.steps.iter().enumerate() {
        match step {
            PlanStep::Free { node, .. } => {
                let n = *node;
                if n >= n_nodes {
                    return Err(format!("V19: step {i} frees missing node {n}"));
                }
                if let Some(f) = freed_at[n] {
                    return Err(format!("V19: node {n} freed at step {i} and at step {f}"));
                }
                if keep[n] {
                    return Err(format!(
                        "V19: step {i} frees kept node {n} ({})",
                        plan.node_label(program, n)
                    ));
                }
                if !source[n] && defined_at[n].is_none() {
                    return Err(format!("V19: step {i} frees undefined node {n}"));
                }
                freed_at[n] = Some(i);
            }
            _ => {
                for r in step.in_nodes() {
                    if let Some(f) = freed_at.get(r).copied().flatten() {
                        return Err(format!(
                            "V18: step {i} reads node {r} after its free at step {f}"
                        ));
                    }
                    last_read[r] = Some(i);
                }
                if let Some(out) = step.out_node() {
                    if let Some(f) = freed_at[out] {
                        return Err(format!(
                            "V18: step {i} defines node {out} after its free at step {f}"
                        ));
                    }
                    defined_at[out] = Some(i);
                }
            }
        }
    }
    if cfg.splice_frees {
        // Completeness: every dead intermediate freed exactly once, no
        // earlier than its anchor (last reader, else producer). Unused
        // sources have no anchor step and legitimately stay resident.
        for n in 0..n_nodes {
            if keep[n] || (!source[n] && defined_at[n].is_none()) {
                continue;
            }
            let anchor = match (last_read[n], defined_at[n]) {
                (Some(r), _) => r,
                (None, Some(d)) => d,
                (None, None) => continue,
            };
            match freed_at[n] {
                None => {
                    return Err(format!(
                        "V19: dead node {n} ({}) is never freed (last use at step {anchor})",
                        plan.node_label(program, n)
                    ));
                }
                Some(f) if f < anchor => {
                    return Err(format!(
                        "V19: node {n} freed at step {f}, before its last use at step {anchor}"
                    ));
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

/// V20: the stored certificate dominates the re-derived per-step bound
/// and is internally consistent.
fn check_certificate(
    program: &Program,
    planned: &Planned,
    cfg: &PlannerConfig,
) -> Result<(), String> {
    let plan = &planned.plan;
    let cert = &planned.certificate;
    if cert.per_step.len() != plan.steps.len() {
        return Err(format!(
            "V20: certificate has {} entries for {} steps",
            cert.per_step.len(),
            plan.steps.len()
        ));
    }
    let sparse = sparse_class(program, plan);
    let price = |n: usize| rederive_price(program, plan, planned, cfg, &sparse, n);
    let mut live = vec![false; plan.nodes.len()];
    let mut resident = 0u64;
    for &(node, _) in &plan.sources {
        if !live[node] {
            live[node] = true;
            resident += price(node);
        }
    }
    for (i, step) in plan.steps.iter().enumerate() {
        match step {
            PlanStep::Free { node, .. } => {
                if live[*node] {
                    live[*node] = false;
                    resident -= price(*node);
                }
            }
            _ => {
                if let Some(out) = step.out_node() {
                    if !live[out] {
                        live[out] = true;
                        resident += price(out);
                    }
                }
            }
        }
        if cert.per_step[i] < resident {
            return Err(format!(
                "V20: certificate understates step {i}: certified {} bytes, independent \
                 re-derivation gives {resident}",
                cert.per_step[i]
            ));
        }
    }
    let max = cert.per_step.iter().copied().max().unwrap_or(0);
    if cert.peak != max {
        return Err(format!(
            "V20: certificate peak {} does not match its per-step maximum {max}",
            cert.peak
        ));
    }
    if !cert.per_step.is_empty() {
        match cert.per_step.get(cert.argmax) {
            Some(&v) if v == cert.peak => {}
            _ => {
                return Err(format!(
                    "V20: certificate argmax {} does not attain the peak {}",
                    cert.argmax, cert.peak
                ));
            }
        }
    }
    Ok(())
}

/// V18–V20 over a planned program: free-splicing discipline and
/// certificate soundness. Called from [`crate::verify_planned`].
pub fn check_liveness(
    program: &Program,
    planned: &Planned,
    cfg: &PlannerConfig,
) -> Result<(), String> {
    check_frees(program, &planned.plan, cfg)?;
    check_certificate(program, planned, cfg)
}

/// V21: the engine's measured per-step resident bytes never exceed the
/// certified bound.
pub fn check_observed(certificate: &MemoryCertificate, trace: &Trace) -> Result<(), String> {
    if certificate.per_step.len() != trace.steps.len() {
        return Err(format!(
            "V21: certificate covers {} steps but the trace recorded {}",
            certificate.per_step.len(),
            trace.steps.len()
        ));
    }
    for (i, (s, &bound)) in trace.steps.iter().zip(&certificate.per_step).enumerate() {
        if s.resident_bytes > bound {
            return Err(format!(
                "V21: step {i} ({}) observed {} resident bytes, certified at most {bound}",
                s.label, s.resident_bytes
            ));
        }
    }
    Ok(())
}
