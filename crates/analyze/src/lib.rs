//! # dmac-analyze — static lints and plan-invariant verification
//!
//! Two independent pass families over the DMac stack (DESIGN.md §8f):
//!
//! * **Program lints** ([`lint_script`] / [`lint_program`]): checks over
//!   the `dmac-lang` AST — use-before-def, shape conformance (via the
//!   frontend's §5.1 inference), dead stores, unused intermediates,
//!   redundant transposes (`A.t.t`), trivial identities (`X * 1`,
//!   `X + 0`), and loop-invariant candidates across unrolled iterations.
//!   Each finding is a structured [`Diagnostic`] with a severity, a
//!   stable code, and (for scripts) an exact byte span.
//! * **Plan-invariant verifier** ([`verify_planned`]): re-derives the
//!   Table-2 dependency types and §4.1 event bytes of a generated plan
//!   from scratch — a code path deliberately separate from
//!   `dmac_core::cost` — and asserts exact agreement with the planner's
//!   per-step predictions and total estimate, plus structural, coverage,
//!   output-binding and §5.2 stage invariants.
//!
//! * **Liveness / memory-certificate verifier** ([`liveness`]): V18–V21 —
//!   re-derives live ranges and the per-step resident-byte bound through
//!   a second implementation and checks the planner's spliced frees, its
//!   [`dmac_core::plan::MemoryCertificate`], and (post-run) the engine's
//!   measured residency against the certified bound.
//!
//! [`install_session_verifier`] hooks the verifiers into
//! `dmac_core::Session`, which then re-checks every plan it produces —
//! and every trace it records — in debug builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lint;
pub mod liveness;
pub mod verify;

pub use diag::{code, has_errors, Diagnostic, Severity};
pub use lint::{lint_program, lint_script, LintReport};
pub use liveness::{check_liveness, check_observed};
pub use verify::{verify_planned, VerifySummary};

/// Install [`verify_planned`] as the session-level plan verifier and
/// [`check_observed`] as the post-run trace verifier: every
/// `Session::{plan, prepare, run}` in a debug build re-verifies the plan
/// it is about to use (V01–V20) and every run's trace is checked against
/// the plan's memory certificate (V21), failing loudly on any invariant
/// violation. Idempotent; release builds skip the checks entirely.
pub fn install_session_verifier() {
    dmac_core::verifyhook::install_plan_verifier(session_verifier);
    dmac_core::verifyhook::install_run_verifier(liveness::check_observed);
}

fn session_verifier(
    program: &dmac_lang::Program,
    planned: &dmac_core::planner::Planned,
    cfg: &dmac_core::planner::PlannerConfig,
    workers: usize,
) -> Result<(), String> {
    verify::verify_planned(program, planned, cfg, workers).map(|_| ())
}
