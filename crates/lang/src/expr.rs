//! Expression handles, operators, and scalar expressions.

/// Identifier of a matrix value (SSA: every operator output is a fresh id).
pub type MatrixId = u32;

/// Identifier of a driver-side scalar produced by a reduction operator.
pub type ScalarId = u32;

/// A lightweight handle to a matrix value, optionally viewed transposed.
///
/// Transposition is *not* an operator in DMac's decomposition — it is a
/// property of how an operator references its input (the `B = Aᵀ` side of
/// the dependency definition). `expr.t()` therefore just flips a flag; two
/// flips cancel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Expr {
    /// The underlying matrix value.
    pub id: MatrixId,
    /// Whether this handle views the transpose of that value.
    pub transposed: bool,
}

impl Expr {
    /// Handle to matrix `id`, untransposed.
    pub fn new(id: MatrixId) -> Expr {
        Expr {
            id,
            transposed: false,
        }
    }

    /// The transposed view (`W.t` in the paper's programs). `t().t()` is
    /// the identity.
    pub fn t(self) -> Expr {
        Expr {
            id: self.id,
            transposed: !self.transposed,
        }
    }
}

/// How an operator refers to one of its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixRef {
    /// The referenced matrix value.
    pub id: MatrixId,
    /// True when the operator consumes the transpose of that value
    /// (the `B = Aᵀ` case of Definition 1).
    pub transposed: bool,
}

impl From<Expr> for MatrixRef {
    fn from(e: Expr) -> MatrixRef {
        MatrixRef {
            id: e.id,
            transposed: e.transposed,
        }
    }
}

/// The five binary matrix operators supported by DMac (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Matrix multiplication (`%*%`).
    MatMul,
    /// Matrix addition (`+`).
    Add,
    /// Matrix subtraction (`-`).
    Sub,
    /// Cell-wise multiplication (`*`).
    CellMul,
    /// Cell-wise division (`/`).
    CellDiv,
}

impl BinOp {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::MatMul => "%*%",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::CellMul => "*",
            BinOp::CellDiv => "/",
        }
    }

    /// True for `%*%`.
    pub fn is_matmul(self) -> bool {
        self == BinOp::MatMul
    }
}

/// Unary operators between a constant/scalar and a matrix (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub enum UnaryOp {
    /// Multiply every cell by a scalar.
    Scale(ScalarExpr),
    /// Add a scalar to every cell.
    AddScalar(ScalarExpr),
}

impl UnaryOp {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            UnaryOp::Scale(_) => "scale",
            UnaryOp::AddScalar(_) => "add_scalar",
        }
    }

    /// The scalar argument.
    pub fn scalar(&self) -> &ScalarExpr {
        match self {
            UnaryOp::Scale(s) | UnaryOp::AddScalar(s) => s,
        }
    }
}

/// Matrix-to-scalar reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Sum of all cells (`(r * r).sum` in Code 4).
    Sum,
    /// Frobenius norm (`v.norm(2)` in Code 5).
    Norm2,
    /// Extract the single cell of a 1×1 matrix (`.value` in Code 4).
    Value,
}

/// The body of one operator in the decomposed program.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// A binary matrix operator producing a matrix.
    Binary {
        /// Which operator.
        op: BinOp,
        /// Left input reference.
        lhs: MatrixRef,
        /// Right input reference.
        rhs: MatrixRef,
    },
    /// A scalar-matrix operator producing a matrix.
    Unary {
        /// Which operator (with its scalar argument).
        op: UnaryOp,
        /// The matrix input.
        input: MatrixRef,
    },
    /// A reduction producing a driver-side scalar.
    Reduce {
        /// Which reduction.
        op: ReduceOp,
        /// The matrix input.
        input: MatrixRef,
    },
}

impl OpKind {
    /// The matrix references this operator reads.
    pub fn inputs(&self) -> Vec<MatrixRef> {
        match self {
            OpKind::Binary { lhs, rhs, .. } => vec![*lhs, *rhs],
            OpKind::Unary { input, .. } | OpKind::Reduce { input, .. } => vec![*input],
        }
    }

    /// Scalars this operator's evaluation depends on.
    pub fn scalar_deps(&self) -> Vec<ScalarId> {
        match self {
            OpKind::Unary { op, .. } => op.scalar().deps(),
            _ => Vec::new(),
        }
    }

    /// True for matrix multiplication (used by the decomposition ordering).
    pub fn is_matmul(&self) -> bool {
        matches!(
            self,
            OpKind::Binary {
                op: BinOp::MatMul,
                ..
            }
        )
    }
}

/// One operator of the decomposed program.
#[derive(Debug, Clone, PartialEq)]
pub struct Operator {
    /// Position in program order.
    pub index: usize,
    /// The operation.
    pub kind: OpKind,
    /// Matrix produced (reductions produce a scalar instead).
    pub out_matrix: Option<MatrixId>,
    /// Scalar produced by a reduction.
    pub out_scalar: Option<ScalarId>,
    /// Phase tag (iteration number for unrolled loops).
    pub phase: usize,
}

/// Driver-side scalar expressions: constants, reduction results, and
/// arithmetic over them. These are evaluated on the driver at run time —
/// they never touch the cluster beyond the reductions that feed them.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A literal constant.
    Const(f64),
    /// The value of a reduction operator's output.
    Ref(ScalarId),
    /// Sum of two scalars.
    Add(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Difference.
    Sub(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Product.
    Mul(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Quotient.
    Div(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Negation.
    Neg(Box<ScalarExpr>),
}

impl ScalarExpr {
    /// Constant helper.
    pub fn c(v: f64) -> ScalarExpr {
        ScalarExpr::Const(v)
    }

    /// All reduction outputs this expression reads.
    pub fn deps(&self) -> Vec<ScalarId> {
        let mut out = Vec::new();
        self.collect_deps(&mut out);
        out
    }

    fn collect_deps(&self, out: &mut Vec<ScalarId>) {
        match self {
            ScalarExpr::Const(_) => {}
            ScalarExpr::Ref(id) => out.push(*id),
            ScalarExpr::Add(a, b)
            | ScalarExpr::Sub(a, b)
            | ScalarExpr::Mul(a, b)
            | ScalarExpr::Div(a, b) => {
                a.collect_deps(out);
                b.collect_deps(out);
            }
            ScalarExpr::Neg(a) => a.collect_deps(out),
        }
    }

    /// Evaluate given the values of reduction outputs.
    ///
    /// # Panics
    /// Panics if a referenced scalar is missing — programs are validated so
    /// that reductions always precede their uses.
    pub fn eval(&self, env: &impl Fn(ScalarId) -> f64) -> f64 {
        match self {
            ScalarExpr::Const(v) => *v,
            ScalarExpr::Ref(id) => env(*id),
            ScalarExpr::Add(a, b) => a.eval(env) + b.eval(env),
            ScalarExpr::Sub(a, b) => a.eval(env) - b.eval(env),
            ScalarExpr::Mul(a, b) => a.eval(env) * b.eval(env),
            ScalarExpr::Div(a, b) => a.eval(env) / b.eval(env),
            ScalarExpr::Neg(a) => -a.eval(env),
        }
    }
}

impl std::ops::Add for ScalarExpr {
    type Output = ScalarExpr;
    fn add(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for ScalarExpr {
    type Output = ScalarExpr;
    fn sub(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for ScalarExpr {
    type Output = ScalarExpr;
    fn mul(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Div for ScalarExpr {
    type Output = ScalarExpr;
    fn div(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Div(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Neg for ScalarExpr {
    type Output = ScalarExpr;
    fn neg(self) -> ScalarExpr {
        ScalarExpr::Neg(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_flag_cancels() {
        let e = Expr::new(3);
        assert!(!e.transposed);
        assert!(e.t().transposed);
        assert_eq!(e.t().t(), e);
    }

    #[test]
    fn scalar_arithmetic_evaluates() {
        let alpha = ScalarExpr::Ref(0);
        let expr = (alpha.clone() * ScalarExpr::c(2.0) + ScalarExpr::c(1.0))
            / (ScalarExpr::c(4.0) - alpha.clone());
        let v = expr.eval(&|_| 2.0);
        assert!((v - 2.5).abs() < 1e-12);
        assert_eq!(expr.deps(), vec![0, 0]);
        let neg = -ScalarExpr::c(3.0);
        assert_eq!(neg.eval(&|_| 0.0), -3.0);
    }

    #[test]
    fn opkind_inputs_and_deps() {
        let k = OpKind::Binary {
            op: BinOp::MatMul,
            lhs: Expr::new(0).t().into(),
            rhs: Expr::new(1).into(),
        };
        assert!(k.is_matmul());
        let ins = k.inputs();
        assert_eq!(ins.len(), 2);
        assert!(ins[0].transposed);
        let u = OpKind::Unary {
            op: UnaryOp::Scale(ScalarExpr::Ref(5)),
            input: Expr::new(2).into(),
        };
        assert_eq!(u.scalar_deps(), vec![5]);
        assert!(!u.is_matmul());
    }

    #[test]
    fn binop_names() {
        assert_eq!(BinOp::MatMul.name(), "%*%");
        assert_eq!(BinOp::CellDiv.name(), "/");
        assert!(BinOp::MatMul.is_matmul());
        assert!(!BinOp::Add.is_matmul());
    }
}
