//! Worst-case matrix size estimation (paper §5.1).
//!
//! The dependency-oriented cost model needs `|A|` — the size of every
//! (intermediate) matrix — before anything executes. Dimensions propagate
//! exactly through linear algebra; sparsity is estimated worst-case:
//!
//! * multiplication: `s_C = 1` (any cell can be hit),
//! * other binary operators: `s_C = min(s_A + s_B, 1)` — the union bound
//!   (the paper prints `Max(sA + sB, 1)`, an obvious typo since the bound
//!   must not exceed 1),
//! * unary operators preserve sparsity.

use crate::error::{LangError, Result};
use crate::expr::BinOp;

/// Static description of a matrix value: shape and estimated sparsity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixStats {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Estimated fraction of non-zero cells in `[0, 1]`.
    pub sparsity: f64,
}

impl MatrixStats {
    /// Construct, clamping sparsity into `[0, 1]`.
    pub fn new(rows: usize, cols: usize, sparsity: f64) -> MatrixStats {
        MatrixStats {
            rows,
            cols,
            sparsity: sparsity.clamp(0.0, 1.0),
        }
    }

    /// The transposed stats.
    pub fn transposed(self) -> MatrixStats {
        MatrixStats {
            rows: self.cols,
            cols: self.rows,
            sparsity: self.sparsity,
        }
    }

    /// Worst-case estimated bytes (`8` bytes per estimated non-zero item) —
    /// the `|A|` of the paper's cost model.
    pub fn est_bytes(self) -> u64 {
        (self.rows as f64 * self.cols as f64 * self.sparsity * 8.0).ceil() as u64
    }

    /// Shape tuple.
    pub fn shape(self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Hard cap on the number of non-zero cells: `rows · cols`. Every
    /// sparsity estimator (static or profile-propagated) is bounded by
    /// this; the runtime asserts observed nnz never exceeds it.
    pub fn nnz_cap(self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Estimated non-zero count implied by the static sparsity:
    /// `ceil(rows · cols · sparsity)`, capped at [`Self::nnz_cap`].
    /// `dmac-stats` uses this as the uniform fallback total when no
    /// measured profile exists, keeping `8 · est_nnz == est_bytes`
    /// exactly for dense stats.
    pub fn est_nnz(self) -> u64 {
        ((self.rows as f64 * self.cols as f64 * self.sparsity).ceil() as u64).min(self.nnz_cap())
    }
}

/// Infer the output stats of a binary operator; checks shapes.
pub fn infer_binary(op: BinOp, a: MatrixStats, b: MatrixStats) -> Result<MatrixStats> {
    match op {
        BinOp::MatMul => {
            if a.cols != b.rows {
                return Err(LangError::ShapeMismatch {
                    op: "%*%",
                    left: a.shape(),
                    right: b.shape(),
                });
            }
            // Worst case: fully dense output.
            Ok(MatrixStats::new(a.rows, b.cols, 1.0))
        }
        BinOp::Add | BinOp::Sub | BinOp::CellMul | BinOp::CellDiv => {
            if a.shape() != b.shape() {
                return Err(LangError::ShapeMismatch {
                    op: op.name_static(),
                    left: a.shape(),
                    right: b.shape(),
                });
            }
            Ok(MatrixStats::new(
                a.rows,
                a.cols,
                (a.sparsity + b.sparsity).min(1.0),
            ))
        }
    }
}

impl BinOp {
    fn name_static(self) -> &'static str {
        match self {
            BinOp::MatMul => "%*%",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::CellMul => "*",
            BinOp::CellDiv => "/",
        }
    }
}

/// Unary operators preserve shape and sparsity (worst case: `scale` by zero
/// still estimated at the input's sparsity; `add_scalar` of a non-zero
/// constant would densify, which the worst-case estimator conservatively
/// captures by treating the result as dense).
pub fn infer_unary(densifies: bool, a: MatrixStats) -> MatrixStats {
    if densifies {
        MatrixStats::new(a.rows, a.cols, 1.0)
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_shapes_and_dense_output() {
        let a = MatrixStats::new(10, 20, 0.1);
        let b = MatrixStats::new(20, 5, 0.2);
        let c = infer_binary(BinOp::MatMul, a, b).unwrap();
        assert_eq!(c.shape(), (10, 5));
        assert_eq!(c.sparsity, 1.0);
        assert!(infer_binary(BinOp::MatMul, a, a).is_err());
    }

    #[test]
    fn cellwise_union_bound() {
        let a = MatrixStats::new(4, 4, 0.3);
        let b = MatrixStats::new(4, 4, 0.4);
        let c = infer_binary(BinOp::Add, a, b).unwrap();
        assert!((c.sparsity - 0.7).abs() < 1e-12);
        // saturates at 1
        let d = MatrixStats::new(4, 4, 0.9);
        let e = infer_binary(BinOp::CellMul, d, d).unwrap();
        assert_eq!(e.sparsity, 1.0);
        assert!(infer_binary(BinOp::Sub, a, MatrixStats::new(5, 4, 0.1)).is_err());
    }

    #[test]
    fn unary_preserves_or_densifies() {
        let a = MatrixStats::new(3, 3, 0.2);
        assert_eq!(infer_unary(false, a), a);
        assert_eq!(infer_unary(true, a).sparsity, 1.0);
    }

    #[test]
    fn est_bytes_worst_case() {
        let a = MatrixStats::new(1000, 1000, 0.01);
        assert_eq!(a.est_bytes(), 80_000);
        let t = a.transposed();
        assert_eq!(t.shape(), (1000, 1000));
        assert_eq!(t.est_bytes(), a.est_bytes());
    }

    #[test]
    fn est_nnz_matches_est_bytes() {
        let a = MatrixStats::new(1000, 1000, 0.01);
        assert_eq!(a.est_nnz(), 10_000);
        assert_eq!(a.nnz_cap(), 1_000_000);
        let d = MatrixStats::new(37, 19, 1.0);
        assert_eq!(8 * d.est_nnz(), d.est_bytes());
        assert_eq!(d.est_nnz(), d.nnz_cap());
    }

    #[test]
    fn sparsity_is_clamped() {
        assert_eq!(MatrixStats::new(2, 2, 7.0).sparsity, 1.0);
        assert_eq!(MatrixStats::new(2, 2, -1.0).sparsity, 0.0);
    }
}
