//! Errors for program construction.

use std::fmt;

/// Errors raised while building or validating a matrix program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Operand shapes are incompatible for the requested operator.
    ShapeMismatch {
        /// Operator name.
        op: &'static str,
        /// Left operand shape.
        left: (usize, usize),
        /// Right operand shape.
        right: (usize, usize),
    },
    /// A handle refers to a matrix not declared in this program.
    UnknownMatrix(u32),
    /// A scalar handle refers to a scalar not produced in this program.
    UnknownScalar(u32),
    /// A `.value` extraction was applied to a matrix larger than 1×1.
    NotScalarShaped {
        /// The offending shape.
        shape: (usize, usize),
    },
    /// Program has no outputs marked.
    NoOutputs,
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LangError::UnknownMatrix(id) => write!(f, "unknown matrix id {id}"),
            LangError::UnknownScalar(id) => write!(f, "unknown scalar id {id}"),
            LangError::NotScalarShaped { shape } => {
                write!(
                    f,
                    ".value requires a 1x1 matrix, got {}x{}",
                    shape.0, shape.1
                )
            }
            LangError::NoOutputs => write!(f, "program has no outputs"),
        }
    }
}

impl std::error::Error for LangError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, LangError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = LangError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (2, 3),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(LangError::UnknownMatrix(7).to_string().contains('7'));
        assert!(LangError::NoOutputs.to_string().contains("no outputs"));
    }
}
