//! # dmac-lang — the matrix-program language of DMac
//!
//! DMac exposes an R-like matrix language (paper §5.4, Appendix A): users
//! write programs over distributed matrices with `%*%` (multiplication),
//! `*` / `/` (cell-wise), `+` / `-`, transpose (`.t`), scalar operations and
//! reductions. This crate provides:
//!
//! * [`Program`] — a builder producing a straight-line SSA-style sequence of
//!   [`Operator`]s over matrix values ([`Expr`] handles). Iterative
//!   algorithms unroll their loops into one program, exactly like the
//!   paper plans "the whole matrix program"; a *phase* tag attributes each
//!   operator to its source iteration so per-iteration statistics can be
//!   reported (Figure 6).
//! * [`ScalarExpr`] — driver-side scalar values: constants, results of
//!   matrix reductions (`sum`, `norm`, `.value`), and arithmetic over them
//!   (the conjugate-gradient α/β of Code 4 are such scalars).
//! * [`infer`] — dimension and worst-case sparsity propagation (§5.1): a
//!   multiplication's output is assumed fully dense; other binary operators
//!   get `min(s_A + s_B, 1)`; unary operators preserve sparsity.
//! * [`normalize`] — canonical rendering and 64-bit fingerprinting of a
//!   program: the plan-cache key of the `dmac-serve` service layer.
//! * [`Program::planner_order`] — the decomposition-phase reordering of
//!   §4.2.3: among simultaneously-ready operators, multiplications are
//!   scheduled first so that the Pull-Up Broadcast heuristic sees broadcast
//!   opportunities early.

#![forbid(unsafe_code)]

pub mod error;
pub mod expr;
pub mod infer;
pub mod normalize;
pub mod parser;
pub mod program;

pub use error::{LangError, Result};
pub use expr::{
    BinOp, Expr, MatrixId, MatrixRef, OpKind, Operator, ReduceOp, ScalarExpr, ScalarId, UnaryOp,
};
pub use parser::{parse_script, ParseError, ParsedScript, Span};
pub use program::{MatrixDecl, MatrixOrigin, Program};
