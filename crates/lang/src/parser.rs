//! An R-like script frontend for matrix programs (paper §5.4: "we provide
//! a set of R-Like symbols to represent each matrix operator").
//!
//! The accepted language mirrors the paper's code listings:
//!
//! ```text
//! V = load(V, 1000, 800, 0.05)
//! W = random(W, 1000, 20)
//! H = random(H, 20, 800)
//! for (i in 0:9) {
//!     H = H * (W.t %*% V) / (W.t %*% W %*% H)
//!     W = W * (V %*% H.t) / (W %*% H %*% H.t)
//! }
//! store(W)
//! store(H)
//! ```
//!
//! * `%*%` is matrix multiplication; `*` and `/` are cell-wise; `+`/`-`
//!   element-wise; all four share the paper's left-associative reading.
//! * `X.t` is the transposed view (free, per the Transpose dependency).
//! * `X.sum`, `X.norm2`, `X.value` are reductions producing driver-side
//!   scalars; scalars mix freely with matrices (`rank * 0.85`,
//!   `w + p * alpha`).
//! * `for (i in a:b) { … }` unrolls the body (the paper plans the whole
//!   program); each unrolled iteration gets its own phase tag, and the
//!   loop variable is visible as a numeric constant.
//! * `output(X)` marks an output; `store(X)` also persists it into the
//!   session environment under its variable name.

use std::collections::HashMap;
use std::fmt;

use crate::error::LangError;
use crate::expr::{Expr, ScalarExpr};
use crate::program::Program;

/// Parse errors with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LangError> for ParseError {
    fn from(e: LangError) -> Self {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    MatMul, // %*%
    Plus,
    Minus,
    Star,
    Slash,
    Assign,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Dot,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // comment to end of line
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '%' => {
                chars.next();
                if chars.next() == Some('*') && chars.next() == Some('%') {
                    out.push((Tok::MatMul, line));
                } else {
                    return Err(ParseError {
                        line,
                        message: "expected %*%".into(),
                    });
                }
            }
            '+' => {
                chars.next();
                out.push((Tok::Plus, line));
            }
            '-' => {
                chars.next();
                out.push((Tok::Minus, line));
            }
            '*' => {
                chars.next();
                out.push((Tok::Star, line));
            }
            '/' => {
                chars.next();
                out.push((Tok::Slash, line));
            }
            '=' => {
                chars.next();
                out.push((Tok::Assign, line));
            }
            '(' => {
                chars.next();
                out.push((Tok::LParen, line));
            }
            ')' => {
                chars.next();
                out.push((Tok::RParen, line));
            }
            '{' => {
                chars.next();
                out.push((Tok::LBrace, line));
            }
            '}' => {
                chars.next();
                out.push((Tok::RBrace, line));
            }
            ',' => {
                chars.next();
                out.push((Tok::Comma, line));
            }
            ':' => {
                chars.next();
                out.push((Tok::Colon, line));
            }
            '.' => {
                // Either a postfix selector (.t) or part of a number (.5)
                let mut clone = chars.clone();
                clone.next();
                if clone.peek().map(|c| c.is_ascii_digit()).unwrap_or(false)
                    && !matches!(
                        out.last(),
                        Some((Tok::Ident(_) | Tok::RParen | Tok::Number(_), _))
                    )
                {
                    let num = lex_number(&mut chars, line)?;
                    out.push((Tok::Number(num), line));
                } else {
                    chars.next();
                    out.push((Tok::Dot, line));
                }
            }
            c if c.is_ascii_digit() => {
                let num = lex_number(&mut chars, line)?;
                out.push((Tok::Number(num), line));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(s), line));
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

fn lex_number(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    line: usize,
) -> Result<f64, ParseError> {
    let mut s = String::new();
    while let Some(&c) = chars.peek() {
        let exponent_sign = (c == '-' || c == '+') && (s.ends_with('e') || s.ends_with('E'));
        if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || exponent_sign {
            s.push(c);
            chars.next();
        } else {
            break;
        }
    }
    s.parse().map_err(|_| ParseError {
        line,
        message: format!("bad number literal '{s}'"),
    })
}

/// A value during script evaluation: a matrix expression or a driver-side
/// scalar expression (numbers are `ScalarExpr::Const`).
#[derive(Debug, Clone)]
enum Value {
    Matrix(Expr),
    Scalar(ScalarExpr),
}

/// The parser/evaluator: consumes tokens, emits into a [`Program`].
struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    program: &'a mut Program,
    env: HashMap<String, Value>,
}

/// Result of parsing a script.
#[derive(Debug)]
pub struct ParsedScript {
    /// The assembled program (also contains outputs/stores).
    pub program: Program,
    /// Final value of every script variable that names a matrix.
    pub variables: HashMap<String, Expr>,
}

/// Parse and evaluate a script into a fresh [`Program`].
///
/// ```
/// let parsed = dmac_lang::parse_script(
///     "A = load(A, 100, 50, 0.1)\nG = A.t %*% A\noutput(G)\n",
/// ).unwrap();
/// assert_eq!(parsed.program.ops().len(), 1);
/// assert!(parsed.variables.contains_key("G"));
/// ```
pub fn parse_script(src: &str) -> Result<ParsedScript, ParseError> {
    let mut program = Program::new();
    let toks = lex(src)?;
    let mut parser = Parser {
        toks,
        pos: 0,
        program: &mut program,
        env: HashMap::new(),
    };
    parser.script()?;
    let variables = parser
        .env
        .iter()
        .filter_map(|(k, v)| match v {
            Value::Matrix(e) => Some((k.clone(), *e)),
            Value::Scalar(_) => None,
        })
        .collect();
    Ok(ParsedScript { program, variables })
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            got => Err(self.err(format!("expected {t:?}, got {got:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            got => Err(self.err(format!("expected identifier, got {got:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<f64, ParseError> {
        // Scalar expressions that fold to constants are accepted too.
        match self.next() {
            Some(Tok::Number(n)) => Ok(n),
            Some(Tok::Ident(name)) => match self.env.get(&name) {
                Some(Value::Scalar(ScalarExpr::Const(v))) => Ok(*v),
                _ => Err(self.err(format!("'{name}' is not a numeric constant"))),
            },
            got => Err(self.err(format!("expected number, got {got:?}"))),
        }
    }

    fn script(&mut self) -> Result<(), ParseError> {
        while self.peek().is_some() {
            self.statement()?;
        }
        Ok(())
    }

    fn statement(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Ident(name)) if name == "for" => self.for_loop(),
            Some(Tok::Ident(name)) if name == "output" || name == "store" => {
                let keyword = self.expect_ident()?;
                self.expect(Tok::LParen)?;
                let var = self.expect_ident()?;
                self.expect(Tok::RParen)?;
                let value = self
                    .env
                    .get(&var)
                    .cloned()
                    .ok_or_else(|| self.err(format!("unknown variable '{var}'")))?;
                let Value::Matrix(e) = value else {
                    return Err(self.err(format!("'{var}' is a scalar, not a matrix")));
                };
                if keyword == "store" {
                    self.program.store(e, &var);
                } else {
                    self.program.output(e);
                }
                Ok(())
            }
            Some(Tok::Ident(_)) => self.assignment(),
            other => Err(self.err(format!("expected statement, got {other:?}"))),
        }
    }

    fn assignment(&mut self) -> Result<(), ParseError> {
        let name = self.expect_ident()?;
        self.expect(Tok::Assign)?;
        let value = self.expression()?;
        self.env.insert(name, value);
        Ok(())
    }

    fn for_loop(&mut self) -> Result<(), ParseError> {
        self.expect_ident()?; // 'for'
        self.expect(Tok::LParen)?;
        let var = self.expect_ident()?;
        let kw = self.expect_ident()?;
        if kw != "in" {
            return Err(self.err("expected 'in'"));
        }
        let lo = self.expect_number()? as i64;
        self.expect(Tok::Colon)?;
        let hi = self.expect_number()? as i64;
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;
        let body_start = self.pos;
        if lo > hi {
            return Err(self.err(format!("empty loop range {lo}:{hi}")));
        }
        for (phase, i) in (lo..=hi).enumerate() {
            self.pos = body_start;
            self.program.set_phase(phase);
            self.env
                .insert(var.clone(), Value::Scalar(ScalarExpr::Const(i as f64)));
            while !matches!(self.peek(), Some(Tok::RBrace)) {
                if self.peek().is_none() {
                    return Err(self.err("unterminated loop body"));
                }
                self.statement()?;
            }
        }
        self.expect(Tok::RBrace)?;
        self.env.remove(&var);
        Ok(())
    }

    /// expression := term (('+'|'-') term)*
    fn expression(&mut self) -> Result<Value, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => Tok::Plus,
                Some(Tok::Minus) => Tok::Minus,
                _ => break,
            };
            self.next();
            let rhs = self.term()?;
            lhs = self.combine_additive(lhs, rhs, op)?;
        }
        Ok(lhs)
    }

    /// term := factor (('%*%'|'*'|'/') factor)*
    fn term(&mut self) -> Result<Value, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::MatMul) => Tok::MatMul,
                Some(Tok::Star) => Tok::Star,
                Some(Tok::Slash) => Tok::Slash,
                _ => break,
            };
            self.next();
            let rhs = self.factor()?;
            lhs = self.combine_multiplicative(lhs, rhs, op)?;
        }
        Ok(lhs)
    }

    fn combine_additive(&mut self, a: Value, b: Value, op: Tok) -> Result<Value, ParseError> {
        let line = self.line();
        let fail = |e: LangError| ParseError {
            line,
            message: e.to_string(),
        };
        Ok(match (a, b, op) {
            (Value::Matrix(x), Value::Matrix(y), Tok::Plus) => {
                Value::Matrix(self.program.add(x, y).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Matrix(y), Tok::Minus) => {
                Value::Matrix(self.program.sub(x, y).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Scalar(s), Tok::Plus)
            | (Value::Scalar(s), Value::Matrix(x), Tok::Plus) => {
                Value::Matrix(self.program.add_scalar(x, s).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Scalar(s), Tok::Minus) => {
                Value::Matrix(self.program.add_scalar(x, -s).map_err(fail)?)
            }
            (Value::Scalar(s), Value::Matrix(x), Tok::Minus) => {
                // s - X = (-X) + s
                let neg = self.program.scale_const(x, -1.0).map_err(fail)?;
                Value::Matrix(self.program.add_scalar(neg, s).map_err(fail)?)
            }
            (Value::Scalar(s), Value::Scalar(t), Tok::Plus) => Value::Scalar(s + t),
            (Value::Scalar(s), Value::Scalar(t), Tok::Minus) => Value::Scalar(s - t),
            _ => return Err(self.err("invalid additive combination")),
        })
    }

    fn combine_multiplicative(&mut self, a: Value, b: Value, op: Tok) -> Result<Value, ParseError> {
        let line = self.line();
        let fail = |e: LangError| ParseError {
            line,
            message: e.to_string(),
        };
        Ok(match (a, b, op) {
            (Value::Matrix(x), Value::Matrix(y), Tok::MatMul) => {
                Value::Matrix(self.program.matmul(x, y).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Matrix(y), Tok::Star) => {
                Value::Matrix(self.program.cell_mul(x, y).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Matrix(y), Tok::Slash) => {
                Value::Matrix(self.program.cell_div(x, y).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Scalar(s), Tok::Star)
            | (Value::Scalar(s), Value::Matrix(x), Tok::Star) => {
                Value::Matrix(self.program.scale(x, s).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Scalar(s), Tok::Slash) => Value::Matrix(
                self.program
                    .scale(x, ScalarExpr::c(1.0) / s)
                    .map_err(fail)?,
            ),
            (Value::Scalar(s), Value::Scalar(t), Tok::Star) => Value::Scalar(s * t),
            (Value::Scalar(s), Value::Scalar(t), Tok::Slash) => Value::Scalar(s / t),
            (_, _, Tok::MatMul) => return Err(self.err("%*% needs two matrices")),
            _ => return Err(self.err("invalid multiplicative combination")),
        })
    }

    /// factor := primary ('.' selector)*
    fn factor(&mut self) -> Result<Value, ParseError> {
        let mut v = self.primary()?;
        while matches!(self.peek(), Some(Tok::Dot)) {
            self.next();
            let sel = self.expect_ident()?;
            v = match (&v, sel.as_str()) {
                (Value::Matrix(e), "t") => Value::Matrix(e.t()),
                (Value::Matrix(e), "sum") => {
                    Value::Scalar(self.program.sum(*e).map_err(ParseError::from)?)
                }
                (Value::Matrix(e), "norm2") => {
                    Value::Scalar(self.program.norm2(*e).map_err(ParseError::from)?)
                }
                (Value::Matrix(e), "value") => {
                    Value::Scalar(self.program.value(*e).map_err(ParseError::from)?)
                }
                (Value::Matrix(_), other) => {
                    return Err(self.err(format!("unknown matrix selector '.{other}'")))
                }
                (Value::Scalar(_), other) => {
                    return Err(self.err(format!("scalars have no selector '.{other}'")))
                }
            };
        }
        Ok(v)
    }

    fn primary(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Tok::Number(n)) => Ok(Value::Scalar(ScalarExpr::Const(n))),
            Some(Tok::Minus) => {
                let v = self.primary()?;
                match v {
                    Value::Scalar(s) => Ok(Value::Scalar(-s)),
                    Value::Matrix(e) => Ok(Value::Matrix(
                        self.program
                            .scale_const(e, -1.0)
                            .map_err(ParseError::from)?,
                    )),
                }
            }
            Some(Tok::LParen) => {
                let v = self.expression()?;
                self.expect(Tok::RParen)?;
                Ok(v)
            }
            Some(Tok::Ident(name)) if name == "load" => {
                self.expect(Tok::LParen)?;
                let bind = self.expect_ident()?;
                self.expect(Tok::Comma)?;
                let rows = self.expect_number()? as usize;
                self.expect(Tok::Comma)?;
                let cols = self.expect_number()? as usize;
                self.expect(Tok::Comma)?;
                let sparsity = self.expect_number()?;
                self.expect(Tok::RParen)?;
                Ok(Value::Matrix(
                    self.program.load(&bind, rows, cols, sparsity),
                ))
            }
            Some(Tok::Ident(name)) if name == "random" => {
                self.expect(Tok::LParen)?;
                let bind = self.expect_ident()?;
                self.expect(Tok::Comma)?;
                let rows = self.expect_number()? as usize;
                self.expect(Tok::Comma)?;
                let cols = self.expect_number()? as usize;
                self.expect(Tok::RParen)?;
                Ok(Value::Matrix(self.program.random(&bind, rows, cols)))
            }
            Some(Tok::Ident(name)) => self
                .env
                .get(&name)
                .cloned()
                .ok_or_else(|| self.err(format!("unknown variable '{name}'"))),
            got => Err(self.err(format!("expected expression, got {got:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::OpKind;

    #[test]
    fn parses_gnmf_code1() {
        let script = r#"
            # GNMF, paper Code 1
            V = load(V, 1000, 800, 0.05)
            W = random(W, 1000, 20)
            H = random(H, 20, 800)
            for (i in 0:1) {
                H = H * (W.t %*% V) / (W.t %*% W %*% H)
                W = W * (V %*% H.t) / (W %*% H %*% H.t)
            }
            store(W)
            store(H)
        "#;
        let parsed = parse_script(script).unwrap();
        let p = &parsed.program;
        p.validate().unwrap();
        // 10 operators per iteration, 2 iterations
        assert_eq!(p.ops().len(), 20);
        assert_eq!(p.ops()[0].phase, 0);
        assert_eq!(p.ops()[10].phase, 1);
        assert_eq!(p.outputs().len(), 2);
        assert!(parsed.variables.contains_key("W"));
        assert!(parsed.variables.contains_key("H"));
    }

    #[test]
    fn parses_pagerank_code2() {
        let script = r#"
            link = load(link, 100, 100, 0.05)
            D = load(D, 1, 100, 1.0)
            rank = random(rank, 1, 100)
            for (i in 0:9) {
                rank = (rank %*% link) * 0.85 + D * 0.15
            }
            output(rank)
        "#;
        let parsed = parse_script(script).unwrap();
        parsed.program.validate().unwrap();
        // per iteration: matmul, scale, scale, add = 4 ops
        assert_eq!(parsed.program.ops().len(), 40);
    }

    #[test]
    fn parses_scalar_reductions_and_arithmetic() {
        let script = r#"
            A = load(A, 10, 10, 1.0)
            s = A.sum
            n = A.norm2
            B = A * (s / (n + 1.0))
            C = B - 0.5
            output(C)
        "#;
        let parsed = parse_script(script).unwrap();
        let reduces = parsed
            .program
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Reduce { .. }))
            .count();
        assert_eq!(reduces, 2);
        parsed.program.validate().unwrap();
    }

    #[test]
    fn value_selector_requires_1x1() {
        let script = r#"
            A = load(A, 4, 4, 1.0)
            v = A.value
            output(A)
        "#;
        let err = parse_script(script).unwrap_err();
        assert!(err.message.contains("1x1"), "{err}");
    }

    #[test]
    fn precedence_matches_paper_listings() {
        // H * X / Y must parse as (H * X) / Y.
        let script = r#"
            H = load(H, 4, 4, 1.0)
            X = load(X, 4, 4, 1.0)
            Y = load(Y, 4, 4, 1.0)
            Z = H * X / Y
            output(Z)
        "#;
        let parsed = parse_script(script).unwrap();
        let kinds: Vec<&OpKind> = parsed.program.ops().iter().map(|o| &o.kind).collect();
        assert!(matches!(
            kinds[0],
            OpKind::Binary {
                op: crate::expr::BinOp::CellMul,
                ..
            }
        ));
        assert!(matches!(
            kinds[1],
            OpKind::Binary {
                op: crate::expr::BinOp::CellDiv,
                ..
            }
        ));
    }

    #[test]
    fn loop_variable_is_a_constant_inside_the_body() {
        let script = r#"
            A = load(A, 4, 4, 1.0)
            for (i in 1:3) {
                A = A * (i + 1.0)
            }
            output(A)
        "#;
        let parsed = parse_script(script).unwrap();
        // three scale ops with constants 2, 3, 4
        let consts: Vec<f64> = parsed
            .program
            .ops()
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Unary {
                    op: crate::expr::UnaryOp::Scale(s),
                    ..
                } => Some(s.eval(&|_| 0.0)),
                _ => None,
            })
            .collect();
        assert_eq!(consts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_script("A = load(A, 4, 4, 1.0)\nB = A %*% C\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown variable 'C'"));
    }

    #[test]
    fn shape_errors_surface_as_parse_errors() {
        let err = parse_script("A = load(A, 4, 5, 1.0)\nB = A %*% A\noutput(B)\n").unwrap_err();
        assert!(err.message.contains("shape mismatch"), "{err}");
    }

    #[test]
    fn comments_and_negatives() {
        let script = r#"
            # leading comment
            A = load(A, 3, 3, 1.0)  # trailing comment
            B = -A + 1.5
            C = B * -2.0
            output(C)
        "#;
        parse_script(script).unwrap().program.validate().unwrap();
    }

    #[test]
    fn matmul_of_scalar_is_rejected() {
        let err = parse_script("A = load(A, 3, 3, 1.0)\nB = A %*% 2.0\noutput(B)\n").unwrap_err();
        assert!(err.message.contains("two matrices"), "{err}");
    }
}
