//! An R-like script frontend for matrix programs (paper §5.4: "we provide
//! a set of R-Like symbols to represent each matrix operator").
//!
//! The accepted language mirrors the paper's code listings:
//!
//! ```text
//! V = load(V, 1000, 800, 0.05)
//! W = random(W, 1000, 20)
//! H = random(H, 20, 800)
//! for (i in 0:9) {
//!     H = H * (W.t %*% V) / (W.t %*% W %*% H)
//!     W = W * (V %*% H.t) / (W %*% H %*% H.t)
//! }
//! store(W)
//! store(H)
//! ```
//!
//! * `%*%` is matrix multiplication; `*` and `/` are cell-wise; `+`/`-`
//!   element-wise; all four share the paper's left-associative reading.
//! * `X.t` is the transposed view (free, per the Transpose dependency).
//! * `X.sum`, `X.norm2`, `X.value` are reductions producing driver-side
//!   scalars; scalars mix freely with matrices (`rank * 0.85`,
//!   `w + p * alpha`).
//! * `for (i in a:b) { … }` unrolls the body (the paper plans the whole
//!   program); each unrolled iteration gets its own phase tag, and the
//!   loop variable is visible as a numeric constant.
//! * `output(X)` marks an output; `store(X)` also persists it into the
//!   session environment under its variable name.

use std::collections::HashMap;
use std::fmt;

use crate::error::LangError;
use crate::expr::{Expr, ScalarExpr};
use crate::program::Program;

/// A source location: 1-based line plus the half-open byte range
/// `[start, end)` into the original script text. Byte offsets survive the
/// loop-unrolling re-parse unchanged, so diagnostics from any unrolled
/// iteration point back at the single source statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based line of the first byte.
    pub line: usize,
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive).
    pub end: usize,
}

impl Span {
    /// 1-based column of `start` within its line, given the source text.
    pub fn column(&self, src: &str) -> usize {
        let line_start = src[..self.start.min(src.len())]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        src[line_start..self.start.min(src.len())].chars().count() + 1
    }

    /// The full text of the line containing `start`.
    pub fn line_text<'a>(&self, src: &'a str) -> &'a str {
        let at = self.start.min(src.len());
        let line_start = src[..at].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = src[line_start..]
            .find('\n')
            .map(|i| line_start + i)
            .unwrap_or(src.len());
        &src[line_start..line_end]
    }
}

/// Parse errors with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Exact byte range of the offending token, when known.
    pub span: Option<Span>,
    /// Explanation.
    pub message: String,
}

impl ParseError {
    fn at(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            line: span.line,
            span: Some(span),
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LangError> for ParseError {
    fn from(e: LangError) -> Self {
        ParseError {
            line: 0,
            span: None,
            message: e.to_string(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    MatMul, // %*%
    Plus,
    Minus,
    Star,
    Slash,
    Assign,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Dot,
}

fn lex(src: &str) -> Result<Vec<(Tok, Span)>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.char_indices().peekable();
    while let Some(&(at, c)) = chars.peek() {
        let one = |line: usize| Span {
            line,
            start: at,
            end: at + c.len_utf8(),
        };
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // comment to end of line
                for (_, c) in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '%' => {
                chars.next();
                if matches!(chars.next(), Some((_, '*'))) && matches!(chars.next(), Some((_, '%')))
                {
                    out.push((
                        Tok::MatMul,
                        Span {
                            line,
                            start: at,
                            end: at + 3,
                        },
                    ));
                } else {
                    return Err(ParseError::at("expected %*%", one(line)));
                }
            }
            '+' | '-' | '*' | '/' | '=' | '(' | ')' | '{' | '}' | ',' | ':' => {
                chars.next();
                let t = match c {
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '/' => Tok::Slash,
                    '=' => Tok::Assign,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    ',' => Tok::Comma,
                    _ => Tok::Colon,
                };
                out.push((t, one(line)));
            }
            '.' => {
                // Either a postfix selector (.t) or part of a number (.5)
                let mut clone = chars.clone();
                clone.next();
                if clone
                    .peek()
                    .map(|&(_, c)| c.is_ascii_digit())
                    .unwrap_or(false)
                    && !matches!(
                        out.last(),
                        Some((Tok::Ident(_) | Tok::RParen | Tok::Number(_), _))
                    )
                {
                    let (num, span) = lex_number(&mut chars, line, src.len())?;
                    out.push((Tok::Number(num), span));
                } else {
                    chars.next();
                    out.push((Tok::Dot, one(line)));
                }
            }
            c if c.is_ascii_digit() => {
                let (num, span) = lex_number(&mut chars, line, src.len())?;
                out.push((Tok::Number(num), span));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                let mut end = at;
                while let Some(&(i, c)) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        end = i + c.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((
                    Tok::Ident(s),
                    Span {
                        line,
                        start: at,
                        end,
                    },
                ));
            }
            other => {
                return Err(ParseError::at(
                    format!("unexpected character '{other}'"),
                    one(line),
                ))
            }
        }
    }
    Ok(out)
}

fn lex_number(
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    line: usize,
    src_len: usize,
) -> Result<(f64, Span), ParseError> {
    let mut s = String::new();
    let mut start = src_len;
    let mut end = src_len;
    while let Some(&(i, c)) = chars.peek() {
        let exponent_sign = (c == '-' || c == '+') && (s.ends_with('e') || s.ends_with('E'));
        if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || exponent_sign {
            if s.is_empty() {
                start = i;
            }
            s.push(c);
            end = i + c.len_utf8();
            chars.next();
        } else {
            break;
        }
    }
    let span = Span { line, start, end };
    s.parse()
        .map(|n| (n, span))
        .map_err(|_| ParseError::at(format!("bad number literal '{s}'"), span))
}

/// A value during script evaluation: a matrix expression or a driver-side
/// scalar expression (numbers are `ScalarExpr::Const`).
#[derive(Debug, Clone)]
enum Value {
    Matrix(Expr),
    Scalar(ScalarExpr),
}

/// The parser/evaluator: consumes tokens, emits into a [`Program`].
struct Parser<'a> {
    toks: Vec<(Tok, Span)>,
    pos: usize,
    program: &'a mut Program,
    env: HashMap<String, Value>,
    /// Per-operator source span, parallel to `program.ops()`: the span of
    /// the statement (or finer construct) that emitted the operator.
    op_spans: Vec<Option<Span>>,
    /// Spans of the second `.t` in a consecutive `.t.t` chain (which
    /// cancels silently inside `Expr::t`, so only the parser can see it).
    redundant_transposes: Vec<Span>,
    /// Last assignment span + "read since assigned" flag per variable.
    assigns: HashMap<String, (Span, bool)>,
    /// Assignments overwritten (or left dangling) without ever being read.
    dead_stores: Vec<(String, Span)>,
}

/// Result of parsing a script.
#[derive(Debug)]
pub struct ParsedScript {
    /// The assembled program (also contains outputs/stores).
    pub program: Program,
    /// Final value of every script variable that names a matrix.
    pub variables: HashMap<String, Expr>,
    /// Per-operator statement span, parallel to `program.ops()`.
    pub op_spans: Vec<Option<Span>>,
    /// Spans of syntactically redundant transposes (`A.t.t`), which cancel
    /// inside `Expr::t` and therefore never reach the operator list.
    pub redundant_transposes: Vec<Span>,
    /// Variables assigned but never read before re-assignment or EOF
    /// (excluding loop variables and stored/output variables), with the
    /// span of the dead assignment.
    pub dead_stores: Vec<(String, Span)>,
}

/// Parse and evaluate a script into a fresh [`Program`].
///
/// ```
/// let parsed = dmac_lang::parse_script(
///     "A = load(A, 100, 50, 0.1)\nG = A.t %*% A\noutput(G)\n",
/// ).unwrap();
/// assert_eq!(parsed.program.ops().len(), 1);
/// assert!(parsed.variables.contains_key("G"));
/// ```
pub fn parse_script(src: &str) -> Result<ParsedScript, ParseError> {
    let mut program = Program::new();
    let toks = lex(src)?;
    let mut parser = Parser {
        toks,
        pos: 0,
        program: &mut program,
        env: HashMap::new(),
        op_spans: Vec::new(),
        redundant_transposes: Vec::new(),
        assigns: HashMap::new(),
        dead_stores: Vec::new(),
    };
    parser.script()?;
    let Parser {
        env,
        op_spans,
        mut redundant_transposes,
        assigns,
        mut dead_stores,
        ..
    } = parser;
    let variables = env
        .iter()
        .filter_map(|(k, v)| match v {
            Value::Matrix(e) => Some((k.clone(), *e)),
            Value::Scalar(_) => None,
        })
        .collect();
    // Flush assignments that were never read before EOF.
    for (name, (span, read)) in assigns {
        if !read && !dead_stores.iter().any(|(n, s)| *n == name && *s == span) {
            dead_stores.push((name, span));
        }
    }
    dead_stores.sort_by_key(|(n, s)| (s.start, n.clone()));
    redundant_transposes.sort_by_key(|s| s.start);
    redundant_transposes.dedup();
    Ok(ParsedScript {
        program,
        variables,
        op_spans,
        redundant_transposes,
        dead_stores,
    })
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    /// Span of the current token (clamped to the last token at EOF).
    fn span(&self) -> Option<Span> {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, s)| *s)
    }

    fn line(&self) -> usize {
        self.span().map(|s| s.line).unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            span: self.span(),
            message: message.into(),
        }
    }

    /// Record that `name` was (re-)assigned at `span`; an unread previous
    /// assignment becomes a dead store.
    fn note_assign(&mut self, name: &str, span: Option<Span>) {
        let Some(span) = span else { return };
        if let Some((old, read)) = self.assigns.insert(name.to_string(), (span, false)) {
            if !read && !self.dead_stores.iter().any(|(n, s)| n == name && *s == old) {
                self.dead_stores.push((name.to_string(), old));
            }
        }
    }

    /// Record that `name`'s current value was consumed.
    fn note_read(&mut self, name: &str) {
        if let Some(e) = self.assigns.get_mut(name) {
            e.1 = true;
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            got => Err(self.err(format!("expected {t:?}, got {got:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            got => Err(self.err(format!("expected identifier, got {got:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<f64, ParseError> {
        // Scalar expressions that fold to constants are accepted too.
        match self.next() {
            Some(Tok::Number(n)) => Ok(n),
            Some(Tok::Ident(name)) => match self.env.get(&name) {
                Some(Value::Scalar(ScalarExpr::Const(v))) => {
                    let v = *v;
                    self.note_read(&name);
                    Ok(v)
                }
                _ => Err(self.err(format!("'{name}' is not a numeric constant"))),
            },
            got => Err(self.err(format!("expected number, got {got:?}"))),
        }
    }

    fn script(&mut self) -> Result<(), ParseError> {
        while self.peek().is_some() {
            self.statement()?;
        }
        Ok(())
    }

    fn statement(&mut self) -> Result<(), ParseError> {
        let stmt_span = self.span();
        let r = self.statement_inner();
        // Tag every operator the statement emitted with its span. Nested
        // statements (loop bodies) have already tagged theirs.
        while self.op_spans.len() < self.program.ops().len() {
            self.op_spans.push(stmt_span);
        }
        r
    }

    fn statement_inner(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Ident(name)) if name == "for" => self.for_loop(),
            Some(Tok::Ident(name)) if name == "output" || name == "store" => {
                let keyword = self.expect_ident()?;
                self.expect(Tok::LParen)?;
                let var_span = self.span();
                let var = self.expect_ident()?;
                self.expect(Tok::RParen)?;
                let value = self.env.get(&var).cloned().ok_or_else(|| ParseError {
                    line: var_span.map(|s| s.line).unwrap_or(0),
                    span: var_span,
                    message: format!("unknown variable '{var}'"),
                })?;
                let Value::Matrix(e) = value else {
                    return Err(self.err(format!("'{var}' is a scalar, not a matrix")));
                };
                self.note_read(&var);
                if keyword == "store" {
                    self.program.store(e, &var);
                } else {
                    self.program.output(e);
                }
                Ok(())
            }
            Some(Tok::Ident(_)) => self.assignment(),
            other => Err(self.err(format!("expected statement, got {other:?}"))),
        }
    }

    fn assignment(&mut self) -> Result<(), ParseError> {
        let name_span = self.span();
        let name = self.expect_ident()?;
        self.expect(Tok::Assign)?;
        let value = self.expression()?;
        self.note_assign(&name, name_span);
        self.env.insert(name, value);
        Ok(())
    }

    fn for_loop(&mut self) -> Result<(), ParseError> {
        self.expect_ident()?; // 'for'
        self.expect(Tok::LParen)?;
        let var = self.expect_ident()?;
        let kw = self.expect_ident()?;
        if kw != "in" {
            return Err(self.err("expected 'in'"));
        }
        let lo = self.expect_number()? as i64;
        self.expect(Tok::Colon)?;
        let hi = self.expect_number()? as i64;
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;
        let body_start = self.pos;
        if lo > hi {
            return Err(self.err(format!("empty loop range {lo}:{hi}")));
        }
        for (phase, i) in (lo..=hi).enumerate() {
            self.pos = body_start;
            self.program.set_phase(phase);
            self.env
                .insert(var.clone(), Value::Scalar(ScalarExpr::Const(i as f64)));
            while !matches!(self.peek(), Some(Tok::RBrace)) {
                if self.peek().is_none() {
                    return Err(self.err("unterminated loop body"));
                }
                self.statement()?;
            }
        }
        self.expect(Tok::RBrace)?;
        self.env.remove(&var);
        Ok(())
    }

    /// expression := term (('+'|'-') term)*
    fn expression(&mut self) -> Result<Value, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => Tok::Plus,
                Some(Tok::Minus) => Tok::Minus,
                _ => break,
            };
            let op_span = self.span();
            self.next();
            let rhs = self.term()?;
            lhs = self.combine_additive(lhs, rhs, op, op_span)?;
        }
        Ok(lhs)
    }

    /// term := factor (('%*%'|'*'|'/') factor)*
    fn term(&mut self) -> Result<Value, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::MatMul) => Tok::MatMul,
                Some(Tok::Star) => Tok::Star,
                Some(Tok::Slash) => Tok::Slash,
                _ => break,
            };
            let op_span = self.span();
            self.next();
            let rhs = self.factor()?;
            lhs = self.combine_multiplicative(lhs, rhs, op, op_span)?;
        }
        Ok(lhs)
    }

    fn combine_additive(
        &mut self,
        a: Value,
        b: Value,
        op: Tok,
        at: Option<Span>,
    ) -> Result<Value, ParseError> {
        // Blame the operator token, not whatever happens to follow the
        // expression (shape errors would otherwise point past the line).
        let span = at.or_else(|| self.span());
        let line = span.map(|s| s.line).unwrap_or_else(|| self.line());
        let fail = |e: LangError| ParseError {
            line,
            span,
            message: e.to_string(),
        };
        Ok(match (a, b, op) {
            (Value::Matrix(x), Value::Matrix(y), Tok::Plus) => {
                Value::Matrix(self.program.add(x, y).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Matrix(y), Tok::Minus) => {
                Value::Matrix(self.program.sub(x, y).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Scalar(s), Tok::Plus)
            | (Value::Scalar(s), Value::Matrix(x), Tok::Plus) => {
                Value::Matrix(self.program.add_scalar(x, s).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Scalar(s), Tok::Minus) => {
                Value::Matrix(self.program.add_scalar(x, -s).map_err(fail)?)
            }
            (Value::Scalar(s), Value::Matrix(x), Tok::Minus) => {
                // s - X = (-X) + s
                let neg = self.program.scale_const(x, -1.0).map_err(fail)?;
                Value::Matrix(self.program.add_scalar(neg, s).map_err(fail)?)
            }
            (Value::Scalar(s), Value::Scalar(t), Tok::Plus) => Value::Scalar(s + t),
            (Value::Scalar(s), Value::Scalar(t), Tok::Minus) => Value::Scalar(s - t),
            _ => return Err(self.err("invalid additive combination")),
        })
    }

    fn combine_multiplicative(
        &mut self,
        a: Value,
        b: Value,
        op: Tok,
        at: Option<Span>,
    ) -> Result<Value, ParseError> {
        let span = at.or_else(|| self.span());
        let line = span.map(|s| s.line).unwrap_or_else(|| self.line());
        let fail = |e: LangError| ParseError {
            line,
            span,
            message: e.to_string(),
        };
        Ok(match (a, b, op) {
            (Value::Matrix(x), Value::Matrix(y), Tok::MatMul) => {
                Value::Matrix(self.program.matmul(x, y).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Matrix(y), Tok::Star) => {
                Value::Matrix(self.program.cell_mul(x, y).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Matrix(y), Tok::Slash) => {
                Value::Matrix(self.program.cell_div(x, y).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Scalar(s), Tok::Star)
            | (Value::Scalar(s), Value::Matrix(x), Tok::Star) => {
                Value::Matrix(self.program.scale(x, s).map_err(fail)?)
            }
            (Value::Matrix(x), Value::Scalar(s), Tok::Slash) => Value::Matrix(
                self.program
                    .scale(x, ScalarExpr::c(1.0) / s)
                    .map_err(fail)?,
            ),
            (Value::Scalar(s), Value::Scalar(t), Tok::Star) => Value::Scalar(s * t),
            (Value::Scalar(s), Value::Scalar(t), Tok::Slash) => Value::Scalar(s / t),
            (_, _, Tok::MatMul) => return Err(self.err("%*% needs two matrices")),
            _ => return Err(self.err("invalid multiplicative combination")),
        })
    }

    /// factor := primary ('.' selector)*
    fn factor(&mut self) -> Result<Value, ParseError> {
        let mut v = self.primary()?;
        let mut last_was_t = false;
        while matches!(self.peek(), Some(Tok::Dot)) {
            self.next();
            let sel_span = self.span();
            let sel = self.expect_ident()?;
            let is_t = matches!((&v, sel.as_str()), (Value::Matrix(_), "t"));
            v = match (&v, sel.as_str()) {
                (Value::Matrix(e), "t") => {
                    if last_was_t {
                        if let Some(s) = sel_span {
                            self.redundant_transposes.push(s);
                        }
                    }
                    Value::Matrix(e.t())
                }
                (Value::Matrix(e), "sum") => {
                    Value::Scalar(self.program.sum(*e).map_err(ParseError::from)?)
                }
                (Value::Matrix(e), "norm2") => {
                    Value::Scalar(self.program.norm2(*e).map_err(ParseError::from)?)
                }
                (Value::Matrix(e), "value") => {
                    Value::Scalar(self.program.value(*e).map_err(ParseError::from)?)
                }
                (Value::Matrix(_), other) => {
                    return Err(self.err(format!("unknown matrix selector '.{other}'")))
                }
                (Value::Scalar(_), other) => {
                    return Err(self.err(format!("scalars have no selector '.{other}'")))
                }
            };
            last_was_t = is_t;
        }
        Ok(v)
    }

    fn primary(&mut self) -> Result<Value, ParseError> {
        let at = self.span();
        match self.next() {
            Some(Tok::Number(n)) => Ok(Value::Scalar(ScalarExpr::Const(n))),
            Some(Tok::Minus) => {
                let v = self.primary()?;
                match v {
                    Value::Scalar(s) => Ok(Value::Scalar(-s)),
                    Value::Matrix(e) => Ok(Value::Matrix(
                        self.program
                            .scale_const(e, -1.0)
                            .map_err(ParseError::from)?,
                    )),
                }
            }
            Some(Tok::LParen) => {
                let v = self.expression()?;
                self.expect(Tok::RParen)?;
                Ok(v)
            }
            Some(Tok::Ident(name)) if name == "load" => {
                self.expect(Tok::LParen)?;
                let bind = self.expect_ident()?;
                self.expect(Tok::Comma)?;
                let rows = self.expect_number()? as usize;
                self.expect(Tok::Comma)?;
                let cols = self.expect_number()? as usize;
                self.expect(Tok::Comma)?;
                let sparsity = self.expect_number()?;
                self.expect(Tok::RParen)?;
                Ok(Value::Matrix(
                    self.program.load(&bind, rows, cols, sparsity),
                ))
            }
            Some(Tok::Ident(name)) if name == "random" => {
                self.expect(Tok::LParen)?;
                let bind = self.expect_ident()?;
                self.expect(Tok::Comma)?;
                let rows = self.expect_number()? as usize;
                self.expect(Tok::Comma)?;
                let cols = self.expect_number()? as usize;
                self.expect(Tok::RParen)?;
                Ok(Value::Matrix(self.program.random(&bind, rows, cols)))
            }
            Some(Tok::Ident(name)) => {
                let v = self.env.get(&name).cloned().ok_or_else(|| ParseError {
                    line: at.map(|s| s.line).unwrap_or(0),
                    span: at,
                    message: format!("unknown variable '{name}'"),
                })?;
                self.note_read(&name);
                Ok(v)
            }
            got => Err(self.err(format!("expected expression, got {got:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::OpKind;

    #[test]
    fn parses_gnmf_code1() {
        let script = r#"
            # GNMF, paper Code 1
            V = load(V, 1000, 800, 0.05)
            W = random(W, 1000, 20)
            H = random(H, 20, 800)
            for (i in 0:1) {
                H = H * (W.t %*% V) / (W.t %*% W %*% H)
                W = W * (V %*% H.t) / (W %*% H %*% H.t)
            }
            store(W)
            store(H)
        "#;
        let parsed = parse_script(script).unwrap();
        let p = &parsed.program;
        p.validate().unwrap();
        // 10 operators per iteration, 2 iterations
        assert_eq!(p.ops().len(), 20);
        assert_eq!(p.ops()[0].phase, 0);
        assert_eq!(p.ops()[10].phase, 1);
        assert_eq!(p.outputs().len(), 2);
        assert!(parsed.variables.contains_key("W"));
        assert!(parsed.variables.contains_key("H"));
    }

    #[test]
    fn parses_pagerank_code2() {
        let script = r#"
            link = load(link, 100, 100, 0.05)
            D = load(D, 1, 100, 1.0)
            rank = random(rank, 1, 100)
            for (i in 0:9) {
                rank = (rank %*% link) * 0.85 + D * 0.15
            }
            output(rank)
        "#;
        let parsed = parse_script(script).unwrap();
        parsed.program.validate().unwrap();
        // per iteration: matmul, scale, scale, add = 4 ops
        assert_eq!(parsed.program.ops().len(), 40);
    }

    #[test]
    fn parses_scalar_reductions_and_arithmetic() {
        let script = r#"
            A = load(A, 10, 10, 1.0)
            s = A.sum
            n = A.norm2
            B = A * (s / (n + 1.0))
            C = B - 0.5
            output(C)
        "#;
        let parsed = parse_script(script).unwrap();
        let reduces = parsed
            .program
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Reduce { .. }))
            .count();
        assert_eq!(reduces, 2);
        parsed.program.validate().unwrap();
    }

    #[test]
    fn value_selector_requires_1x1() {
        let script = r#"
            A = load(A, 4, 4, 1.0)
            v = A.value
            output(A)
        "#;
        let err = parse_script(script).unwrap_err();
        assert!(err.message.contains("1x1"), "{err}");
    }

    #[test]
    fn precedence_matches_paper_listings() {
        // H * X / Y must parse as (H * X) / Y.
        let script = r#"
            H = load(H, 4, 4, 1.0)
            X = load(X, 4, 4, 1.0)
            Y = load(Y, 4, 4, 1.0)
            Z = H * X / Y
            output(Z)
        "#;
        let parsed = parse_script(script).unwrap();
        let kinds: Vec<&OpKind> = parsed.program.ops().iter().map(|o| &o.kind).collect();
        assert!(matches!(
            kinds[0],
            OpKind::Binary {
                op: crate::expr::BinOp::CellMul,
                ..
            }
        ));
        assert!(matches!(
            kinds[1],
            OpKind::Binary {
                op: crate::expr::BinOp::CellDiv,
                ..
            }
        ));
    }

    #[test]
    fn loop_variable_is_a_constant_inside_the_body() {
        let script = r#"
            A = load(A, 4, 4, 1.0)
            for (i in 1:3) {
                A = A * (i + 1.0)
            }
            output(A)
        "#;
        let parsed = parse_script(script).unwrap();
        // three scale ops with constants 2, 3, 4
        let consts: Vec<f64> = parsed
            .program
            .ops()
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Unary {
                    op: crate::expr::UnaryOp::Scale(s),
                    ..
                } => Some(s.eval(&|_| 0.0)),
                _ => None,
            })
            .collect();
        assert_eq!(consts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_script("A = load(A, 4, 4, 1.0)\nB = A %*% C\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown variable 'C'"));
    }

    #[test]
    fn shape_errors_surface_as_parse_errors() {
        let err = parse_script("A = load(A, 4, 5, 1.0)\nB = A %*% A\noutput(B)\n").unwrap_err();
        assert!(err.message.contains("shape mismatch"), "{err}");
    }

    #[test]
    fn comments_and_negatives() {
        let script = r#"
            # leading comment
            A = load(A, 3, 3, 1.0)  # trailing comment
            B = -A + 1.5
            C = B * -2.0
            output(C)
        "#;
        parse_script(script).unwrap().program.validate().unwrap();
    }

    #[test]
    fn matmul_of_scalar_is_rejected() {
        let err = parse_script("A = load(A, 3, 3, 1.0)\nB = A %*% 2.0\noutput(B)\n").unwrap_err();
        assert!(err.message.contains("two matrices"), "{err}");
    }

    #[test]
    fn errors_carry_byte_spans() {
        let src = "A = load(A, 4, 4, 1.0)\nB = A %*% C\n";
        let err = parse_script(src).unwrap_err();
        let span = err.span.expect("unknown-variable errors have spans");
        assert_eq!(&src[span.start..span.end], "C");
        assert_eq!(span.line, 2);
        assert_eq!(span.column(src), 11);
        assert_eq!(span.line_text(src), "B = A %*% C");
    }

    #[test]
    fn op_spans_cover_every_operator() {
        let src =
            "A = load(A, 4, 4, 1.0)\nB = A + A\nfor (i in 0:2) {\n  B = B * A\n}\noutput(B)\n";
        let parsed = parse_script(src).unwrap();
        assert_eq!(parsed.op_spans.len(), parsed.program.ops().len());
        // All three unrolled iterations point at the single source line.
        let body: Vec<&str> = parsed.op_spans[1..]
            .iter()
            .map(|s| s.unwrap().line_text(src).trim())
            .collect();
        assert_eq!(body, vec!["B = B * A"; 3]);
    }

    #[test]
    fn redundant_transpose_is_recorded_even_though_it_cancels() {
        let src = "A = load(A, 4, 4, 1.0)\nB = A.t.t %*% A\noutput(B)\n";
        let parsed = parse_script(src).unwrap();
        assert_eq!(parsed.redundant_transposes.len(), 1);
        let s = parsed.redundant_transposes[0];
        assert_eq!(s.line, 2);
        assert_eq!(&src[s.start..s.end], "t");
        // And it indeed cancelled: the matmul sees A un-transposed.
        assert_eq!(parsed.program.ops().len(), 1);
    }

    #[test]
    fn dead_stores_are_recorded() {
        // First X is clobbered unread; Y dangles unread at EOF.
        let src = "A = load(A, 4, 4, 1.0)\nX = A + A\nX = A * A\nY = A - A\noutput(X)\n";
        let parsed = parse_script(src).unwrap();
        let names: Vec<&str> = parsed.dead_stores.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["X", "Y"]);
        assert_eq!(parsed.dead_stores[0].1.line, 2);
        assert_eq!(parsed.dead_stores[1].1.line, 4);
        // Re-assignment that reads its own previous value is not dead.
        let src2 = "A = load(A, 4, 4, 1.0)\nX = A + A\nX = X * A\noutput(X)\n";
        assert!(parse_script(src2).unwrap().dead_stores.is_empty());
        // Loop variables are not dead stores.
        let src3 = "A = load(A, 4, 4, 1.0)\nfor (i in 0:1) {\n  A = A + A\n}\noutput(A)\n";
        assert!(parse_script(src3).unwrap().dead_stores.is_empty());
    }
}
