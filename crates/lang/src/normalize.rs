//! Canonical (normalized) rendering and fingerprinting of a [`Program`].
//!
//! Two scripts that decompose to the same operator DAG must produce the
//! same fingerprint even when they differ in whitespace, comments, or the
//! names of intermediates and `random` matrices — none of those affect
//! what the planner or engine does. Everything that *is* semantically
//! load-bearing stays in the canonical form:
//!
//! * `load` names (they address session/store entries),
//! * shapes and declared sparsities (they drive the cost model),
//! * the operator sequence with transpose flags and scalar expressions,
//! * phase tags (per-iteration attribution),
//! * outputs, including `store` target names (they mutate the store).
//!
//! The fingerprint is FNV-1a over the canonical text: no external hashing
//! dependency, stable across processes and runs — which is what lets a
//! service build a plan cache keyed by it (`dmac-serve`). It is *not* a
//! cryptographic hash; collisions are theoretically possible and callers
//! that cannot tolerate them should compare canonical forms on hit.

use std::fmt::Write as _;

use crate::expr::OpKind;
use crate::program::{MatrixOrigin, Program};

/// FNV-1a, 64-bit. Shared with `dmac-serve`, which digests golden
/// trace summaries with it for replay-determinism checks.
pub fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Program {
    /// Canonical textual form of the program (see module docs for what is
    /// and is not included). Deterministic for a given program.
    pub fn normalized(&self) -> String {
        let mut s = String::new();
        for d in self.matrices() {
            match d.origin {
                MatrixOrigin::Load => {
                    let _ = writeln!(
                        s,
                        "L{} {} {}x{} s{:.6}",
                        d.id, d.name, d.stats.rows, d.stats.cols, d.stats.sparsity
                    );
                }
                MatrixOrigin::Random => {
                    // Name deliberately omitted: random data depends only
                    // on the matrix id and the session seed.
                    let _ = writeln!(s, "R{} {}x{}", d.id, d.stats.rows, d.stats.cols);
                }
                MatrixOrigin::Op(_) => {} // derivable from the op list
            }
        }
        for op in self.ops() {
            let _ = write!(s, "O{} p{} ", op.index, op.phase);
            match &op.kind {
                OpKind::Binary { op: b, lhs, rhs } => {
                    let _ = write!(
                        s,
                        "bin {} m{}{} m{}{}",
                        b.name(),
                        lhs.id,
                        if lhs.transposed { "t" } else { "" },
                        rhs.id,
                        if rhs.transposed { "t" } else { "" },
                    );
                }
                OpKind::Unary { op: u, input } => {
                    let _ = write!(
                        s,
                        "un {} m{}{} {:?}",
                        u.name(),
                        input.id,
                        if input.transposed { "t" } else { "" },
                        u.scalar(),
                    );
                }
                OpKind::Reduce { op: r, input } => {
                    let _ = write!(
                        s,
                        "red {:?} m{}{}",
                        r,
                        input.id,
                        if input.transposed { "t" } else { "" },
                    );
                }
            }
            match (op.out_matrix, op.out_scalar) {
                (Some(m), _) => {
                    let _ = writeln!(s, " -> m{m}");
                }
                (None, Some(sc)) => {
                    let _ = writeln!(s, " -> s{sc}");
                }
                (None, None) => {
                    let _ = writeln!(s);
                }
            }
        }
        for (r, name) in self.outputs() {
            match name {
                Some(n) => {
                    let _ = writeln!(
                        s,
                        "store m{}{} {}",
                        r.id,
                        if r.transposed { "t" } else { "" },
                        n
                    );
                }
                None => {
                    let _ = writeln!(s, "out m{}{}", r.id, if r.transposed { "t" } else { "" });
                }
            }
        }
        s
    }

    /// 64-bit fingerprint of [`Program::normalized`].
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.normalized())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_script;

    #[test]
    fn whitespace_and_comments_do_not_change_the_fingerprint() {
        let a = parse_script("A = load(A, 8, 8, 1.0)\nB = A %*% A\noutput(B)\n").unwrap();
        let b = parse_script(
            "# a comment\nA = load(A, 8, 8, 1.0)\n\n  B  =  A %*% A   # same\noutput(B)\n",
        )
        .unwrap();
        assert_eq!(a.program.fingerprint(), b.program.fingerprint());
    }

    #[test]
    fn intermediate_variable_names_do_not_matter() {
        let a = parse_script("A = load(A, 8, 8, 1.0)\nX = A + A\nY = X * X\noutput(Y)\n").unwrap();
        let b = parse_script("A = load(A, 8, 8, 1.0)\nP = A + A\nQ = P * P\noutput(Q)\n").unwrap();
        assert_eq!(a.program.fingerprint(), b.program.fingerprint());
    }

    #[test]
    fn random_names_do_not_matter_but_load_names_do() {
        let a = parse_script("W = random(W, 4, 4)\nX = W + W\noutput(X)\n").unwrap();
        let b = parse_script("V = random(V, 4, 4)\nX = V + V\noutput(X)\n").unwrap();
        assert_eq!(a.program.fingerprint(), b.program.fingerprint());

        let c = parse_script("A = load(A, 4, 4, 1.0)\nX = A + A\noutput(X)\n").unwrap();
        let d = parse_script("B = load(B, 4, 4, 1.0)\nX = B + B\noutput(X)\n").unwrap();
        assert_ne!(c.program.fingerprint(), d.program.fingerprint());
    }

    #[test]
    fn shapes_ops_transposes_and_stores_matter() {
        let base = parse_script("A = load(A, 8, 8, 1.0)\nB = A %*% A\noutput(B)\n").unwrap();
        let shape = parse_script("A = load(A, 8, 16, 1.0)\nB = A %*% A.t\noutput(B)\n").unwrap();
        let op = parse_script("A = load(A, 8, 8, 1.0)\nB = A * A\noutput(B)\n").unwrap();
        let tr = parse_script("A = load(A, 8, 8, 1.0)\nB = A %*% A.t\noutput(B)\n").unwrap();
        let st = parse_script("A = load(A, 8, 8, 1.0)\nB = A %*% A\nstore(B)\n").unwrap();
        let fp = base.program.fingerprint();
        assert_ne!(fp, shape.program.fingerprint());
        assert_ne!(fp, op.program.fingerprint());
        assert_ne!(fp, tr.program.fingerprint());
        assert_ne!(fp, st.program.fingerprint());
    }

    #[test]
    fn sparsity_matters() {
        let a = parse_script("A = load(A, 8, 8, 0.1)\nB = A + A\noutput(B)\n").unwrap();
        let b = parse_script("A = load(A, 8, 8, 0.9)\nB = A + A\noutput(B)\n").unwrap();
        assert_ne!(a.program.fingerprint(), b.program.fingerprint());
    }

    #[test]
    fn normalized_is_deterministic() {
        let src = r#"
            V = random(V, 32, 24)
            W = random(W, 32, 4)
            H = random(H, 4, 24)
            for (i in 0:2) {
                H = H * (W.t %*% V) / (W.t %*% W %*% H)
            }
            store(H)
        "#;
        let a = parse_script(src).unwrap().program.normalized();
        let b = parse_script(src).unwrap().program.normalized();
        assert_eq!(a, b);
        assert!(a.contains("p2"), "phase tags present:\n{a}");
    }
}
