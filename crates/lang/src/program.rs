//! [`Program`]: builder and container for a decomposed matrix program.

use crate::error::{LangError, Result};
use crate::expr::{
    BinOp, Expr, MatrixId, MatrixRef, OpKind, Operator, ReduceOp, ScalarExpr, ScalarId, UnaryOp,
};
use crate::infer::{infer_binary, infer_unary, MatrixStats};

/// Where a matrix value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixOrigin {
    /// Loaded from storage (or an already-materialised session matrix).
    Load,
    /// Generated randomly at run time (`RandomMatrix` in the paper's codes).
    Random,
    /// Produced by the operator at this index.
    Op(usize),
}

/// Declaration of one matrix value in a program.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixDecl {
    /// The value's id.
    pub id: MatrixId,
    /// Name: user-given for loads/randoms, synthesised for intermediates.
    pub name: String,
    /// Shape and worst-case sparsity.
    pub stats: MatrixStats,
    /// Provenance.
    pub origin: MatrixOrigin,
}

/// A straight-line matrix program: declarations, an operator sequence in
/// program order, and the set of output values.
#[derive(Debug, Clone, Default)]
pub struct Program {
    matrices: Vec<MatrixDecl>,
    ops: Vec<Operator>,
    scalar_count: u32,
    outputs: Vec<(MatrixRef, Option<String>)>,
    phase: usize,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Declare a matrix loaded from storage / the session environment.
    /// `sparsity` is the pre-computed or user-specified density (§5.1).
    pub fn load(&mut self, name: &str, rows: usize, cols: usize, sparsity: f64) -> Expr {
        self.declare(name.to_string(), rows, cols, sparsity, MatrixOrigin::Load)
    }

    /// Declare a randomly initialised (dense) matrix.
    pub fn random(&mut self, name: &str, rows: usize, cols: usize) -> Expr {
        self.declare(name.to_string(), rows, cols, 1.0, MatrixOrigin::Random)
    }

    fn declare(
        &mut self,
        name: String,
        rows: usize,
        cols: usize,
        sparsity: f64,
        origin: MatrixOrigin,
    ) -> Expr {
        let id = self.matrices.len() as MatrixId;
        self.matrices.push(MatrixDecl {
            id,
            name,
            stats: MatrixStats::new(rows, cols, sparsity),
            origin,
        });
        Expr::new(id)
    }

    /// Transposed view of an expression (no operator is emitted).
    pub fn t(&self, e: Expr) -> Expr {
        e.t()
    }

    /// Set the phase tag (iteration number) attached to operators emitted
    /// from now on. Used for per-iteration reporting of unrolled loops.
    pub fn set_phase(&mut self, phase: usize) {
        self.phase = phase;
    }

    /// Current phase tag.
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// Stats of the value an expression refers to (transpose-aware).
    pub fn stats_of(&self, e: Expr) -> Result<MatrixStats> {
        let decl = self
            .matrices
            .get(e.id as usize)
            .ok_or(LangError::UnknownMatrix(e.id))?;
        Ok(if e.transposed {
            decl.stats.transposed()
        } else {
            decl.stats
        })
    }

    /// Declaration of a matrix id.
    pub fn decl(&self, id: MatrixId) -> Result<&MatrixDecl> {
        self.matrices
            .get(id as usize)
            .ok_or(LangError::UnknownMatrix(id))
    }

    /// All declarations.
    pub fn matrices(&self) -> &[MatrixDecl] {
        &self.matrices
    }

    /// The operator sequence in program order.
    pub fn ops(&self) -> &[Operator] {
        &self.ops
    }

    /// Marked outputs: `(reference, optional store name)`.
    pub fn outputs(&self) -> &[(MatrixRef, Option<String>)] {
        &self.outputs
    }

    fn push_binary(&mut self, op: BinOp, a: Expr, b: Expr) -> Result<Expr> {
        let sa = self.stats_of(a)?;
        let sb = self.stats_of(b)?;
        let out_stats = infer_binary(op, sa, sb)?;
        let index = self.ops.len();
        let out = self.declare(
            format!("_t{index}"),
            out_stats.rows,
            out_stats.cols,
            out_stats.sparsity,
            MatrixOrigin::Op(index),
        );
        self.ops.push(Operator {
            index,
            kind: OpKind::Binary {
                op,
                lhs: a.into(),
                rhs: b.into(),
            },
            out_matrix: Some(out.id),
            out_scalar: None,
            phase: self.phase,
        });
        Ok(out)
    }

    /// `a %*% b`.
    pub fn matmul(&mut self, a: Expr, b: Expr) -> Result<Expr> {
        self.push_binary(BinOp::MatMul, a, b)
    }

    /// `a + b`.
    pub fn add(&mut self, a: Expr, b: Expr) -> Result<Expr> {
        self.push_binary(BinOp::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(&mut self, a: Expr, b: Expr) -> Result<Expr> {
        self.push_binary(BinOp::Sub, a, b)
    }

    /// Cell-wise `a * b`.
    pub fn cell_mul(&mut self, a: Expr, b: Expr) -> Result<Expr> {
        self.push_binary(BinOp::CellMul, a, b)
    }

    /// Cell-wise `a / b`.
    pub fn cell_div(&mut self, a: Expr, b: Expr) -> Result<Expr> {
        self.push_binary(BinOp::CellDiv, a, b)
    }

    fn push_unary(&mut self, op: UnaryOp, a: Expr) -> Result<Expr> {
        for dep in op.scalar().deps() {
            if dep >= self.scalar_count {
                return Err(LangError::UnknownScalar(dep));
            }
        }
        let sa = self.stats_of(a)?;
        let densifies =
            matches!(&op, UnaryOp::AddScalar(s) if !matches!(s, ScalarExpr::Const(0.0)));
        let out_stats = infer_unary(densifies, sa);
        let index = self.ops.len();
        let out = self.declare(
            format!("_t{index}"),
            out_stats.rows,
            out_stats.cols,
            out_stats.sparsity,
            MatrixOrigin::Op(index),
        );
        self.ops.push(Operator {
            index,
            kind: OpKind::Unary {
                op,
                input: a.into(),
            },
            out_matrix: Some(out.id),
            out_scalar: None,
            phase: self.phase,
        });
        Ok(out)
    }

    /// Multiply every cell by a scalar expression.
    pub fn scale(&mut self, a: Expr, s: ScalarExpr) -> Result<Expr> {
        self.push_unary(UnaryOp::Scale(s), a)
    }

    /// Multiply every cell by a constant.
    pub fn scale_const(&mut self, a: Expr, c: f64) -> Result<Expr> {
        self.scale(a, ScalarExpr::Const(c))
    }

    /// Add a scalar expression to every cell.
    pub fn add_scalar(&mut self, a: Expr, s: ScalarExpr) -> Result<Expr> {
        self.push_unary(UnaryOp::AddScalar(s), a)
    }

    fn push_reduce(&mut self, op: ReduceOp, a: Expr) -> Result<ScalarExpr> {
        let stats = self.stats_of(a)?;
        if op == ReduceOp::Value && stats.shape() != (1, 1) {
            return Err(LangError::NotScalarShaped {
                shape: stats.shape(),
            });
        }
        let index = self.ops.len();
        let sid: ScalarId = self.scalar_count;
        self.scalar_count += 1;
        self.ops.push(Operator {
            index,
            kind: OpKind::Reduce {
                op,
                input: a.into(),
            },
            out_matrix: None,
            out_scalar: Some(sid),
            phase: self.phase,
        });
        Ok(ScalarExpr::Ref(sid))
    }

    /// Sum of all cells, as a scalar expression.
    pub fn sum(&mut self, a: Expr) -> Result<ScalarExpr> {
        self.push_reduce(ReduceOp::Sum, a)
    }

    /// Frobenius norm, as a scalar expression.
    pub fn norm2(&mut self, a: Expr) -> Result<ScalarExpr> {
        self.push_reduce(ReduceOp::Norm2, a)
    }

    /// The single cell of a 1×1 matrix, as a scalar expression.
    pub fn value(&mut self, a: Expr) -> Result<ScalarExpr> {
        self.push_reduce(ReduceOp::Value, a)
    }

    /// Mark an expression as a program output.
    pub fn output(&mut self, e: Expr) {
        self.outputs.push((e.into(), None));
    }

    /// Mark an output and ask the session to store it under `name` after
    /// the run (feeds the next program's `load(name, ...)`).
    pub fn store(&mut self, e: Expr, name: &str) {
        self.outputs.push((e.into(), Some(name.to_string())));
    }

    /// Number of scalars produced.
    pub fn scalar_count(&self) -> u32 {
        self.scalar_count
    }

    /// Validate the program: at least one output, all references in range.
    pub fn validate(&self) -> Result<()> {
        if self.outputs.is_empty() {
            return Err(LangError::NoOutputs);
        }
        for (r, _) in &self.outputs {
            self.decl(r.id)?;
        }
        for op in &self.ops {
            for input in op.kind.inputs() {
                self.decl(input.id)?;
            }
        }
        Ok(())
    }

    /// Decomposition-phase ordering (§4.2.3): a topological order of the
    /// operator sequence in which, among simultaneously-ready operators,
    /// multiplications come first ("we put the operators with
    /// multiplication ahead of the other operators because matrices will
    /// probably be broadcasted by multiplication"). With
    /// `multiplication_first == false` the original program order is kept
    /// (the ablation baseline).
    pub fn planner_order(&self, multiplication_first: bool) -> Vec<usize> {
        if !multiplication_first {
            return (0..self.ops.len()).collect();
        }
        let n = self.ops.len();
        // producer maps
        let mut matrix_producer = vec![usize::MAX; self.matrices.len()];
        let mut scalar_producer = vec![usize::MAX; self.scalar_count as usize];
        for (i, op) in self.ops.iter().enumerate() {
            if let Some(m) = op.out_matrix {
                matrix_producer[m as usize] = i;
            }
            if let Some(s) = op.out_scalar {
                scalar_producer[s as usize] = i;
            }
        }
        // in-degrees
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, op) in self.ops.iter().enumerate() {
            for input in op.kind.inputs() {
                let p = matrix_producer[input.id as usize];
                if p != usize::MAX {
                    preds[i].push(p);
                }
            }
            for s in op.kind.scalar_deps() {
                let p = scalar_producer[s as usize];
                if p != usize::MAX {
                    preds[i].push(p);
                }
            }
        }
        let mut indegree = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs[p].push(i);
                indegree[i] += 1;
            }
        }
        // Kahn with (is_not_matmul, index) priority: matmuls first, then
        // program order.
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<(bool, usize)>> =
            std::collections::BinaryHeap::new();
        for (i, &d) in indegree.iter().enumerate() {
            if d == 0 {
                ready.push(std::cmp::Reverse((!self.ops[i].kind.is_matmul(), i)));
            }
        }
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse((_, i))) = ready.pop() {
            order.push(i);
            for &s in &succs[i] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    ready.push(std::cmp::Reverse((!self.ops[s].kind.is_matmul(), s)));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "operator graph must be acyclic");
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the H-update of GNMF (Code 1, line 9):
    /// `H = H * (Wt %*% V) / (Wt %*% W %*% H)`.
    fn gnmf_h_update() -> (Program, Expr) {
        let mut p = Program::new();
        let v = p.load("V", 100, 80, 0.05);
        let w = p.random("W", 100, 10);
        let h = p.random("H", 10, 80);
        let wt_v = p.matmul(w.t(), v).unwrap();
        let wt_w = p.matmul(w.t(), w).unwrap();
        let wt_w_h = p.matmul(wt_w, h).unwrap();
        let num = p.cell_mul(h, wt_v).unwrap();
        let h_new = p.cell_div(num, wt_w_h).unwrap();
        p.store(h_new, "H");
        (p, h_new)
    }

    #[test]
    fn shapes_propagate_through_gnmf_update() {
        let (p, h_new) = gnmf_h_update();
        let stats = p.stats_of(h_new).unwrap();
        assert_eq!(stats.shape(), (10, 80));
        p.validate().unwrap();
        assert_eq!(p.ops().len(), 5);
    }

    #[test]
    fn transposed_stats() {
        let mut p = Program::new();
        let v = p.load("V", 100, 80, 0.05);
        let s = p.stats_of(v.t()).unwrap();
        assert_eq!(s.shape(), (80, 100));
    }

    #[test]
    fn shape_errors_surface() {
        let mut p = Program::new();
        let a = p.load("A", 3, 4, 1.0);
        let b = p.load("B", 3, 4, 1.0);
        assert!(p.matmul(a, b).is_err()); // 3x4 * 3x4
        assert!(p.add(a, b.t()).is_err()); // 3x4 + 4x3
        assert!(p.matmul(a, b.t()).is_ok());
    }

    #[test]
    fn value_requires_1x1() {
        let mut p = Program::new();
        let a = p.load("A", 1, 5, 1.0);
        assert!(p.value(a).is_err());
        let one = p.matmul(a, a.t()).unwrap(); // 1x1
        assert!(p.value(one).is_ok());
    }

    #[test]
    fn validate_requires_output() {
        let mut p = Program::new();
        let a = p.load("A", 2, 2, 1.0);
        let _ = p.scale_const(a, 2.0).unwrap();
        assert_eq!(p.validate(), Err(LangError::NoOutputs));
    }

    #[test]
    fn phases_tag_operators() {
        let mut p = Program::new();
        let a = p.load("A", 2, 2, 1.0);
        p.set_phase(0);
        let b = p.scale_const(a, 2.0).unwrap();
        p.set_phase(1);
        let c = p.scale_const(b, 2.0).unwrap();
        p.output(c);
        assert_eq!(p.ops()[0].phase, 0);
        assert_eq!(p.ops()[1].phase, 1);
    }

    #[test]
    fn planner_order_puts_ready_matmuls_first() {
        let mut p = Program::new();
        let a = p.load("A", 4, 4, 1.0);
        let b = p.load("B", 4, 4, 1.0);
        // op0: add (ready), op1: matmul (ready), op2: consumes both
        let s = p.add(a, b).unwrap();
        let m = p.matmul(a, b).unwrap();
        let f = p.cell_mul(s, m).unwrap();
        p.output(f);
        let order = p.planner_order(true);
        assert_eq!(order, vec![1, 0, 2], "matmul (op1) hoisted first");
        assert_eq!(p.planner_order(false), vec![0, 1, 2]);
    }

    #[test]
    fn planner_order_respects_scalar_dependencies() {
        let mut p = Program::new();
        let a = p.load("A", 4, 4, 1.0);
        let s = p.sum(a).unwrap(); // op0: reduce -> scalar
        let scaled = p.scale(a, s).unwrap(); // op1 depends on op0's scalar
        let m = p.matmul(scaled, a).unwrap(); // op2
        p.output(m);
        let order = p.planner_order(true);
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn stores_remember_names() {
        let (p, _) = gnmf_h_update();
        assert_eq!(p.outputs().len(), 1);
        assert_eq!(p.outputs()[0].1.as_deref(), Some("H"));
    }
}
