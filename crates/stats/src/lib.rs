//! Sparsity statistics for DMac: per-matrix [`SparsityProfile`]s and
//! MatFast-style estimator propagation through a decomposed program.
//!
//! The paper's Table-2 cost model prices every acquisition as dense
//! `N·|A|` bytes, yet real workloads (powerlaw graphs, rating matrices)
//! are overwhelmingly sparse and the block layer already ships CSC-sized
//! payloads on the wire. This crate closes the gap on the *planning*
//! side: it measures an exact profile per input matrix (total nnz plus
//! per-block-row / per-block-column nnz vectors) and propagates estimated
//! profiles through every DSL operator, so the planner can cost
//! communication in predicted-nnz bytes with the dense formulas falling
//! out as the `density = 1.0` special case.
//!
//! # Estimator semantics (the documented contract)
//!
//! Every rule is an *estimate under stated assumptions*, not a bound,
//! except where noted. The independent verifier in `dmac-analyze`
//! re-derives exactly these formulas through a disjoint code path and
//! asserts byte-exact agreement, so the operation order below is pinned.
//!
//! * **Transpose** — exact: swap shape and swap the row/column vectors.
//! * **Scale, `+ 0.0`** — exact pass-through (scaling by zero is still
//!   estimated at the input's profile, mirroring the worst-case static
//!   estimator). A non-zero `add_scalar` densifies: the result profile
//!   is fully dense.
//! * **Add / Sub** — union upper bound: `nnz ≤ nnz(A) + nnz(B)`,
//!   saturating at `rows·cols`; per-strip vectors use the same rule
//!   capped at the strip capacity. Cancellation can only lower the true
//!   value, so this is a valid bound for the cell-wise sum rules.
//! * **CellMul / CellDiv** — intersection upper bound:
//!   `nnz ≤ min(nnz(A), nnz(B))`, per-strip `min` likewise. (Division
//!   follows the block kernels' `x/0 = 0` convention, so the bound
//!   holds for it too.)
//! * **MatMul** — *expectation*, not a bound (MatFast §estimation, under
//!   the independence assumption): for output strip `(i, j)` of an
//!   `(m×n)·(n×p)` product, take row-strip density `dA = row_nnz_A[i] /
//!   (r_i·n)`, column-strip density `dB = col_nnz_B[j] / (n·c_j)`, the
//!   probability a single `k`-term hits is `d = dA·dB`, and a cell of
//!   the strip is non-zero with probability `1 − (1 − d)^n`. Dense
//!   inputs give `d = 1` and reproduce `m·p` exactly. Because this is
//!   an expectation, observed nnz may exceed it; only the hard cap
//!   `nnz ≤ rows·cols` is guaranteed.
//! * **Sources** — `Load` uses the measured profile when one is
//!   available, else falls back to a uniform spread of the static
//!   estimate `ceil(rows·cols·sparsity)`; `Random` cells are dense by
//!   construction.

use std::collections::HashMap;

use dmac_lang::infer::MatrixStats;
use dmac_lang::{MatrixId, MatrixOrigin, OpKind, Program, ScalarExpr, UnaryOp};
use dmac_matrix::blocking::blocks_along;
use dmac_matrix::BlockedMatrix;

/// Coarse density classification of a (predicted or measured) profile.
///
/// The thresholds are the conventional sparse-kernel crossovers: below
/// 5% CSC-style formats win outright, above 50% dense storage wins, the
/// band between is format-ambiguous ("medium").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DensityClass {
    /// No non-zero cells at all.
    Empty,
    /// Density below 5%.
    Sparse,
    /// Density in `[5%, 50%)`.
    Medium,
    /// Density at or above 50%.
    Dense,
}

impl DensityClass {
    /// Classify `nnz` non-zeros in an `rows × cols` matrix.
    pub fn classify(nnz: u64, rows: usize, cols: usize) -> DensityClass {
        if nnz == 0 {
            return DensityClass::Empty;
        }
        let cells = rows as f64 * cols as f64;
        let d = if cells > 0.0 { nnz as f64 / cells } else { 0.0 };
        if d < 0.05 {
            DensityClass::Sparse
        } else if d < 0.5 {
            DensityClass::Medium
        } else {
            DensityClass::Dense
        }
    }

    /// Stable lower-case label (used in traces, reports, cache keys).
    pub fn as_str(self) -> &'static str {
        match self {
            DensityClass::Empty => "empty",
            DensityClass::Sparse => "sparse",
            DensityClass::Medium => "medium",
            DensityClass::Dense => "dense",
        }
    }
}

/// Sparsity profile of one matrix value: total nnz plus nnz per
/// block-row strip and per block-column strip at blocking `block`.
///
/// The strip vectors are `f64` because propagated profiles are
/// real-valued expectations; measured profiles hold exact integers.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityProfile {
    /// Rows of the matrix this profile describes.
    pub rows: usize,
    /// Columns of the matrix this profile describes.
    pub cols: usize,
    /// Blocking the strip vectors are expressed in.
    pub block: usize,
    /// Total (predicted or measured) non-zero count, capped at
    /// `rows·cols`.
    pub nnz: u64,
    /// Non-zeros per block-row strip; length `blocks_along(rows, block)`.
    pub row_nnz: Vec<f64>,
    /// Non-zeros per block-column strip; length `blocks_along(cols, block)`.
    pub col_nnz: Vec<f64>,
}

/// Length of strip `i` when `len` is cut into strips of `block`.
fn strip_len(len: usize, block: usize, i: usize) -> usize {
    (len - i * block).min(block)
}

impl SparsityProfile {
    /// Profile of a fully dense `rows × cols` matrix.
    pub fn dense(rows: usize, cols: usize, block: usize) -> SparsityProfile {
        let block = block.max(1);
        let row_nnz = (0..blocks_along(rows, block))
            .map(|i| (strip_len(rows, block, i) * cols) as f64)
            .collect();
        let col_nnz = (0..blocks_along(cols, block))
            .map(|j| (rows * strip_len(cols, block, j)) as f64)
            .collect();
        SparsityProfile {
            rows,
            cols,
            block,
            nnz: rows as u64 * cols as u64,
            row_nnz,
            col_nnz,
        }
    }

    /// Profile of an all-zero `rows × cols` matrix.
    pub fn empty(rows: usize, cols: usize, block: usize) -> SparsityProfile {
        let block = block.max(1);
        SparsityProfile {
            rows,
            cols,
            block,
            nnz: 0,
            row_nnz: vec![0.0; blocks_along(rows, block)],
            col_nnz: vec![0.0; blocks_along(cols, block)],
        }
    }

    /// Uniform fallback profile from static [`MatrixStats`]: the total
    /// is the static estimate `ceil(rows·cols·sparsity)` (so for dense
    /// stats it matches [`SparsityProfile::dense`] exactly) spread over
    /// the strips in proportion to their cell counts.
    pub fn from_stats(stats: MatrixStats, block: usize) -> SparsityProfile {
        let block = block.max(1);
        let (rows, cols) = (stats.rows, stats.cols);
        let cells = rows as f64 * cols as f64;
        let total = (cells * stats.sparsity).ceil();
        let nnz = (total as u64).min(rows as u64 * cols as u64);
        let row_nnz = (0..blocks_along(rows, block))
            .map(|i| {
                if rows == 0 {
                    0.0
                } else {
                    total * strip_len(rows, block, i) as f64 / rows as f64
                }
            })
            .collect();
        let col_nnz = (0..blocks_along(cols, block))
            .map(|j| {
                if cols == 0 {
                    0.0
                } else {
                    total * strip_len(cols, block, j) as f64 / cols as f64
                }
            })
            .collect();
        SparsityProfile {
            rows,
            cols,
            block,
            nnz,
            row_nnz,
            col_nnz,
        }
    }

    /// Measure the exact profile of a materialised blocked matrix.
    pub fn measure(m: &BlockedMatrix) -> SparsityProfile {
        let block = m.block_size().max(1);
        let mut p = SparsityProfile::empty(m.rows(), m.cols(), block);
        for (bi, bj, b) in m.iter_blocks() {
            let n = b.nnz() as u64;
            p.nnz += n;
            p.row_nnz[bi] += n as f64;
            p.col_nnz[bj] += n as f64;
        }
        p.nnz = p.nnz.min(m.rows() as u64 * m.cols() as u64);
        p
    }

    /// The profile of the transposed matrix (exact rule).
    pub fn transposed(&self) -> SparsityProfile {
        SparsityProfile {
            rows: self.cols,
            cols: self.rows,
            block: self.block,
            nnz: self.nnz,
            row_nnz: self.col_nnz.clone(),
            col_nnz: self.row_nnz.clone(),
        }
    }

    /// Fraction of non-zero cells in `[0, 1]`.
    pub fn density(&self) -> f64 {
        let cells = self.rows as f64 * self.cols as f64;
        if cells > 0.0 {
            (self.nnz as f64 / cells).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Density class of this profile.
    pub fn class(&self) -> DensityClass {
        DensityClass::classify(self.nnz, self.rows, self.cols)
    }

    /// Predicted payload bytes: 8 bytes per (estimated) non-zero — the
    /// nnz analogue of the static `est_bytes`, and equal to it for
    /// dense profiles.
    pub fn predicted_bytes(&self) -> u64 {
        8 * self.nnz
    }
}

/// Cell-wise sum rule (`Add` / `Sub`): union upper bound, saturating at
/// the matrix (and per-strip) capacity.
pub fn propagate_sum(a: &SparsityProfile, b: &SparsityProfile) -> SparsityProfile {
    debug_assert_eq!((a.rows, a.cols), (b.rows, b.cols));
    let (rows, cols, block) = (a.rows, a.cols, a.block);
    let nnz = a.nnz.saturating_add(b.nnz).min(rows as u64 * cols as u64);
    let row_nnz = (0..a.row_nnz.len())
        .map(|i| {
            let cap = (strip_len(rows, block, i) * cols) as f64;
            (a.row_nnz[i] + b.row_nnz[i]).min(cap)
        })
        .collect();
    let col_nnz = (0..a.col_nnz.len())
        .map(|j| {
            let cap = (rows * strip_len(cols, block, j)) as f64;
            (a.col_nnz[j] + b.col_nnz[j]).min(cap)
        })
        .collect();
    SparsityProfile {
        rows,
        cols,
        block,
        nnz,
        row_nnz,
        col_nnz,
    }
}

/// Cell-wise product rule (`CellMul` / `CellDiv`): intersection upper
/// bound — element-wise `min` of the two profiles.
pub fn propagate_min(a: &SparsityProfile, b: &SparsityProfile) -> SparsityProfile {
    debug_assert_eq!((a.rows, a.cols), (b.rows, b.cols));
    SparsityProfile {
        rows: a.rows,
        cols: a.cols,
        block: a.block,
        nnz: a.nnz.min(b.nnz),
        row_nnz: (0..a.row_nnz.len())
            .map(|i| a.row_nnz[i].min(b.row_nnz[i]))
            .collect(),
        col_nnz: (0..a.col_nnz.len())
            .map(|j| a.col_nnz[j].min(b.col_nnz[j]))
            .collect(),
    }
}

/// Matrix-multiplication rule (MatFast-style expectation under the
/// independence assumption). See the crate docs for the formula; the
/// f64 operation order here is pinned — the verifier re-derives it
/// byte-exactly.
pub fn propagate_matmul(a: &SparsityProfile, b: &SparsityProfile) -> SparsityProfile {
    debug_assert_eq!(a.cols, b.rows);
    let (m, n, p) = (a.rows, a.cols, b.cols);
    let block = a.block;
    let mut row_nnz = vec![0.0; blocks_along(m, block)];
    let mut col_nnz = vec![0.0; blocks_along(p, block)];
    let mut total = 0.0f64;
    for (i, acc_i) in row_nnz.iter_mut().enumerate() {
        let r_i = strip_len(m, block, i);
        let d_a = if r_i * n > 0 {
            a.row_nnz[i] / (r_i * n) as f64
        } else {
            0.0
        };
        for (j, acc_j) in col_nnz.iter_mut().enumerate() {
            let c_j = strip_len(p, block, j);
            let d_b = if n * c_j > 0 {
                b.col_nnz[j] / (n * c_j) as f64
            } else {
                0.0
            };
            let d = (d_a * d_b).clamp(0.0, 1.0);
            let p_ij = 1.0 - (1.0 - d).powi(n as i32);
            let e_ij = (r_i * c_j) as f64 * p_ij;
            *acc_i += e_ij;
            *acc_j += e_ij;
            total += e_ij;
        }
    }
    let nnz = (total.ceil() as u64).min(m as u64 * p as u64);
    SparsityProfile {
        rows: m,
        cols: p,
        block,
        nnz,
        row_nnz,
        col_nnz,
    }
}

/// Whether a unary operator densifies its output (a non-zero
/// `add_scalar`); mirrors the static estimator's condition exactly.
pub fn unary_densifies(op: &UnaryOp) -> bool {
    matches!(op, UnaryOp::AddScalar(s) if !matches!(s, ScalarExpr::Const(v) if *v == 0.0))
}

/// Propagate profiles through a whole program: one profile per declared
/// matrix, indexed by [`MatrixId`].
///
/// `sources` supplies measured profiles for `Load` inputs (missing
/// entries fall back to the uniform static estimate); `Random` inputs
/// are dense by construction; operator outputs follow the estimator
/// rules above. `block` is the blocking every profile is expressed in —
/// measured source profiles at a different blocking are re-spread
/// uniformly so strip vectors always line up.
pub fn propagate(
    program: &Program,
    sources: &HashMap<MatrixId, SparsityProfile>,
    block: usize,
) -> Vec<SparsityProfile> {
    let block = block.max(1);
    let mut profiles: Vec<SparsityProfile> = Vec::with_capacity(program.matrices().len());
    for decl in program.matrices() {
        let profile = match decl.origin {
            MatrixOrigin::Load => match sources.get(&decl.id) {
                Some(p) if p.block == block && (p.rows, p.cols) == decl.stats.shape() => p.clone(),
                Some(p) => {
                    // Rescale a measured total onto this blocking.
                    let stats = MatrixStats::new(decl.stats.rows, decl.stats.cols, p.density());
                    SparsityProfile::from_stats(stats, block)
                }
                None => SparsityProfile::from_stats(decl.stats, block),
            },
            MatrixOrigin::Random => SparsityProfile::dense(decl.stats.rows, decl.stats.cols, block),
            MatrixOrigin::Op(i) => {
                let op = &program.ops()[i];
                let input = |r: &dmac_lang::MatrixRef| -> SparsityProfile {
                    let p = &profiles[r.id as usize];
                    if r.transposed {
                        p.transposed()
                    } else {
                        p.clone()
                    }
                };
                match &op.kind {
                    OpKind::Binary { op, lhs, rhs } => {
                        let (a, b) = (input(lhs), input(rhs));
                        match op {
                            dmac_lang::BinOp::MatMul => propagate_matmul(&a, &b),
                            dmac_lang::BinOp::Add | dmac_lang::BinOp::Sub => propagate_sum(&a, &b),
                            dmac_lang::BinOp::CellMul | dmac_lang::BinOp::CellDiv => {
                                propagate_min(&a, &b)
                            }
                        }
                    }
                    OpKind::Unary { op, input: r } => {
                        let a = input(r);
                        if unary_densifies(op) {
                            SparsityProfile::dense(a.rows, a.cols, block)
                        } else {
                            a
                        }
                    }
                    // Reductions produce scalars, never a matrix decl.
                    OpKind::Reduce { .. } => {
                        SparsityProfile::empty(decl.stats.rows, decl.stats.cols, block)
                    }
                }
            }
        };
        debug_assert_eq!(profile.row_nnz.len(), blocks_along(profile.rows, block));
        debug_assert_eq!(profile.col_nnz.len(), blocks_along(profile.cols, block));
        profiles.push(profile);
    }
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_matrix(rows: usize, cols: usize, block: usize, every: usize) -> BlockedMatrix {
        BlockedMatrix::from_fn(rows, cols, block, |i, j| {
            if (i * cols + j) % every == 0 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    #[test]
    fn dense_profile_matches_static_estimate() {
        let p = SparsityProfile::dense(100, 60, 32);
        assert_eq!(p.nnz, 6000);
        assert_eq!(
            p.predicted_bytes(),
            MatrixStats::new(100, 60, 1.0).est_bytes()
        );
        assert_eq!(
            p.row_nnz,
            vec![32.0 * 60.0, 32.0 * 60.0, 32.0 * 60.0, 4.0 * 60.0]
        );
        assert_eq!(p.class(), DensityClass::Dense);
        // from_stats with sparsity 1.0 is the same profile.
        assert_eq!(
            SparsityProfile::from_stats(MatrixStats::new(100, 60, 1.0), 32),
            p
        );
    }

    #[test]
    fn measure_counts_exactly() {
        let m = sparse_matrix(40, 40, 16, 7);
        let p = SparsityProfile::measure(&m);
        assert_eq!(p.nnz, m.nnz() as u64);
        assert_eq!(p.row_nnz.iter().sum::<f64>(), p.nnz as f64);
        assert_eq!(p.col_nnz.iter().sum::<f64>(), p.nnz as f64);
        assert_eq!(p.block, 16);
        let zero = BlockedMatrix::zeros(8, 8, 4).unwrap();
        let pz = SparsityProfile::measure(&zero);
        assert_eq!(pz.nnz, 0);
        assert_eq!(pz.class(), DensityClass::Empty);
    }

    #[test]
    fn transpose_swaps_strips() {
        let m = sparse_matrix(24, 8, 8, 3);
        let p = SparsityProfile::measure(&m);
        let t = p.transposed();
        assert_eq!((t.rows, t.cols), (8, 24));
        assert_eq!(t.row_nnz, p.col_nnz);
        assert_eq!(t.col_nnz, p.row_nnz);
        assert_eq!(t.nnz, p.nnz);
        // Exact against a real transpose.
        assert_eq!(SparsityProfile::measure(&m.transpose()), t);
    }

    #[test]
    fn sum_and_min_rules_bound_reality() {
        let a = sparse_matrix(32, 32, 16, 3);
        let b = sparse_matrix(32, 32, 16, 5);
        let (pa, pb) = (SparsityProfile::measure(&a), SparsityProfile::measure(&b));
        let sum = propagate_sum(&pa, &pb);
        let min = propagate_min(&pa, &pb);
        assert!(a.add(&b).unwrap().nnz() as u64 <= sum.nnz);
        assert!(a.cell_mul(&b).unwrap().nnz() as u64 <= min.nnz);
        assert_eq!(min.nnz, pa.nnz.min(pb.nnz));
        // Dense + dense saturates at capacity.
        let d = SparsityProfile::dense(32, 32, 16);
        assert_eq!(propagate_sum(&d, &d), d);
    }

    #[test]
    fn matmul_rule_is_exact_for_dense_and_zero() {
        let a = SparsityProfile::dense(48, 20, 16);
        let b = SparsityProfile::dense(20, 36, 16);
        let c = propagate_matmul(&a, &b);
        assert_eq!(c.nnz, 48 * 36);
        assert_eq!(c, SparsityProfile::dense(48, 36, 16));
        let z = SparsityProfile::empty(48, 20, 16);
        assert_eq!(propagate_matmul(&z, &b).nnz, 0);
    }

    #[test]
    fn matmul_expectation_is_reasonable_for_sparse() {
        // 1% dense square inputs: expected output density
        // 1 - (1 - 1e-4)^128 ≈ 1.27% — far below dense.
        let s = SparsityProfile::from_stats(MatrixStats::new(128, 128, 0.01), 32);
        let c = propagate_matmul(&s, &s);
        assert!(c.nnz > 0);
        assert!(c.nnz < 128 * 128 / 10, "c.nnz = {}", c.nnz);
    }

    #[test]
    fn unary_densify_condition_mirrors_static_estimator() {
        assert!(!unary_densifies(&UnaryOp::Scale(ScalarExpr::c(0.0))));
        assert!(!unary_densifies(&UnaryOp::AddScalar(ScalarExpr::c(0.0))));
        assert!(unary_densifies(&UnaryOp::AddScalar(ScalarExpr::c(2.0))));
    }

    #[test]
    fn propagate_walks_a_whole_program() {
        let mut prog = Program::new();
        let l = prog.load("L", 64, 64, 0.02);
        let r = prog.random("r", 1, 64);
        let x = prog.matmul(r, l).unwrap();
        let y = prog.scale_const(x, 0.85).unwrap();
        let z = prog.add(y, prog.t(prog.t(y))).unwrap();
        prog.output(z);

        // Measured source profile for L.
        let lm = sparse_matrix(64, 64, 16, 50);
        let mut sources = HashMap::new();
        sources.insert(l.id, SparsityProfile::measure(&lm));
        let profiles = propagate(&prog, &sources, 16);
        assert_eq!(profiles.len(), prog.matrices().len());
        assert_eq!(profiles[l.id as usize].nnz, lm.nnz() as u64);
        assert_eq!(profiles[r.id as usize].nnz, 64);
        // Scale passes through.
        assert_eq!(profiles[y.id as usize], profiles[x.id as usize]);
        // Everything respects the hard cap.
        for (p, d) in profiles.iter().zip(prog.matrices()) {
            assert!(p.nnz <= d.stats.rows as u64 * d.stats.cols as u64);
            assert_eq!(p.row_nnz.len(), blocks_along(p.rows, 16));
        }
        assert_eq!(
            profiles[z.id as usize].nnz,
            propagate_sum(&profiles[y.id as usize], &profiles[y.id as usize],).nnz
        );
    }

    #[test]
    fn uniform_fallback_spreads_proportionally() {
        let p = SparsityProfile::from_stats(MatrixStats::new(100, 10, 0.1), 40);
        assert_eq!(p.nnz, 100);
        // Strips of 40/40/20 rows get 40/40/20 of the mass.
        assert_eq!(p.row_nnz, vec![40.0, 40.0, 20.0]);
    }

    #[test]
    fn measure_ignores_blocking_of_values() {
        // Same logical matrix, two blockings: same totals.
        let m1 = sparse_matrix(30, 30, 8, 4);
        let m2 = sparse_matrix(30, 30, 30, 4);
        assert_eq!(
            SparsityProfile::measure(&m1).nnz,
            SparsityProfile::measure(&m2).nnz
        );
    }
}
