//! Plan-level liveness analysis: last-use [`PlanStep::Free`] splicing and
//! the step-indexed [`MemoryCertificate`] (resident-byte upper bounds).
//!
//! The paper's premise is that dependency structure is known statically;
//! this module exploits it for *memory* the way the planner exploits it
//! for communication. A backward walk over the finished plan finds each
//! intermediate's last reader, splices an explicit `free` step right after
//! it, and then prices the live set after every step with a storage-aware
//! bound:
//!
//! * **Dense-class** nodes (matmul outputs, `+ scalar` results, anything
//!   with a dense operand) cost exactly `8·rows·cols` — the dense cap.
//! * **Sparse-class** nodes (loads declared sparse and cell-wise chains
//!   over them) cost `min(16·nnẑ, 12·cells) + colptr` where `nnẑ` is the
//!   propagated [`SparsityProfile`] count (used only under
//!   `density_adaptive`) and `colptr` is the CSC column-pointer overhead
//!   of the session's blocking. The `16·nnẑ` arm covers blocks the
//!   densify threshold promotes (a promoted block has density > ½, so its
//!   `8·cells_b` dense payload is under `16·nnz_b`); the `12·cells` arm
//!   caps fully-populated CSC storage.
//!
//! Both arms are sound upper bounds on
//! [`DistMatrix::logical_bytes`](dmac_cluster::DistMatrix::logical_bytes)
//! for the class's storage, so the certificate dominates the engine's
//! observed per-step residency (invariant V21). The analyzer re-derives
//! everything here through a disjoint implementation
//! (`dmac_analyze::liveness`) and enforces V18–V21 on every plan.

use dmac_lang::{BinOp, MatrixOrigin, OpKind, Program, UnaryOp};
use dmac_matrix::blocking::blocks_along;
use dmac_stats::SparsityProfile;

use crate::plan::{MemoryCertificate, NodeId, Plan, PlanStep};

/// Predicted storage class of a plan node: which byte formula bounds its
/// materialised size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageClass {
    /// Bounded by the dense cap `8·rows·cols`.
    Dense,
    /// May materialise CSC-sparse; bounded by the sparse formula.
    Sparse,
}

/// Forward dataflow pass assigning a [`StorageClass`] to every plan node.
///
/// Sources: a `load` declared with sparsity < 1 is Sparse, everything
/// else (dense loads, `random`) is Dense. The extended operators
/// (partition/broadcast/transpose/extract/reference) preserve their
/// input's class. Cell-wise `+`/`-`/`*` stay Sparse only when *every*
/// operand is Sparse (the kernels produce dense tiles as soon as one
/// input is dense); `/`, `+ scalar`, matmul, and fused chains always
/// produce Dense-class outputs. `scale` preserves its input's class.
pub fn storage_classes(program: &Program, plan: &Plan) -> Vec<StorageClass> {
    let mut class = vec![StorageClass::Dense; plan.nodes.len()];
    for &(node, mid) in &plan.sources {
        let sparse = program
            .decl(mid)
            .map(|d| matches!(d.origin, MatrixOrigin::Load) && d.stats.sparsity < 1.0)
            .unwrap_or(false);
        class[node] = if sparse {
            StorageClass::Sparse
        } else {
            StorageClass::Dense
        };
    }
    for step in &plan.steps {
        let Some(out) = step.out_node() else { continue };
        class[out] = match step {
            PlanStep::Partition { src, .. }
            | PlanStep::Broadcast { src, .. }
            | PlanStep::Transpose { src, .. }
            | PlanStep::Extract { src, .. }
            | PlanStep::Reference { src, .. } => class[*src],
            PlanStep::Compute { op, inputs, .. } => match &program.ops()[*op].kind {
                OpKind::Binary { op: b, .. } => match b {
                    BinOp::Add | BinOp::Sub | BinOp::CellMul => {
                        if inputs.iter().all(|&n| class[n] == StorageClass::Sparse) {
                            StorageClass::Sparse
                        } else {
                            StorageClass::Dense
                        }
                    }
                    BinOp::CellDiv | BinOp::MatMul => StorageClass::Dense,
                },
                OpKind::Unary { op: u, .. } => match u {
                    UnaryOp::Scale(_) => class[inputs[0]],
                    UnaryOp::AddScalar(_) => StorageClass::Dense,
                },
                OpKind::Reduce { .. } => StorageClass::Dense,
            },
            // The fused interpreter materialises dense result tiles.
            PlanStep::FusedCellWise { .. } => StorageClass::Dense,
            PlanStep::Free { .. } => unreachable!("free defines no node"),
        };
    }
    class
}

/// Upper bound on the materialised bytes of one plan node.
///
/// `block` is the session's square block size (the planner's
/// `fusion_block`); the CSC column-pointer overhead depends on it.
pub fn node_price(
    program: &Program,
    plan: &Plan,
    profiles: &[SparsityProfile],
    classes: &[StorageClass],
    density_adaptive: bool,
    block: usize,
    node: NodeId,
) -> u64 {
    let n = &plan.nodes[node];
    let Ok(decl) = program.decl(n.matrix) else {
        return 0;
    };
    // The node physically holds the transpose when flagged, which flips
    // the geometry the CSC overhead depends on (payload is invariant).
    let (r, c) = if n.transposed {
        (decl.stats.cols, decl.stats.rows)
    } else {
        (decl.stats.rows, decl.stats.cols)
    };
    let cells = r as u64 * c as u64;
    match classes[node] {
        StorageClass::Dense => 8 * cells,
        StorageClass::Sparse => {
            let block = block.max(1);
            let br = blocks_along(r, block) as u64;
            let bc = blocks_along(c, block) as u64;
            // One `u32` column pointer per (block-row, column) pair plus
            // one sentinel per block: 4·(br·c + br·bc).
            let overhead = 4 * (br * c as u64 + br * bc);
            let payload = if density_adaptive {
                let nnz = profiles
                    .get(n.matrix as usize)
                    .map(|p| p.nnz)
                    .unwrap_or(cells);
                (16 * nnz).min(12 * cells)
            } else {
                12 * cells
            };
            payload + overhead
        }
    }
}

/// Nodes the engine must retain to the end of the run, mirroring the
/// executor's keep-set exactly: program outputs, plus — for every bound
/// (`load`-origin) source — the first untransposed Row/Column
/// materialisation of that matrix, which the session caches as the
/// input's improved placement.
pub fn keep_set(program: &Program, plan: &Plan) -> Vec<bool> {
    let mut keep = vec![false; plan.nodes.len()];
    for (node, _, _) in &plan.outputs {
        keep[*node] = true;
    }
    for &(_, mid) in &plan.sources {
        let bound = program
            .decl(mid)
            .map(|d| matches!(d.origin, MatrixOrigin::Load))
            .unwrap_or(false);
        if bound {
            for (n, node) in plan.nodes.iter().enumerate() {
                if node.matrix == mid && !node.transposed && node.scheme.is_rc() {
                    keep[n] = true;
                    break;
                }
            }
        }
    }
    keep
}

/// Splice explicit [`PlanStep::Free`] steps into `plan` at each
/// non-kept node's last use (or straight after its producer if it is
/// never read). Unused *sources* are left resident — there is no step to
/// anchor their release to, and the engine seeds them before step 0.
///
/// `plan.predicted` stays aligned (frees never communicate, so their
/// prediction is 0); `predicted_nnz` must be (re-)stamped afterwards.
pub fn splice_frees(program: &Program, plan: &mut Plan) {
    let keep = keep_set(program, plan);
    let mut last_use = vec![usize::MAX; plan.nodes.len()];
    let mut producer = vec![usize::MAX; plan.nodes.len()];
    for (i, step) in plan.steps.iter().enumerate() {
        for n in step.in_nodes() {
            last_use[n] = i;
        }
        if let Some(out) = step.out_node() {
            producer[out] = i;
        }
    }
    let defined: Vec<bool> = {
        let mut d = vec![false; plan.nodes.len()];
        for &(node, _) in &plan.sources {
            d[node] = true;
        }
        for (n, &p) in producer.iter().enumerate() {
            if p != usize::MAX {
                d[n] = true;
            }
        }
        d
    };

    // Frees anchored after a step index, in ascending node order for
    // determinism.
    let mut frees_after: Vec<Vec<NodeId>> = vec![Vec::new(); plan.steps.len()];
    for n in 0..plan.nodes.len() {
        if keep[n] || !defined[n] {
            continue;
        }
        let anchor = if last_use[n] != usize::MAX {
            last_use[n]
        } else if producer[n] != usize::MAX {
            producer[n]
        } else {
            continue; // unused source: stays resident
        };
        frees_after[anchor].push(n);
    }

    let old_steps = std::mem::take(&mut plan.steps);
    let old_predicted = std::mem::take(&mut plan.predicted);
    for (i, step) in old_steps.into_iter().enumerate() {
        let phase = step.phase();
        plan.steps.push(step);
        plan.predicted
            .push(old_predicted.get(i).copied().unwrap_or(0));
        for &node in &frees_after[i] {
            plan.steps.push(PlanStep::Free { node, phase });
            plan.predicted.push(0);
        }
    }
}

/// Price the live set after every step of `plan`, producing its
/// [`MemoryCertificate`]. A node is live from its defining step (sources
/// from step 0) until its `free` step, inclusive of neither; within-step
/// transients (CPMM partials) are not counted, matching the engine's
/// post-step metering point.
pub fn certificate(
    program: &Program,
    plan: &Plan,
    profiles: &[SparsityProfile],
    density_adaptive: bool,
    block: usize,
) -> MemoryCertificate {
    let classes = storage_classes(program, plan);
    let price = |n: NodeId| {
        node_price(
            program,
            plan,
            profiles,
            &classes,
            density_adaptive,
            block,
            n,
        )
    };
    let mut live = vec![false; plan.nodes.len()];
    let mut resident: u64 = 0;
    for &(node, _) in &plan.sources {
        if !live[node] {
            live[node] = true;
            resident += price(node);
        }
    }
    let mut per_step = Vec::with_capacity(plan.steps.len());
    for step in &plan.steps {
        match step {
            PlanStep::Free { node, .. } => {
                if live[*node] {
                    live[*node] = false;
                    resident -= price(*node);
                }
            }
            _ => {
                if let Some(out) = step.out_node() {
                    if !live[out] {
                        live[out] = true;
                        resident += price(out);
                    }
                }
            }
        }
        per_step.push(resident);
    }
    MemoryCertificate::from_per_step(per_step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_program, PlannerConfig};
    use dmac_lang::MatrixId;
    use std::collections::HashMap;

    fn gnmf_h() -> Program {
        let mut p = Program::new();
        let v = p.load("V", 1000, 800, 0.01);
        let w = p.random("W", 1000, 20);
        let h = p.random("H", 20, 800);
        let wt_v = p.matmul(w.t(), v).unwrap();
        let wt_w = p.matmul(w.t(), w).unwrap();
        let wt_w_h = p.matmul(wt_w, h).unwrap();
        let num = p.cell_mul(h, wt_v).unwrap();
        let h_new = p.cell_div(num, wt_w_h).unwrap();
        p.store(h_new, "H");
        p
    }

    #[test]
    fn frees_are_spliced_and_certificate_attached() {
        let p = gnmf_h();
        let planned = plan_program(&p, &PlannerConfig::default(), 4, &HashMap::new()).unwrap();
        let frees = planned
            .plan
            .steps
            .iter()
            .filter(|s| matches!(s, PlanStep::Free { .. }))
            .count();
        assert!(frees > 0, "{}", planned.plan.explain(&p));
        assert_eq!(planned.certificate.per_step.len(), planned.plan.steps.len());
        assert_eq!(
            planned.certificate.peak,
            planned.certificate.per_step.iter().copied().max().unwrap()
        );
        assert_eq!(
            planned.certificate.per_step[planned.certificate.argmax],
            planned.certificate.peak
        );
    }

    #[test]
    fn no_step_reads_a_freed_node() {
        let p = gnmf_h();
        let planned = plan_program(&p, &PlannerConfig::default(), 4, &HashMap::new()).unwrap();
        let mut freed = vec![false; planned.plan.nodes.len()];
        for step in &planned.plan.steps {
            match step {
                PlanStep::Free { node, .. } => {
                    assert!(!freed[*node], "double free of {node}");
                    freed[*node] = true;
                }
                _ => {
                    for n in step.in_nodes() {
                        assert!(!freed[n], "step reads freed node {n}");
                    }
                }
            }
        }
    }

    #[test]
    fn kept_nodes_are_never_freed() {
        let p = gnmf_h();
        let planned = plan_program(&p, &PlannerConfig::default(), 4, &HashMap::new()).unwrap();
        let keep = keep_set(&p, &planned.plan);
        for step in &planned.plan.steps {
            if let PlanStep::Free { node, .. } = step {
                assert!(!keep[*node]);
            }
        }
        // The output node itself is kept.
        for (n, _, _) in &planned.plan.outputs {
            assert!(keep[*n]);
        }
    }

    #[test]
    fn disabling_splice_retains_everything() {
        let p = gnmf_h();
        let cfg = PlannerConfig {
            splice_frees: false,
            ..PlannerConfig::default()
        };
        let planned = plan_program(&p, &cfg, 4, &HashMap::new()).unwrap();
        assert!(!planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::Free { .. })));
        // Without frees the certificate is monotone non-decreasing.
        let c = &planned.certificate.per_step;
        assert!(c.windows(2).all(|w| w[0] <= w[1]), "{c:?}");
        assert_eq!(planned.certificate.peak, *c.last().unwrap());
    }

    #[test]
    fn early_frees_lower_the_certified_peak() {
        let p = gnmf_h();
        let on = plan_program(&p, &PlannerConfig::default(), 4, &HashMap::new()).unwrap();
        let off = plan_program(
            &p,
            &PlannerConfig {
                splice_frees: false,
                ..PlannerConfig::default()
            },
            4,
            &HashMap::new(),
        )
        .unwrap();
        assert!(
            on.certificate.peak < off.certificate.peak,
            "on={} off={}",
            on.certificate.peak,
            off.certificate.peak
        );
    }

    #[test]
    fn sparse_class_flows_through_cellwise_chains() {
        let mut p = Program::new();
        let a = p.load("A", 400, 400, 0.05);
        let b = p.load("B", 400, 400, 0.05);
        let s = p.add(a, b).unwrap();
        let t = p.cell_mul(s, a).unwrap();
        let d = p.load("D", 400, 400, 1.0);
        let u = p.add(t, d).unwrap();
        p.output(u);
        let cfg = PlannerConfig {
            fuse_cellwise: false,
            ..PlannerConfig::default()
        };
        let planned = plan_program(&p, &cfg, 4, &HashMap::new()).unwrap();
        let classes = storage_classes(&p, &planned.plan);
        let class_of = |mid: MatrixId| {
            planned
                .plan
                .nodes
                .iter()
                .zip(&classes)
                .find(|(n, _)| n.matrix == mid)
                .map(|(_, c)| *c)
                .unwrap()
        };
        assert_eq!(class_of(s.id), StorageClass::Sparse);
        assert_eq!(class_of(t.id), StorageClass::Sparse);
        assert_eq!(class_of(d.id), StorageClass::Dense);
        assert_eq!(class_of(u.id), StorageClass::Dense);
    }
}
