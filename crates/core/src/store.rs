//! [`SharedStore`]: the named-matrix store extracted from [`crate::session::Session`].
//!
//! The original `Session` kept its environment as a private
//! `HashMap<String, DistMatrix>`: single-owner, unbounded, and with no way
//! to share matrices between sessions. The service layer (`dmac-serve`)
//! needs the opposite — many concurrent sessions reading and writing the
//! same named matrices — so the environment is now a first-class store:
//!
//! * **named, immutable entries** — a stored [`DistMatrix`] is never
//!   mutated in place; `insert` over an existing name *replaces* the entry
//!   and eagerly releases the old one (the blocks are `Arc`-shared, so the
//!   tiles are freed the moment the last reader drops them — this fixes
//!   the unbounded-growth leak of repeated `store`s over one name);
//! * **pin counts** — an entry pinned by an in-flight program cannot be
//!   evicted; pins are counted so overlapping readers compose;
//! * **bytes-based LRU eviction** — an optional capacity bounds the bytes
//!   of *unpinned* entries; eviction order is strictly deterministic
//!   (least-recently-used first, name as tie-break) so a serialized replay
//!   of a request log reproduces the same store states;
//! * **write-intent claims** — a program that will `store` a name claims
//!   it at admission; a second in-flight program claiming the same name is
//!   a *conflict* (its effect would depend on scheduling order, which
//!   would break replay determinism).
//!
//! All operations go through a `Mutex`; the store is cheap to clone
//! (`Arc`) and is shared between a service's sessions.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dmac_cluster::DistMatrix;

use crate::error::{CoreError, Result};

/// One stored matrix plus its bookkeeping.
#[derive(Debug)]
struct Entry {
    matrix: DistMatrix,
    bytes: u64,
    /// Number of in-flight pins; only 0-pin entries are evictable.
    pins: u32,
    /// Logical timestamp of the last touch (monotonic counter, not wall
    /// time — wall time would make eviction order nondeterministic).
    last_used: u64,
}

/// Counters describing a store's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently resident (logical bytes of one copy per entry).
    pub bytes: u64,
    /// Configured capacity (`None` = unbounded).
    pub capacity: Option<u64>,
    /// Total inserts (including replacements).
    pub inserts: u64,
    /// Inserts that replaced an existing entry (the old entry was eagerly
    /// released).
    pub replaced: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries explicitly removed (`drop`).
    pub dropped: u64,
    /// Write-intent conflicts rejected.
    pub conflicts: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<String, Entry>,
    /// In-flight write intents: name → claim token.
    claims: HashMap<String, u64>,
    tick: u64,
    capacity: Option<u64>,
    bytes: u64,
    inserts: u64,
    replaced: u64,
    evictions: u64,
    dropped: u64,
    conflicts: u64,
}

impl Inner {
    fn touch(&mut self, name: &str) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(name) {
            e.last_used = tick;
        }
    }

    /// Evict unpinned LRU entries until within capacity. Returns evicted
    /// names (in eviction order).
    fn enforce_capacity(&mut self) -> Vec<String> {
        let Some(cap) = self.capacity else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        while self.bytes > cap {
            // Deterministic victim: smallest (last_used, name) among
            // unpinned entries.
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.pins == 0)
                .min_by(|(an, ae), (bn, be)| {
                    ae.last_used.cmp(&be.last_used).then_with(|| an.cmp(bn))
                })
                .map(|(n, _)| n.clone());
            let Some(name) = victim else {
                break; // everything pinned: overshoot rather than deadlock
            };
            if let Some(e) = self.entries.remove(&name) {
                self.bytes -= e.bytes;
                self.evictions += 1;
                evicted.push(name);
            }
        }
        evicted
    }
}

/// A shareable, mutex-guarded store of named distributed matrices.
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    inner: Arc<Mutex<Inner>>,
}

impl SharedStore {
    /// An unbounded store (the default for standalone sessions).
    pub fn new() -> SharedStore {
        SharedStore::default()
    }

    /// A store that evicts unpinned LRU entries beyond `capacity_bytes`.
    pub fn with_capacity(capacity_bytes: u64) -> SharedStore {
        let s = SharedStore::default();
        s.inner.lock().unwrap().capacity = Some(capacity_bytes);
        s
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned store mutex means a panic mid-update; propagating the
        // panic is the only sound option for a store meant to be shared.
        self.inner.lock().expect("matrix store poisoned")
    }

    /// Insert (or replace) `name`. The old entry, if any, is released
    /// eagerly; LRU eviction runs afterwards. Returns the names evicted to
    /// make room.
    pub fn insert(&self, name: &str, m: DistMatrix) -> Vec<String> {
        let bytes = m.logical_bytes();
        let mut g = self.lock();
        g.tick += 1;
        let tick = g.tick;
        g.inserts += 1;
        let pins = if let Some(old) = g.entries.remove(name) {
            g.bytes -= old.bytes;
            g.replaced += 1;
            old.pins // replacement inherits the readers' pins
        } else {
            0
        };
        g.bytes += bytes;
        g.entries.insert(
            name.to_string(),
            Entry {
                matrix: m,
                bytes,
                pins,
                last_used: tick,
            },
        );
        g.enforce_capacity()
    }

    /// Fetch a clone of the entry (tiles are `Arc`-shared, so this is
    /// cheap). Bumps the LRU clock.
    pub fn get(&self, name: &str) -> Option<DistMatrix> {
        let mut g = self.lock();
        g.touch(name);
        g.entries.get(name).map(|e| e.matrix.clone())
    }

    /// Is `name` resident?
    pub fn contains(&self, name: &str) -> bool {
        self.lock().entries.contains_key(name)
    }

    /// Partition scheme of a resident entry.
    pub fn scheme_of(&self, name: &str) -> Option<dmac_cluster::PartitionScheme> {
        self.lock().entries.get(name).map(|e| e.matrix.scheme())
    }

    /// Remove an entry, releasing its blocks eagerly. Returns whether it
    /// existed. Pinned entries are removable — pins protect against
    /// *eviction*, not explicit drops by the owner.
    pub fn remove(&self, name: &str) -> bool {
        let mut g = self.lock();
        match g.entries.remove(name) {
            Some(e) => {
                g.bytes -= e.bytes;
                g.dropped += 1;
                true
            }
            None => false,
        }
    }

    /// Pin `names` against eviction (missing names are ignored — a program
    /// may pin loads that only exist once an earlier queued program has
    /// stored them).
    pub fn pin(&self, names: &[String]) {
        let mut g = self.lock();
        for n in names {
            if let Some(e) = g.entries.get_mut(n) {
                e.pins += 1;
            }
        }
    }

    /// Release pins taken by [`SharedStore::pin`].
    pub fn unpin(&self, names: &[String]) {
        let mut g = self.lock();
        for n in names {
            if let Some(e) = g.entries.get_mut(n) {
                e.pins = e.pins.saturating_sub(1);
            }
        }
    }

    /// Claim write intents for an in-flight program. Fails with
    /// [`CoreError::StoreConflict`] (claiming nothing) if any name is
    /// already claimed by a different token.
    pub fn claim_writes(&self, names: &[String], token: u64) -> Result<()> {
        let mut g = self.lock();
        for n in names {
            if let Some(&owner) = g.claims.get(n) {
                if owner != token {
                    g.conflicts += 1;
                    return Err(CoreError::StoreConflict(n.clone()));
                }
            }
        }
        for n in names {
            g.claims.insert(n.clone(), token);
        }
        Ok(())
    }

    /// Release every claim held by `token`.
    pub fn release_writes(&self, token: u64) {
        self.lock().claims.retain(|_, &mut t| t != token);
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let g = self.lock();
        StoreStats {
            entries: g.entries.len(),
            bytes: g.bytes,
            capacity: g.capacity,
            inserts: g.inserts,
            replaced: g.replaced,
            evictions: g.evictions,
            dropped: g.dropped,
            conflicts: g.conflicts,
        }
    }

    /// Resident entry names, sorted (deterministic listings).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.lock().entries.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmac_cluster::PartitionScheme;
    use dmac_matrix::BlockedMatrix;

    fn dist(rows: usize, cols: usize) -> DistMatrix {
        let m = BlockedMatrix::from_fn(rows, cols, 4, |i, j| (i + j) as f64).unwrap();
        DistMatrix::from_blocked(&m, PartitionScheme::Row, 2)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let s = SharedStore::new();
        assert!(s.get("A").is_none());
        s.insert("A", dist(8, 8));
        assert!(s.contains("A"));
        assert_eq!(s.scheme_of("A"), Some(PartitionScheme::Row));
        assert_eq!(s.get("A").unwrap().rows(), 8);
        assert!(s.remove("A"));
        assert!(!s.remove("A"));
        assert_eq!(s.stats().entries, 0);
        assert_eq!(s.stats().bytes, 0);
    }

    #[test]
    fn replacement_releases_old_bytes_eagerly() {
        let s = SharedStore::new();
        s.insert("A", dist(16, 16));
        let big = s.stats().bytes;
        s.insert("A", dist(8, 8));
        let small = s.stats().bytes;
        assert!(small < big, "{small} vs {big}");
        assert_eq!(s.stats().entries, 1);
        assert_eq!(s.stats().replaced, 1);
    }

    #[test]
    fn lru_eviction_is_bytes_bounded_and_deterministic() {
        let one = dist(8, 8).logical_bytes();
        let s = SharedStore::with_capacity(2 * one);
        s.insert("A", dist(8, 8));
        s.insert("B", dist(8, 8));
        // Touch A so B is the LRU victim.
        let _ = s.get("A");
        let evicted = s.insert("C", dist(8, 8));
        assert_eq!(evicted, vec!["B".to_string()]);
        assert!(s.contains("A") && s.contains("C"));
        assert_eq!(s.stats().evictions, 1);
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let one = dist(8, 8).logical_bytes();
        let s = SharedStore::with_capacity(one);
        s.insert("A", dist(8, 8));
        s.pin(&["A".to_string()]);
        let evicted = s.insert("B", dist(8, 8));
        // A is pinned; B itself is the only unpinned candidate.
        assert!(!evicted.contains(&"A".to_string()));
        assert!(s.contains("A"));
        s.unpin(&["A".to_string()]);
        let evicted = s.insert("C", dist(8, 8));
        assert!(evicted.contains(&"A".to_string()), "{evicted:?}");
    }

    #[test]
    fn write_claims_detect_conflicts() {
        let s = SharedStore::new();
        let w = vec!["W".to_string(), "H".to_string()];
        s.claim_writes(&w, 1).unwrap();
        // Same token may re-claim (idempotent for one request).
        s.claim_writes(&w, 1).unwrap();
        let err = s.claim_writes(&["H".to_string()], 2).unwrap_err();
        assert!(matches!(err, CoreError::StoreConflict(n) if n == "H"));
        assert_eq!(s.stats().conflicts, 1);
        s.release_writes(1);
        s.claim_writes(&["H".to_string()], 2).unwrap();
    }

    #[test]
    fn shared_clones_see_the_same_entries() {
        let a = SharedStore::new();
        let b = a.clone();
        a.insert("X", dist(8, 8));
        assert!(b.contains("X"));
        b.remove("X");
        assert!(!a.contains("X"));
    }
}
