//! [`SharedStore`]: the named-matrix store extracted from [`crate::session::Session`].
//!
//! The original `Session` kept its environment as a private
//! `HashMap<String, DistMatrix>`: single-owner, unbounded, and with no way
//! to share matrices between sessions. The service layer (`dmac-serve`)
//! needs the opposite — many concurrent sessions reading and writing the
//! same named matrices — so the environment is now a first-class store:
//!
//! * **named, immutable entries** — a stored [`DistMatrix`] is never
//!   mutated in place; `insert` over an existing name *replaces* the entry
//!   and eagerly releases the old one (the blocks are `Arc`-shared, so the
//!   tiles are freed the moment the last reader drops them — this fixes
//!   the unbounded-growth leak of repeated `store`s over one name);
//! * **pin counts** — an entry pinned by an in-flight program cannot be
//!   evicted; pins are counted so overlapping readers compose;
//! * **bytes-based LRU displacement** — an optional capacity bounds the
//!   *resident* bytes; over budget, the least-recently-used unpinned entry
//!   is **spilled** to the disk tier (when one is attached) or evicted
//!   (when not). Victim order is strictly deterministic
//!   (least-recently-used first, name as tie-break) so a serialized replay
//!   of a request log reproduces the same store states. When pinned
//!   entries alone exceed the budget, the overshoot is a typed
//!   [`CoreError::StoreOverCommit`] error and an `over_commits` counter
//!   tick — never a silent overshoot;
//! * **durable tier** — with a [`DiskTier`] attached, spilled entries
//!   become content-addressed checksummed blobs and reload transparently
//!   on `get`; [`SharedStore::checkpoint`] publishes a snapshot manifest
//!   and [`SharedStore::recover`] re-populates a fresh store from the
//!   latest valid one as cheap spilled stubs. A blob that fails its
//!   checksum on reload is *dropped* (counted in `load_failures`) and
//!   `get` reports the name as absent — callers fall back to lineage
//!   replay, exactly as for a never-stored name;
//! * **write-intent claims** — a program that will `store` a name claims
//!   it at admission; a second in-flight program claiming the same name is
//!   a *conflict* (its effect would depend on scheduling order, which
//!   would break replay determinism).
//!
//! All operations go through a `Mutex`; the store is cheap to clone
//! (`Arc`) and is shared between a service's sessions.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::{Arc, Mutex};

use dmac_cluster::{DistMatrix, FaultPlan, PartitionScheme};

use crate::disk::{self, DiskTier, ManifestEntry};
use crate::error::{CoreError, Result};
use crate::trace::SpillTraffic;

/// Where an entry's tiles currently live.
#[derive(Debug)]
enum Payload {
    /// Tiles are in RAM.
    Resident(DistMatrix),
    /// Tiles live in a verified disk blob; the stub keeps what planning
    /// needs (`scheme_of`) without touching disk.
    Spilled {
        hash: String,
        payload_bytes: u64,
        scheme: PartitionScheme,
    },
}

/// One stored matrix plus its bookkeeping.
#[derive(Debug)]
struct Entry {
    payload: Payload,
    /// Logical RAM bytes of one copy (counts toward the budget only
    /// while resident).
    bytes: u64,
    /// Number of in-flight pins; only 0-pin entries are displaceable.
    pins: u32,
    /// Logical timestamp of the last touch (monotonic counter, not wall
    /// time — wall time would make eviction order nondeterministic).
    last_used: u64,
    /// `(rows, cols, nnz)` captured at insert so density classification
    /// (plan-cache keys, profiled planning) works without touching tiles
    /// or disk. `None` for entries recovered as stubs from a snapshot —
    /// their density is unknown until first reload.
    dims_nnz: Option<(usize, usize, u64)>,
}

impl Entry {
    fn resident_bytes(&self) -> u64 {
        match self.payload {
            Payload::Resident(_) => self.bytes,
            Payload::Spilled { .. } => 0,
        }
    }
}

/// Counters describing a store's lifetime activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries currently present (resident + spilled).
    pub entries: usize,
    /// Bytes currently resident in RAM (logical bytes, one copy each).
    pub bytes: u64,
    /// Configured capacity (`None` = unbounded).
    pub capacity: Option<u64>,
    /// Total inserts (including replacements).
    pub inserts: u64,
    /// Inserts that replaced an existing entry (the old entry was eagerly
    /// released).
    pub replaced: u64,
    /// Entries evicted outright (no disk tier attached).
    pub evictions: u64,
    /// Entries explicitly removed (`drop`).
    pub dropped: u64,
    /// Write-intent conflicts rejected.
    pub conflicts: u64,
    /// Entries currently spilled (stub in RAM, tiles on disk).
    pub spilled: usize,
    /// Logical bytes of currently spilled entries.
    pub spilled_bytes: u64,
    /// Resident→disk displacements (spill events; deduplicated blob
    /// writes still count as a spill, but write no bytes).
    pub spills: u64,
    /// Blob bytes physically written by spills and checkpoints.
    pub spill_bytes: u64,
    /// Disk→resident reloads.
    pub loads: u64,
    /// Blob bytes read back by reloads.
    pub load_bytes: u64,
    /// Spilled entries dropped because their blob failed verification
    /// (callers then fall back to lineage replay).
    pub load_failures: u64,
    /// Times displacement could not reach the budget because every
    /// remaining resident entry was pinned.
    pub over_commits: u64,
    /// Snapshot manifests published by this store.
    pub snapshots: u64,
    /// Bytes of engine-resident intermediates currently charged against
    /// the budget (see [`SharedStore::set_external_pressure`]).
    pub external_pressure: u64,
    /// High-water mark of `bytes + external_pressure` over the store's
    /// lifetime — a driver's observed peak RAM footprint.
    pub peak_footprint: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<String, Entry>,
    /// In-flight write intents: name → claim token.
    claims: HashMap<String, u64>,
    disk: Option<Arc<DiskTier>>,
    /// Latest snapshot `(seq, phase)` published or recovered.
    last_snapshot: Option<(u64, u64)>,
    tick: u64,
    capacity: Option<u64>,
    bytes: u64,
    /// Engine-reported transport-resident bytes, charged against the
    /// budget alongside stored entries (0 outside a run).
    external_pressure: u64,
    /// High-water mark of `bytes + external_pressure` over the store's
    /// lifetime.
    peak_footprint: u64,
    inserts: u64,
    replaced: u64,
    evictions: u64,
    dropped: u64,
    conflicts: u64,
    spills: u64,
    spill_bytes: u64,
    loads: u64,
    load_bytes: u64,
    load_failures: u64,
    over_commits: u64,
    snapshots: u64,
}

impl Inner {
    fn touch(&mut self, name: &str) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(name) {
            e.last_used = tick;
        }
    }

    /// Write `name`'s tiles to the disk tier (content-addressed, so an
    /// already-present blob costs nothing) and swap the entry to a stub.
    fn spill(&mut self, name: &str) -> Result<()> {
        let disk = self.disk.clone().expect("spill requires a disk tier");
        let (payload, scheme, bytes) = {
            let e = self.entries.get(name).expect("spill victim exists");
            let Payload::Resident(m) = &e.payload else {
                return Ok(());
            };
            (disk::encode_dist(m), m.scheme(), e.bytes)
        };
        let hash = format!("{:016x}", disk::fnv1a_bytes(&payload));
        let plen = payload.len() as u64;
        if !disk.verify_blob(&hash, plen) {
            // Crash/IO errors propagate *before* the in-RAM swap: the
            // "process" died, leaving the entry resident and the disk
            // holding whatever the torn write left.
            disk.put_blob(&payload)?;
            self.spill_bytes += plen;
        }
        self.spills += 1;
        self.bytes -= bytes;
        let e = self.entries.get_mut(name).expect("spill victim exists");
        e.payload = Payload::Spilled {
            hash,
            payload_bytes: plen,
            scheme,
        };
        Ok(())
    }

    /// Displace unpinned LRU entries until resident bytes — plus the
    /// engine's reported transport-resident pressure — fit the budget:
    /// spill when a disk tier is attached, evict otherwise. Returns the
    /// displaced names in order.
    ///
    /// When only pinned entries remain, the outcome depends on who is
    /// overshooting: stored bytes alone beyond the budget fail with
    /// [`CoreError::StoreOverCommit`] (and count it); external pressure
    /// alone is not the store's data to shed, so displacement just stops
    /// — the admission-time certificate gate is the layer responsible
    /// for refusing plans whose peak cannot fit.
    fn enforce_capacity(&mut self) -> Result<Vec<String>> {
        // High-water mark of the combined footprint (every mutation that
        // can grow it funnels through here, bounded or not) — what the
        // memory bench reports as a driver's observed peak RAM.
        self.peak_footprint = self.peak_footprint.max(self.bytes + self.external_pressure);
        let Some(cap) = self.capacity else {
            return Ok(Vec::new());
        };
        let mut displaced = Vec::new();
        while self.bytes + self.external_pressure > cap {
            // Deterministic victim: smallest (last_used, name) among
            // unpinned resident entries.
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.pins == 0 && matches!(e.payload, Payload::Resident(_)))
                .min_by(|(an, ae), (bn, be)| {
                    ae.last_used.cmp(&be.last_used).then_with(|| an.cmp(bn))
                })
                .map(|(n, _)| n.clone());
            let Some(name) = victim else {
                if self.bytes <= cap {
                    break;
                }
                self.over_commits += 1;
                return Err(CoreError::StoreOverCommit {
                    resident: self.bytes,
                    capacity: cap,
                });
            };
            if self.disk.is_some() {
                self.spill(&name)?;
            } else if let Some(e) = self.entries.remove(&name) {
                self.bytes -= e.bytes;
                self.evictions += 1;
            }
            displaced.push(name);
        }
        Ok(displaced)
    }
}

/// A shareable, mutex-guarded store of named distributed matrices.
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    inner: Arc<Mutex<Inner>>,
}

impl SharedStore {
    /// An unbounded store (the default for standalone sessions).
    pub fn new() -> SharedStore {
        SharedStore::default()
    }

    /// A store that displaces unpinned LRU entries beyond `capacity_bytes`.
    pub fn with_capacity(capacity_bytes: u64) -> SharedStore {
        let s = SharedStore::default();
        s.inner.lock().unwrap().capacity = Some(capacity_bytes);
        s
    }

    /// An unbounded store backed by a durable data directory.
    pub fn with_disk(dir: impl AsRef<Path>) -> Result<SharedStore> {
        let s = SharedStore::default();
        s.inner.lock().unwrap().disk = Some(Arc::new(DiskTier::open(dir)?));
        Ok(s)
    }

    /// A bounded store whose displaced entries spill to `dir` instead of
    /// being dropped — the working set may exceed `capacity_bytes`.
    pub fn with_capacity_and_disk(
        capacity_bytes: u64,
        dir: impl AsRef<Path>,
    ) -> Result<SharedStore> {
        let s = SharedStore::with_disk(dir)?;
        s.inner.lock().unwrap().capacity = Some(capacity_bytes);
        Ok(s)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned store mutex means a panic mid-update; propagating the
        // panic is the only sound option for a store meant to be shared.
        self.inner.lock().expect("matrix store poisoned")
    }

    /// The attached disk tier, if any (the service layer uses it to
    /// persist plan scripts next to the matrix blobs).
    pub fn disk(&self) -> Option<Arc<DiskTier>> {
        self.lock().disk.clone()
    }

    /// Forward a [`FaultPlan`]'s crash point to the disk tier's
    /// deterministic crash injector. No-op without a disk tier.
    pub fn arm_crashes(&self, plan: &FaultPlan) {
        if let Some(d) = self.lock().disk.clone() {
            d.arm_crashes(plan);
        }
    }

    /// Insert (or replace) `name`. The old entry, if any, is released
    /// eagerly; LRU displacement runs afterwards. Returns the names
    /// spilled or evicted to make room.
    ///
    /// # Errors
    /// [`CoreError::StoreOverCommit`] when pinned entries alone exceed
    /// the byte budget (the new entry *is* kept — the error reports the
    /// overshoot rather than losing data); disk-tier errors when a spill
    /// fails.
    pub fn insert(&self, name: &str, m: DistMatrix) -> Result<Vec<String>> {
        let bytes = m.logical_bytes();
        let dims_nnz = Some((m.rows(), m.cols(), m.nnz() as u64));
        let mut g = self.lock();
        g.tick += 1;
        let tick = g.tick;
        g.inserts += 1;
        let pins = if let Some(old) = g.entries.remove(name) {
            g.bytes -= old.resident_bytes();
            g.replaced += 1;
            old.pins // replacement inherits the readers' pins
        } else {
            0
        };
        g.bytes += bytes;
        g.entries.insert(
            name.to_string(),
            Entry {
                payload: Payload::Resident(m),
                bytes,
                pins,
                last_used: tick,
                dims_nnz,
            },
        );
        g.enforce_capacity()
    }

    /// Fetch a clone of the entry (tiles are `Arc`-shared, so this is
    /// cheap). Bumps the LRU clock. A spilled entry is reloaded from its
    /// blob first; a blob that fails verification drops the entry and
    /// returns `None` (the caller's lineage fallback handles the rest).
    pub fn get(&self, name: &str) -> Option<DistMatrix> {
        let mut g = self.lock();
        g.touch(name);
        let (hash, plen) = match &g.entries.get(name)?.payload {
            Payload::Resident(m) => return Some(m.clone()),
            Payload::Spilled {
                hash,
                payload_bytes,
                ..
            } => (hash.clone(), *payload_bytes),
        };
        let disk = g.disk.clone()?;
        match disk.get_blob(&hash).and_then(|p| disk::decode_dist(&p)) {
            Ok(m) => {
                g.loads += 1;
                g.load_bytes += plen;
                let e = g.entries.get_mut(name).expect("stub present");
                e.payload = Payload::Resident(m.clone());
                e.dims_nnz = Some((m.rows(), m.cols(), m.nnz() as u64));
                let bytes = e.bytes;
                g.bytes += bytes;
                // Reloading may displace colder entries. An over-commit
                // here is counted by enforce_capacity; `get` still hands
                // back the loaded matrix.
                let _ = g.enforce_capacity();
                Some(m)
            }
            Err(_) => {
                g.load_failures += 1;
                g.entries.remove(name);
                None
            }
        }
    }

    /// Is `name` present (resident or spilled)?
    pub fn contains(&self, name: &str) -> bool {
        self.lock().entries.contains_key(name)
    }

    /// Is `name` currently spilled to disk?
    pub fn is_spilled(&self, name: &str) -> bool {
        matches!(
            self.lock().entries.get(name).map(|e| &e.payload),
            Some(Payload::Spilled { .. })
        )
    }

    /// Partition scheme of an entry. Works for spilled entries without
    /// touching disk — plan-cache keys depend on it.
    pub fn scheme_of(&self, name: &str) -> Option<PartitionScheme> {
        self.lock().entries.get(name).map(|e| match &e.payload {
            Payload::Resident(m) => m.scheme(),
            Payload::Spilled { scheme, .. } => *scheme,
        })
    }

    /// Density class of an entry, from the `(rows, cols, nnz)` captured
    /// at insert. `None` when the entry is absent *or* was recovered as
    /// a snapshot stub whose density is not yet known — plan-cache keys
    /// render that as `?`, exactly like an unknown scheme.
    pub fn density_of(&self, name: &str) -> Option<dmac_stats::DensityClass> {
        self.lock()
            .entries
            .get(name)?
            .dims_nnz
            .map(|(r, c, nnz)| dmac_stats::DensityClass::classify(nnz, r, c))
    }

    /// A resident entry's matrix without bumping the LRU clock or
    /// reloading spilled tiles. Used by planning paths (profile
    /// measurement, explain) that must not perturb eviction or spill
    /// counters; `None` for absent *and* spilled entries.
    pub fn peek(&self, name: &str) -> Option<DistMatrix> {
        match &self.lock().entries.get(name)?.payload {
            Payload::Resident(m) => Some(m.clone()),
            Payload::Spilled { .. } => None,
        }
    }

    /// Remove an entry, releasing its blocks eagerly. Returns whether it
    /// existed. Pinned entries are removable — pins protect against
    /// *displacement*, not explicit drops by the owner.
    pub fn remove(&self, name: &str) -> bool {
        let mut g = self.lock();
        match g.entries.remove(name) {
            Some(e) => {
                g.bytes -= e.resident_bytes();
                g.dropped += 1;
                true
            }
            None => false,
        }
    }

    /// Pin `names` against displacement (missing names are ignored — a
    /// program may pin loads that only exist once an earlier queued
    /// program has stored them).
    pub fn pin(&self, names: &[String]) {
        let mut g = self.lock();
        for n in names {
            if let Some(e) = g.entries.get_mut(n) {
                e.pins += 1;
            }
        }
    }

    /// Release pins taken by [`SharedStore::pin`].
    pub fn unpin(&self, names: &[String]) {
        let mut g = self.lock();
        for n in names {
            if let Some(e) = g.entries.get_mut(n) {
                e.pins = e.pins.saturating_sub(1);
            }
        }
    }

    /// Claim write intents for an in-flight program. Fails with
    /// [`CoreError::StoreConflict`] (claiming nothing) if any name is
    /// already claimed by a different token.
    pub fn claim_writes(&self, names: &[String], token: u64) -> Result<()> {
        let mut g = self.lock();
        for n in names {
            if let Some(&owner) = g.claims.get(n) {
                if owner != token {
                    g.conflicts += 1;
                    return Err(CoreError::StoreConflict(n.clone()));
                }
            }
        }
        for n in names {
            g.claims.insert(n.clone(), token);
        }
        Ok(())
    }

    /// Release every claim held by `token`.
    pub fn release_writes(&self, token: u64) {
        self.lock().claims.retain(|_, &mut t| t != token);
    }

    /// Publish a snapshot of `names` at `phase`: every member's tiles
    /// are made durable (content addressing skips unchanged matrices),
    /// a manifest is written and `CURRENT` swapped to it, then garbage
    /// from superseded snapshots is compacted away. Returns the new
    /// snapshot's sequence number.
    ///
    /// # Errors
    /// Requires a disk tier; fails on unknown names and propagates disk
    /// and injected-crash errors (after which on-disk state is whatever
    /// the interrupted boundary left — by construction either the old or
    /// the new snapshot is still fully recoverable).
    pub fn checkpoint(&self, names: &[String], phase: u64) -> Result<u64> {
        let mut g = self.lock();
        let Some(disk) = g.disk.clone() else {
            return Err(CoreError::Disk(
                "checkpoint requires a store with a disk tier".into(),
            ));
        };
        let mut sorted: Vec<&String> = names.iter().collect();
        sorted.sort();
        sorted.dedup();
        // Stage payloads first (immutable pass), then write (counter pass).
        let mut staged: Vec<(String, Option<Vec<u8>>, ManifestEntry)> = Vec::new();
        for name in sorted {
            let e = g
                .entries
                .get(name)
                .ok_or_else(|| CoreError::Unbound(name.clone()))?;
            match &e.payload {
                Payload::Resident(m) => {
                    let payload = disk::encode_dist(m);
                    let entry = ManifestEntry {
                        name: name.clone(),
                        hash: format!("{:016x}", disk::fnv1a_bytes(&payload)),
                        bytes: payload.len() as u64,
                        logical_bytes: e.bytes,
                        scheme: m.scheme(),
                    };
                    staged.push((name.clone(), Some(payload), entry));
                }
                Payload::Spilled {
                    hash,
                    payload_bytes,
                    scheme,
                } => {
                    let entry = ManifestEntry {
                        name: name.clone(),
                        hash: hash.clone(),
                        bytes: *payload_bytes,
                        logical_bytes: e.bytes,
                        scheme: *scheme,
                    };
                    staged.push((name.clone(), None, entry));
                }
            }
        }
        let mut entries = Vec::with_capacity(staged.len());
        for (_, payload, entry) in staged {
            if let Some(payload) = payload {
                if !disk.verify_blob(&entry.hash, entry.bytes) {
                    disk.put_blob(&payload)?;
                    g.spill_bytes += entry.bytes;
                }
            }
            entries.push(entry);
        }
        let seq = disk.publish("checkpoint", phase, entries)?;
        g.snapshots += 1;
        g.last_snapshot = Some((seq, phase));
        // Blobs of live spilled stubs must survive compaction even when
        // they are not part of this snapshot.
        let stubs: HashSet<String> = g
            .entries
            .values()
            .filter_map(|e| match &e.payload {
                Payload::Spilled { hash, .. } => Some(hash.clone()),
                Payload::Resident(_) => None,
            })
            .collect();
        disk.compact(&stubs, seq.saturating_sub(1))?;
        Ok(seq)
    }

    /// Re-populate this store from the latest fully-valid snapshot on
    /// the attached disk tier. Entries come back as cheap spilled stubs
    /// (tiles load on first `get`). Returns the recovered names, sorted;
    /// empty when no usable snapshot exists.
    pub fn recover(&self) -> Result<Vec<String>> {
        let mut g = self.lock();
        let Some(disk) = g.disk.clone() else {
            return Err(CoreError::Disk(
                "recover requires a store with a disk tier".into(),
            ));
        };
        let Some(manifest) = disk.load_latest()? else {
            return Ok(Vec::new());
        };
        let mut names = Vec::new();
        for e in &manifest.entries {
            g.tick += 1;
            let tick = g.tick;
            if let Some(old) = g.entries.remove(&e.name) {
                g.bytes -= old.resident_bytes();
            }
            g.entries.insert(
                e.name.clone(),
                Entry {
                    payload: Payload::Spilled {
                        hash: e.hash.clone(),
                        payload_bytes: e.bytes,
                        scheme: e.scheme,
                    },
                    bytes: e.logical_bytes,
                    pins: 0,
                    last_used: tick,
                    dims_nnz: None,
                },
            );
            names.push(e.name.clone());
        }
        g.last_snapshot = Some((manifest.seq, manifest.phase));
        names.sort();
        Ok(names)
    }

    /// `(seq, phase)` of the latest snapshot published or recovered.
    pub fn latest_snapshot(&self) -> Option<(u64, u64)> {
        self.lock().last_snapshot
    }

    /// Report the engine's current transport-resident bytes so the byte
    /// budget covers the *whole* footprint, not just stored entries.
    /// The engine calls this after every plan step with the residency it
    /// just metered (the same number the memory certificate bounds, so
    /// the certified peak predicts exactly the pressure applied here);
    /// cold unpinned entries are displaced — spilled with a disk tier,
    /// evicted without one — until `stored + pressure` fits. Early
    /// `Free` steps lower the pressure curve, which is what turns the
    /// liveness pass into fewer spills under a tight budget. Returns the
    /// displaced names. Unbounded stores record the pressure but never
    /// displace.
    ///
    /// # Errors
    /// [`CoreError::StoreOverCommit`] only when *stored pinned* bytes
    /// alone exceed the budget; pressure that nothing left unpinned can
    /// offset is tolerated (the admission gate is responsible for
    /// refusing such plans up front). Disk-tier failures propagate.
    pub fn set_external_pressure(&self, bytes: u64) -> Result<Vec<String>> {
        let mut g = self.lock();
        g.external_pressure = bytes;
        g.enforce_capacity()
    }

    /// Cumulative RAM↔disk traffic counters, as the trace's spill
    /// channel type (sessions diff two snapshots to attribute a run's
    /// share — see [`crate::trace::SpillTraffic::since`]).
    pub fn spill_traffic(&self) -> SpillTraffic {
        let g = self.lock();
        SpillTraffic {
            spills: g.spills,
            spill_bytes: g.spill_bytes,
            loads: g.loads,
            load_bytes: g.load_bytes,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let g = self.lock();
        let (spilled, spilled_bytes) = g
            .entries
            .values()
            .filter(|e| matches!(e.payload, Payload::Spilled { .. }))
            .fold((0usize, 0u64), |(n, b), e| (n + 1, b + e.bytes));
        StoreStats {
            entries: g.entries.len(),
            bytes: g.bytes,
            capacity: g.capacity,
            inserts: g.inserts,
            replaced: g.replaced,
            evictions: g.evictions,
            dropped: g.dropped,
            conflicts: g.conflicts,
            spilled,
            spilled_bytes,
            spills: g.spills,
            spill_bytes: g.spill_bytes,
            loads: g.loads,
            load_bytes: g.load_bytes,
            load_failures: g.load_failures,
            over_commits: g.over_commits,
            snapshots: g.snapshots,
            external_pressure: g.external_pressure,
            peak_footprint: g.peak_footprint,
        }
    }

    /// Present entry names (resident and spilled), sorted (deterministic
    /// listings).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.lock().entries.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmac_cluster::{CrashPoint, PartitionScheme};
    use dmac_matrix::BlockedMatrix;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!("dmac-store-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn dist(rows: usize, cols: usize) -> DistMatrix {
        let m = BlockedMatrix::from_fn(rows, cols, 4, |i, j| (i + j) as f64).unwrap();
        DistMatrix::from_blocked(&m, PartitionScheme::Row, 2)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let s = SharedStore::new();
        assert!(s.get("A").is_none());
        s.insert("A", dist(8, 8)).unwrap();
        assert!(s.contains("A"));
        assert_eq!(s.scheme_of("A"), Some(PartitionScheme::Row));
        assert_eq!(s.get("A").unwrap().rows(), 8);
        assert!(s.remove("A"));
        assert!(!s.remove("A"));
        assert_eq!(s.stats().entries, 0);
        assert_eq!(s.stats().bytes, 0);
    }

    #[test]
    fn replacement_releases_old_bytes_eagerly() {
        let s = SharedStore::new();
        s.insert("A", dist(16, 16)).unwrap();
        let big = s.stats().bytes;
        s.insert("A", dist(8, 8)).unwrap();
        let small = s.stats().bytes;
        assert!(small < big, "{small} vs {big}");
        assert_eq!(s.stats().entries, 1);
        assert_eq!(s.stats().replaced, 1);
    }

    #[test]
    fn lru_eviction_is_bytes_bounded_and_deterministic() {
        let one = dist(8, 8).logical_bytes();
        let s = SharedStore::with_capacity(2 * one);
        s.insert("A", dist(8, 8)).unwrap();
        s.insert("B", dist(8, 8)).unwrap();
        // Touch A so B is the LRU victim.
        let _ = s.get("A");
        let evicted = s.insert("C", dist(8, 8)).unwrap();
        assert_eq!(evicted, vec!["B".to_string()]);
        assert!(s.contains("A") && s.contains("C"));
        assert_eq!(s.stats().evictions, 1);
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let one = dist(8, 8).logical_bytes();
        let s = SharedStore::with_capacity(one);
        s.insert("A", dist(8, 8)).unwrap();
        s.pin(&["A".to_string()]);
        let evicted = s.insert("B", dist(8, 8)).unwrap();
        // A is pinned; B itself is the only unpinned candidate.
        assert!(!evicted.contains(&"A".to_string()));
        assert!(s.contains("A"));
        s.unpin(&["A".to_string()]);
        let evicted = s.insert("C", dist(8, 8)).unwrap();
        assert!(evicted.contains(&"A".to_string()), "{evicted:?}");
    }

    #[test]
    fn external_pressure_displaces_cold_entries_within_the_budget() {
        let one = dist(8, 8).logical_bytes();
        let s = SharedStore::with_capacity_and_disk(3 * one, temp_dir("pressure")).unwrap();
        s.insert("A", dist(8, 8)).unwrap();
        s.insert("B", dist(8, 8)).unwrap();
        // Touch A so B is the coldest entry when pressure arrives.
        let _ = s.get("A");
        let displaced = s.set_external_pressure(2 * one).unwrap();
        assert_eq!(displaced, vec!["B".to_string()]);
        assert!(s.is_spilled("B") && !s.is_spilled("A"));
        assert_eq!(s.stats().external_pressure, 2 * one);
        // The high-water mark saw stored + pressure before displacement.
        assert_eq!(s.stats().peak_footprint, 4 * one);
        // Pressure released: nothing else moves, and B reloads on demand.
        assert!(s.set_external_pressure(0).unwrap().is_empty());
        assert_eq!(s.get("B").unwrap().rows(), 8);
        assert_eq!(s.stats().loads, 1);
    }

    #[test]
    fn pressure_alone_never_over_commits() {
        let one = dist(8, 8).logical_bytes();
        // Memory-only store, one pinned entry: pressure beyond the budget
        // has no victim left, but it is not the store's data overshooting
        // — displacement stops instead of erroring (the admission gate
        // upstream refuses plans whose peak cannot fit).
        let s = SharedStore::with_capacity(2 * one);
        s.insert("A", dist(8, 8)).unwrap();
        s.pin(&["A".to_string()]);
        assert!(s.set_external_pressure(10 * one).unwrap().is_empty());
        assert!(s.contains("A"));
        assert_eq!(s.stats().over_commits, 0);
        // Stored pinned bytes overshooting on their own still error:
        // replacing A with a 4× matrix inherits the pin, and 4·one > cap
        // regardless of pressure.
        let err = s.insert("A", dist(16, 16)).unwrap_err();
        assert!(matches!(err, CoreError::StoreOverCommit { .. }), "{err}");
        assert_eq!(s.stats().over_commits, 1);
    }

    #[test]
    fn over_commit_is_a_typed_error_not_a_silent_overshoot() {
        let one = dist(8, 8).logical_bytes();
        let s = SharedStore::with_capacity(one);
        s.insert("A", dist(8, 8)).unwrap();
        s.pin(&["A".to_string()]);
        // Replacing A with a larger matrix inherits the pin; nothing is
        // displaceable, so the overshoot must surface as a typed error.
        let err = s.insert("A", dist(16, 16)).unwrap_err();
        let CoreError::StoreOverCommit { resident, capacity } = err else {
            panic!("expected StoreOverCommit, got {err}");
        };
        assert!(resident > capacity);
        assert_eq!(s.stats().over_commits, 1);
        // The entry was kept — the error reports, it does not destroy.
        assert_eq!(s.get("A").unwrap().rows(), 16);
        // Unpinning clears the condition on the next insert.
        s.unpin(&["A".to_string()]);
        let displaced = s.insert("B", dist(8, 8)).unwrap();
        assert_eq!(displaced, vec!["A".to_string()]);
    }

    #[test]
    fn write_claims_detect_conflicts() {
        let s = SharedStore::new();
        let w = vec!["W".to_string(), "H".to_string()];
        s.claim_writes(&w, 1).unwrap();
        // Same token may re-claim (idempotent for one request).
        s.claim_writes(&w, 1).unwrap();
        let err = s.claim_writes(&["H".to_string()], 2).unwrap_err();
        assert!(matches!(err, CoreError::StoreConflict(n) if n == "H"));
        assert_eq!(s.stats().conflicts, 1);
        s.release_writes(1);
        s.claim_writes(&["H".to_string()], 2).unwrap();
    }

    #[test]
    fn shared_clones_see_the_same_entries() {
        let a = SharedStore::new();
        let b = a.clone();
        a.insert("X", dist(8, 8)).unwrap();
        assert!(b.contains("X"));
        b.remove("X");
        assert!(!a.contains("X"));
    }

    #[test]
    fn spill_instead_of_evict_and_transparent_reload() {
        let one = dist(8, 8).logical_bytes();
        let s = SharedStore::with_capacity_and_disk(2 * one, temp_dir("spill")).unwrap();
        s.insert("A", dist(8, 8)).unwrap();
        s.insert("B", dist(8, 8)).unwrap();
        let _ = s.get("A");
        let displaced = s.insert("C", dist(8, 8)).unwrap();
        assert_eq!(displaced, vec!["B".to_string()]);
        // Spilled, not dropped: still present, scheme still known.
        assert!(s.contains("B"));
        assert!(s.is_spilled("B"));
        assert_eq!(s.scheme_of("B"), Some(PartitionScheme::Row));
        let st = s.stats();
        assert_eq!((st.spills, st.evictions, st.spilled), (1, 0, 1));
        assert!(st.spill_bytes > 0);
        // Reload is transparent and bit-exact.
        let healthy = dist(8, 8).to_blocked().unwrap().to_dense();
        let b = s.get("B").unwrap();
        assert_eq!(b.to_blocked().unwrap().to_dense(), healthy);
        assert!(!s.is_spilled("B"));
        let st = s.stats();
        assert_eq!(st.loads, 1);
        assert!(st.load_bytes > 0);
        // Loading B displaced the coldest resident entry to stay in budget.
        assert!(s.stats().bytes <= 2 * one);
    }

    #[test]
    fn corrupt_spill_blob_degrades_to_absent() {
        let one = dist(8, 8).logical_bytes();
        let s = SharedStore::with_capacity_and_disk(one, temp_dir("corrupt")).unwrap();
        s.insert("A", dist(8, 8)).unwrap();
        s.insert("B", dist(8, 8)).unwrap(); // spills A
        assert!(s.is_spilled("A"));
        // Corrupt every blob on disk.
        let disk = s.disk().unwrap();
        for entry in std::fs::read_dir(disk.root().join("blocks")).unwrap() {
            let p = entry.unwrap().path();
            let bytes = std::fs::read(&p).unwrap();
            std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
        }
        // get() detects the damage, drops the entry, reports absence —
        // exactly what lineage-replay fallback expects.
        assert!(s.get("A").is_none());
        assert!(!s.contains("A"));
        assert_eq!(s.stats().load_failures, 1);
    }

    #[test]
    fn checkpoint_recover_roundtrip_is_bit_exact() {
        let dir = temp_dir("ckpt");
        let s = SharedStore::with_disk(&dir).unwrap();
        s.insert("W", dist(16, 8)).unwrap();
        s.insert("H", dist(8, 12)).unwrap();
        let names = vec!["W".to_string(), "H".to_string()];
        let seq = s.checkpoint(&names, 3).unwrap();
        assert_eq!(s.latest_snapshot(), Some((seq, 3)));
        assert_eq!(s.stats().snapshots, 1);

        // A fresh store over the same directory recovers both names.
        let r = SharedStore::with_disk(&dir).unwrap();
        let recovered = r.recover().unwrap();
        assert_eq!(recovered, vec!["H".to_string(), "W".to_string()]);
        assert_eq!(r.latest_snapshot(), Some((seq, 3)));
        assert!(r.is_spilled("W") && r.is_spilled("H"));
        assert_eq!(r.scheme_of("W"), Some(PartitionScheme::Row));
        let w0 = s.get("W").unwrap().to_blocked().unwrap().to_dense();
        let w1 = r.get("W").unwrap().to_blocked().unwrap().to_dense();
        assert_eq!(w0, w1, "recovered W must be bit-for-bit identical");
    }

    #[test]
    fn recheckpointing_unchanged_matrices_writes_nothing() {
        let dir = temp_dir("dedup");
        let s = SharedStore::with_disk(&dir).unwrap();
        s.insert("W", dist(16, 8)).unwrap();
        let names = vec!["W".to_string()];
        s.checkpoint(&names, 1).unwrap();
        let written = s.stats().spill_bytes;
        assert!(written > 0);
        s.checkpoint(&names, 2).unwrap();
        assert_eq!(
            s.stats().spill_bytes,
            written,
            "content addressing skips unchanged blobs"
        );
    }

    #[test]
    fn crash_during_checkpoint_preserves_previous_snapshot() {
        let dir = temp_dir("crash");
        let s = SharedStore::with_disk(&dir).unwrap();
        s.insert("W", dist(16, 8)).unwrap();
        let names = vec!["W".to_string()];
        let seq1 = s.checkpoint(&names, 1).unwrap();
        // Arm a crash between blob write and manifest publish, change W,
        // and try to checkpoint again.
        s.insert("W", dist(16, 16)).unwrap();
        s.arm_crashes(&FaultPlan::crash(CrashPoint::BeforeManifestPublish, 0));
        let err = s.checkpoint(&names, 2).unwrap_err();
        assert!(matches!(err, CoreError::InjectedCrash(_)));
        // A restarted store sees the *old* snapshot, fully intact.
        let r = SharedStore::with_disk(&dir).unwrap();
        assert_eq!(r.recover().unwrap(), vec!["W".to_string()]);
        assert_eq!(r.latest_snapshot(), Some((seq1, 1)));
        assert_eq!(r.get("W").unwrap().rows(), 16);
        assert_eq!(r.get("W").unwrap().cols(), 8, "pre-crash W");
    }
}
