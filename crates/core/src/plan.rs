//! The execution plan: a DAG of materialised matrix instances connected by
//! compute steps and the five extended operators of §4.2.1.
//!
//! A [`PlanNode`] is one *physical* matrix instance: a program value,
//! possibly transposed, materialised under a concrete partition scheme —
//! the ellipses of the paper's Figure 3 (`W1(b)`, `W1ᵀV(c)`, …). A
//! [`PlanStep`] is an edge: either one of the extended operators
//! (`partition`, `broadcast`, `transpose`, `reference`, `extract`) or a
//! `compute` step carrying the chosen execution strategy.

use std::fmt::Write as _;

use dmac_cluster::PartitionScheme;
use dmac_lang::{MatrixId, Program, ScalarExpr, ScalarId};

use crate::strategy::Strategy;

/// Index of a node in [`Plan::nodes`].
pub type NodeId = usize;

/// One materialised matrix instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// The program value this node holds.
    pub matrix: MatrixId,
    /// True when the node physically holds the transpose of that value.
    pub transposed: bool,
    /// Partition scheme the node is materialised under.
    pub scheme: PartitionScheme,
    /// CPMM outputs start flexible (`r|c`); the Re-assignment heuristic
    /// pins them. Flexible nodes are finalised to Row if never pinned.
    pub flexible: bool,
}

/// One step of the plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep {
    /// `partition`: repartition `src` into `out`'s Row/Column scheme.
    /// **Communication.**
    Partition {
        /// Source node.
        src: NodeId,
        /// Destination node (its scheme is the repartition target).
        out: NodeId,
        /// Phase tag inherited from the consuming operator.
        phase: usize,
    },
    /// `broadcast`: replicate `src` on every worker. **Communication.**
    Broadcast {
        /// Source node.
        src: NodeId,
        /// Destination (Broadcast-scheme) node.
        out: NodeId,
        /// Phase tag.
        phase: usize,
    },
    /// `transpose`: local transpose with complementary scheme. Free.
    Transpose {
        /// Source node.
        src: NodeId,
        /// Destination node.
        out: NodeId,
        /// Phase tag.
        phase: usize,
    },
    /// `extract`: local filter of a Broadcast copy down to Row/Column. Free.
    Extract {
        /// Source (Broadcast) node.
        src: NodeId,
        /// Destination node.
        out: NodeId,
        /// Phase tag.
        phase: usize,
    },
    /// `reference`: null operation marking direct reuse. Free.
    Reference {
        /// Source node.
        src: NodeId,
        /// Alias node (same matrix, same scheme).
        out: NodeId,
        /// Phase tag.
        phase: usize,
    },
    /// A decomposed program operator executed with a chosen strategy.
    Compute {
        /// Index of the operator in the program.
        op: usize,
        /// The selected execution strategy.
        strategy: Strategy,
        /// Input nodes, in operand order.
        inputs: Vec<NodeId>,
        /// Output node (None for reductions).
        out: Option<NodeId>,
        /// Output scalar (reductions only).
        out_scalar: Option<ScalarId>,
        /// Phase tag (iteration number).
        phase: usize,
    },
    /// `free`: release a node whose last use has passed. Spliced by the
    /// planner's liveness pass immediately after the final reader of a
    /// non-output intermediate, so the executor can drop the value (and
    /// the transports their shards) instead of waiting for phase end or
    /// LRU displacement. Purely local — never communication.
    Free {
        /// The node being released.
        node: NodeId,
        /// Phase tag inherited from the last reader.
        phase: usize,
    },
    /// A maximal group of scheme-aligned cell-wise operators collapsed
    /// into one single-pass step: the post-order `prog` is evaluated per
    /// block over the `inputs` leaves, materialising only the final
    /// result. Purely local — never communication.
    FusedCellWise {
        /// Program operator indices subsumed by the fusion, in plan order.
        ops: Vec<usize>,
        /// Post-order expression program over `inputs`.
        prog: Vec<FusedInstr>,
        /// Leaf input nodes, in [`FusedInstr::Leaf`] index order.
        inputs: Vec<NodeId>,
        /// Output node.
        out: NodeId,
        /// Phase tag.
        phase: usize,
    },
}

/// One post-order instruction of a fused cell-wise expression
/// ([`PlanStep::FusedCellWise`]): `Leaf(i)` pushes the `i`-th fused input,
/// binary instructions pop two operands, scalar instructions pop one.
/// Scalar operands stay symbolic ([`ScalarExpr`]) so a fused step can be
/// replayed from lineage after the driver's reduction values are known.
#[derive(Debug, Clone, PartialEq)]
pub enum FusedInstr {
    /// Push fused input `i`.
    Leaf(usize),
    /// Cell-wise addition.
    Add,
    /// Cell-wise subtraction.
    Sub,
    /// Cell-wise multiplication.
    CellMul,
    /// Cell-wise division (0 where the divisor is 0).
    CellDiv,
    /// Multiply every cell by a scalar expression.
    Scale(ScalarExpr),
    /// Add a scalar expression to every cell.
    AddScalar(ScalarExpr),
}

impl PlanStep {
    /// Phase tag of the step.
    pub fn phase(&self) -> usize {
        match self {
            PlanStep::Partition { phase, .. }
            | PlanStep::Broadcast { phase, .. }
            | PlanStep::Transpose { phase, .. }
            | PlanStep::Extract { phase, .. }
            | PlanStep::Reference { phase, .. }
            | PlanStep::Compute { phase, .. }
            | PlanStep::Free { phase, .. }
            | PlanStep::FusedCellWise { phase, .. } => *phase,
        }
    }

    /// Does this step move data between workers? Partition and Broadcast
    /// always do; a Compute step does exactly when its strategy's output
    /// event communicates (CPMM).
    pub fn is_comm(&self) -> bool {
        match self {
            PlanStep::Partition { .. } | PlanStep::Broadcast { .. } => true,
            PlanStep::Compute { strategy, .. } => strategy.output_communicates(),
            _ => false,
        }
    }

    /// The node this step defines, if any.
    pub fn out_node(&self) -> Option<NodeId> {
        match self {
            PlanStep::Partition { out, .. }
            | PlanStep::Broadcast { out, .. }
            | PlanStep::Transpose { out, .. }
            | PlanStep::Extract { out, .. }
            | PlanStep::Reference { out, .. } => Some(*out),
            PlanStep::Compute { out, .. } => *out,
            PlanStep::Free { .. } => None,
            PlanStep::FusedCellWise { out, .. } => Some(*out),
        }
    }

    /// The nodes this step reads.
    pub fn in_nodes(&self) -> Vec<NodeId> {
        match self {
            PlanStep::Partition { src, .. }
            | PlanStep::Broadcast { src, .. }
            | PlanStep::Transpose { src, .. }
            | PlanStep::Extract { src, .. }
            | PlanStep::Reference { src, .. } => vec![*src],
            PlanStep::Compute { inputs, .. } | PlanStep::FusedCellWise { inputs, .. } => {
                inputs.clone()
            }
            PlanStep::Free { node, .. } => vec![*node],
        }
    }
}

/// A step-indexed upper bound on resident bytes, produced by the
/// planner's liveness pass and re-derived independently by the verifier
/// (invariant V20). `per_step[i]` bounds the bytes of all plan nodes
/// live *after* `steps[i]` has executed and its frees have taken effect;
/// the engine's metered [`crate::trace::StepTrace::resident_bytes`] must
/// never exceed it (invariant V21).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryCertificate {
    /// Per-step resident-byte bounds, parallel to [`Plan::steps`].
    pub per_step: Vec<u64>,
    /// Maximum of `per_step` (0 for empty plans).
    pub peak: u64,
    /// Index attaining the peak (first, if tied; 0 for empty plans).
    pub argmax: usize,
}

impl MemoryCertificate {
    /// Build a certificate from per-step bounds, computing peak/argmax.
    pub fn from_per_step(per_step: Vec<u64>) -> MemoryCertificate {
        let (argmax, peak) = per_step
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, &b)| (i, b))
            .unwrap_or((0, 0));
        MemoryCertificate {
            per_step,
            peak,
            argmax,
        }
    }
}

/// A complete execution plan for one program.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// All materialised matrix instances.
    pub nodes: Vec<PlanNode>,
    /// Steps in execution order.
    pub steps: Vec<PlanStep>,
    /// Source nodes: `(node, matrix id)` for every load/random input, in
    /// the placement it starts with.
    pub sources: Vec<(NodeId, MatrixId)>,
    /// Output bindings: `(node, program matrix id, optional store name)`.
    pub outputs: Vec<(NodeId, MatrixId, Option<String>)>,
    /// `predicted[i]` is the planner's cost-model prediction (§4.1 event
    /// bytes) for `steps[i]`: `0` for non-communication dependencies,
    /// `|A|` for (transpose-)partition, `N·|A|` for (transpose-)broadcast,
    /// and `N·|AB|` for a CPMM compute step's output event. Kept parallel
    /// to `steps`; absent entries (plans built by hand in tests) read as 0.
    pub predicted: Vec<u64>,
    /// `predicted_nnz[i]` is the estimator's predicted non-zero count of
    /// the matrix `steps[i]` defines (0 for scalar/output-less steps).
    /// Stamped by the planner's post-pass; parallel to `steps`, absent
    /// entries read as 0.
    pub predicted_nnz: Vec<u64>,
}

impl Plan {
    /// Add a node, returning its id.
    pub fn add_node(
        &mut self,
        matrix: MatrixId,
        transposed: bool,
        scheme: PartitionScheme,
        flexible: bool,
    ) -> NodeId {
        self.nodes.push(PlanNode {
            matrix,
            transposed,
            scheme,
            flexible,
        });
        self.nodes.len() - 1
    }

    /// Append a step together with its predicted cost-model bytes.
    pub fn push_step(&mut self, step: PlanStep, predicted_bytes: u64) {
        // Keep `predicted` aligned even if earlier steps were pushed
        // directly onto `steps` (hand-built plans in tests).
        self.predicted.resize(self.steps.len(), 0);
        self.steps.push(step);
        self.predicted.push(predicted_bytes);
    }

    /// The planner's predicted cost-model bytes for `steps[i]` (0 when the
    /// plan was built without predictions).
    pub fn predicted_bytes(&self, i: usize) -> u64 {
        self.predicted.get(i).copied().unwrap_or(0)
    }

    /// Sum of per-step predictions; equals the planner's `estimated_comm`
    /// for planner-built plans.
    pub fn predicted_total(&self) -> u64 {
        self.predicted.iter().sum()
    }

    /// The estimator's predicted output nnz for `steps[i]` (0 when the
    /// step defines no node or the plan was built without profiles).
    pub fn step_predicted_nnz(&self, i: usize) -> u64 {
        self.predicted_nnz.get(i).copied().unwrap_or(0)
    }

    /// Finalise: any still-flexible CPMM output defaults to Row.
    pub fn finalize_flexible(&mut self) {
        for n in &mut self.nodes {
            if n.flexible {
                n.scheme = PartitionScheme::Row;
                n.flexible = false;
            }
        }
    }

    /// Total modelled communication cost of the plan under a cost model:
    /// sum over comm steps of the moved estimate. Used by planner tests;
    /// the real metered value comes from execution.
    pub fn comm_step_count(&self) -> usize {
        self.steps.iter().filter(|s| s.is_comm()).count()
    }

    /// Human-readable label of a node, paper-style: `W1t(b)`.
    pub fn node_label(&self, program: &Program, id: NodeId) -> String {
        let n = &self.nodes[id];
        let name = program
            .decl(n.matrix)
            .map(|d| d.name.clone())
            .unwrap_or_else(|_| format!("m{}", n.matrix));
        format!(
            "{}{}({})",
            name,
            if n.transposed { "t" } else { "" },
            n.scheme.short()
        )
    }

    /// Render the plan as Graphviz DOT — the paper's Figure 3 as an
    /// artifact: matrix instances are ellipses labelled `name(scheme)`,
    /// edges are operators, communication edges are red/bold, local
    /// (dependency) edges dashed blue, and nodes are ranked by stage.
    pub fn to_dot(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let stages = crate::stage::schedule(self);
        let mut s = String::new();
        let _ = writeln!(s, "digraph plan {{");
        let _ = writeln!(s, "  rankdir=TB; node [shape=ellipse, fontsize=10];");
        for (i, _) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                s,
                "  n{i} [label=\"{}\"];",
                self.node_label(program, i).replace('"', "'")
            );
        }
        let mut op_counter = 0usize;
        for step in &self.steps {
            let (style, label) = match step {
                PlanStep::Partition { .. } => ("color=red, penwidth=2", "partition".to_string()),
                PlanStep::Broadcast { .. } => ("color=red, penwidth=2", "broadcast".to_string()),
                PlanStep::Transpose { .. } => ("color=blue, style=dashed", "transpose".to_string()),
                PlanStep::Extract { .. } => ("color=blue, style=dashed", "extract".to_string()),
                PlanStep::Reference { .. } => ("color=blue, style=dashed", "reference".to_string()),
                PlanStep::Compute { strategy, .. } => ("color=black", strategy.name()),
                PlanStep::Free { .. } => ("color=gray, style=dotted", "free".to_string()),
                PlanStep::FusedCellWise { ops, .. } => {
                    ("color=black, penwidth=2", format!("Fused({})", ops.len()))
                }
            };
            match step {
                PlanStep::Free { node, .. } => {
                    // Frees render as a dotted self-edge sink so the
                    // release point is visible without adding nodes.
                    let id = format!("f{op_counter}");
                    op_counter += 1;
                    let _ = writeln!(s, "  {id} [shape=point];");
                    let _ = writeln!(s, "  n{node} -> {id} [label=\"{label}\", {style}];");
                }
                PlanStep::FusedCellWise { inputs, out, .. } => {
                    for input in inputs {
                        let _ = writeln!(s, "  n{input} -> n{out} [label=\"{label}\", {style}];");
                    }
                }
                PlanStep::Compute { inputs, out, .. } => {
                    let target = match out {
                        Some(o) => format!("n{o}"),
                        None => {
                            // Scalar sinks get a point node.
                            let id = format!("s{op_counter}");
                            let _ = writeln!(s, "  {id} [shape=point];");
                            id
                        }
                    };
                    op_counter += 1;
                    for input in inputs {
                        let _ = writeln!(s, "  n{input} -> {target} [label=\"{label}\", {style}];");
                    }
                }
                other => {
                    if let (Some(src), Some(out)) =
                        (other.in_nodes().first().copied(), other.out_node())
                    {
                        let _ = writeln!(s, "  n{src} -> n{out} [label=\"{label}\", {style}];");
                    }
                }
            }
        }
        // Rank nodes by stage (the Figure-3 horizontal bands).
        for k in 0..stages.count {
            let members: Vec<String> = stages
                .node_stage
                .iter()
                .enumerate()
                .filter(|(_, &st)| st == k)
                .map(|(i, _)| format!("n{i}"))
                .collect();
            if members.len() > 1 {
                let _ = writeln!(s, "  {{ rank=same; {}; }}", members.join("; "));
            }
        }
        let _ = writeln!(s, "}}");
        s
    }

    /// EXPLAIN-style dump of the plan (used by the `plan_explain` example
    /// and by debugging sessions).
    pub fn explain(&self, program: &Program) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "plan: {} nodes, {} steps",
            self.nodes.len(),
            self.steps.len()
        );
        for (i, step) in self.steps.iter().enumerate() {
            let line = match step {
                PlanStep::Partition { src, out, .. } => format!(
                    "partition   {} -> {}",
                    self.node_label(program, *src),
                    self.node_label(program, *out)
                ),
                PlanStep::Broadcast { src, out, .. } => format!(
                    "broadcast   {} -> {}",
                    self.node_label(program, *src),
                    self.node_label(program, *out)
                ),
                PlanStep::Transpose { src, out, .. } => format!(
                    "transpose   {} -> {}",
                    self.node_label(program, *src),
                    self.node_label(program, *out)
                ),
                PlanStep::Extract { src, out, .. } => format!(
                    "extract     {} -> {}",
                    self.node_label(program, *src),
                    self.node_label(program, *out)
                ),
                PlanStep::Reference { src, out, .. } => format!(
                    "reference   {} -> {}",
                    self.node_label(program, *src),
                    self.node_label(program, *out)
                ),
                PlanStep::Compute {
                    op,
                    strategy,
                    inputs,
                    out,
                    ..
                } => {
                    let ins: Vec<String> = inputs
                        .iter()
                        .map(|&n| self.node_label(program, n))
                        .collect();
                    let out_s = out
                        .map(|n| self.node_label(program, n))
                        .unwrap_or_else(|| "<scalar>".into());
                    format!(
                        "compute#{op:<3} {} [{}] -> {}",
                        strategy.name(),
                        ins.join(", "),
                        out_s
                    )
                }
                PlanStep::Free { node, .. } => {
                    format!("free        {}", self.node_label(program, *node))
                }
                PlanStep::FusedCellWise {
                    ops, inputs, out, ..
                } => {
                    let ins: Vec<String> = inputs
                        .iter()
                        .map(|&n| self.node_label(program, n))
                        .collect();
                    format!(
                        "fused#{:<4} Fused({}) [{}] -> {}",
                        ops.iter()
                            .map(|o| o.to_string())
                            .collect::<Vec<_>>()
                            .join("+"),
                        ops.len(),
                        ins.join(", "),
                        self.node_label(program, *out)
                    )
                }
            };
            let comm = if step.is_comm() { " *comm*" } else { "" };
            let _ = writeln!(s, "  [{i:>3}] {line}{comm}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_kind_predicates() {
        let p = PlanStep::Partition {
            src: 0,
            out: 1,
            phase: 0,
        };
        assert!(p.is_comm());
        assert_eq!(p.out_node(), Some(1));
        assert_eq!(p.in_nodes(), vec![0]);

        let t = PlanStep::Transpose {
            src: 0,
            out: 1,
            phase: 2,
        };
        assert!(!t.is_comm());
        assert_eq!(t.phase(), 2);

        let c = PlanStep::Compute {
            op: 0,
            strategy: Strategy::Cpmm,
            inputs: vec![1, 2],
            out: Some(3),
            out_scalar: None,
            phase: 0,
        };
        assert!(c.is_comm(), "CPMM output shuffles");
        let c2 = PlanStep::Compute {
            op: 0,
            strategy: Strategy::Rmm1,
            inputs: vec![1, 2],
            out: Some(3),
            out_scalar: None,
            phase: 0,
        };
        assert!(!c2.is_comm());
        assert_eq!(c2.in_nodes(), vec![1, 2]);
    }

    #[test]
    fn finalize_pins_flexible_to_row() {
        let mut plan = Plan::default();
        let n = plan.add_node(0, false, PartitionScheme::Col, true);
        plan.finalize_flexible();
        assert_eq!(plan.nodes[n].scheme, PartitionScheme::Row);
        assert!(!plan.nodes[n].flexible);
    }

    #[test]
    fn dot_output_is_wellformed() {
        let mut program = Program::new();
        let a = program.load("A", 8, 8, 1.0);
        let b = program.matmul(a, a).unwrap();
        program.output(b);
        let planned = crate::planner::plan_program(
            &program,
            &crate::planner::PlannerConfig::default(),
            2,
            &std::collections::HashMap::new(),
        )
        .unwrap();
        let dot = planned.plan.to_dot(&program);
        assert!(dot.starts_with("digraph plan {"), "{dot}");
        assert!(dot.trim_end().ends_with('}'), "{dot}");
        assert!(dot.contains("A(h)"), "{dot}");
        assert!(dot.contains("color=red"), "comm edges highlighted: {dot}");
        assert!(dot.matches("->").count() >= 2, "{dot}");
    }

    #[test]
    fn explain_renders_labels() {
        let mut program = Program::new();
        let w = program.load("W", 4, 4, 1.0);
        let x = program.matmul(w.t(), w).unwrap();
        program.output(x);

        let mut plan = Plan::default();
        let a = plan.add_node(w.id, true, PartitionScheme::Broadcast, false);
        let b = plan.add_node(w.id, false, PartitionScheme::Col, false);
        let c = plan.add_node(x.id, false, PartitionScheme::Col, false);
        plan.steps.push(PlanStep::Compute {
            op: 0,
            strategy: Strategy::Rmm1,
            inputs: vec![a, b],
            out: Some(c),
            out_scalar: None,
            phase: 0,
        });
        let text = plan.explain(&program);
        assert!(text.contains("Wt(b)"), "{text}");
        assert!(text.contains("RMM1"), "{text}");
    }
}
