//! Debug-build plan verification hook.
//!
//! `dmac-analyze` implements an independent plan-invariant verifier, but
//! `dmac-core` cannot depend on it (the analyzer depends on core's plan
//! types). Instead, core exposes a process-wide function-pointer slot:
//! binaries and tests that link the analyzer call
//! `dmac_analyze::install_session_verifier()` once at startup, and every
//! [`crate::Session`] plan construction in a **debug build** re-checks the
//! planner's output against the independent recomputation before the plan
//! is used. Release builds skip the hook entirely; the service and CLI
//! invoke the verifier explicitly where they want it regardless of build
//! profile.

use std::sync::OnceLock;

use dmac_lang::Program;

use crate::error::CoreError;
use crate::plan::MemoryCertificate;
use crate::planner::{Planned, PlannerConfig};
use crate::trace::Trace;

/// An independent verifier: inspects a planned program and returns a
/// human-readable description of the first violated invariant, if any.
pub type PlanVerifier = fn(&Program, &Planned, &PlannerConfig, usize) -> Result<(), String>;

/// A post-run verifier: checks an execution trace against the plan's
/// memory certificate (invariant V21 — observed resident bytes never
/// exceed the certified bound).
pub type RunVerifier = fn(&MemoryCertificate, &Trace) -> Result<(), String>;

static PLAN_VERIFIER: OnceLock<PlanVerifier> = OnceLock::new();
static RUN_VERIFIER: OnceLock<RunVerifier> = OnceLock::new();

/// Install the process-wide plan verifier. The first installation wins;
/// later calls are no-ops (the verifier is stateless, so racing installs
/// of the same function are harmless).
pub fn install_plan_verifier(f: PlanVerifier) {
    let _ = PLAN_VERIFIER.set(f);
}

/// Run the installed verifier (debug builds only). A violation surfaces
/// as [`CoreError::Planner`] so planning fails loudly instead of
/// executing a plan whose predictions the verifier could not reproduce.
pub(crate) fn check(
    program: &Program,
    planned: &Planned,
    cfg: &PlannerConfig,
    workers: usize,
) -> Result<(), CoreError> {
    if !cfg!(debug_assertions) {
        return Ok(());
    }
    if let Some(f) = PLAN_VERIFIER.get() {
        f(program, planned, cfg, workers)
            .map_err(|m| CoreError::Planner(format!("plan verifier: {m}")))?;
    }
    Ok(())
}

/// Install the process-wide post-run verifier. First installation wins.
pub fn install_run_verifier(f: RunVerifier) {
    let _ = RUN_VERIFIER.set(f);
}

/// Run the installed post-run verifier (debug builds only). A violation
/// surfaces as [`CoreError::Engine`]: the run's observed residency broke
/// the certified bound, so the result is suspect.
pub(crate) fn check_run(certificate: &MemoryCertificate, trace: &Trace) -> Result<(), CoreError> {
    if !cfg!(debug_assertions) {
        return Ok(());
    }
    if let Some(f) = RUN_VERIFIER.get() {
        f(certificate, trace).map_err(|m| CoreError::Engine(format!("run verifier: {m}")))?;
    }
    Ok(())
}
