//! Error type spanning planning and execution.

use std::fmt;

/// Errors from planning or executing a matrix program.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Program-construction/validation error.
    Lang(dmac_lang::LangError),
    /// Distributed-runtime error.
    Cluster(dmac_cluster::ClusterError),
    /// Local-kernel error.
    Matrix(dmac_matrix::MatrixError),
    /// Planner invariant violation.
    Planner(String),
    /// Engine invariant violation (plan/runtime mismatch).
    Engine(String),
    /// A load referred to a name the session has no binding for.
    Unbound(String),
    /// Two in-flight programs declared a write intent for the same store
    /// name; admitting both would make the result scheduling-dependent.
    StoreConflict(String),
    /// Requested value is not available (expression not part of the last
    /// run's outputs, or no run has happened).
    NoValue(String),
    /// Worker losses exhausted the configured recovery attempt budget.
    RecoveryExhausted {
        /// Host whose loss could not be recovered.
        worker: usize,
        /// The attempt budget that was exhausted.
        attempts: usize,
    },
    /// Pinned entries alone exceed the store's byte budget: eviction
    /// cannot get back under capacity without violating a pin, so the
    /// overshoot is reported instead of being swallowed silently.
    StoreOverCommit {
        /// Resident bytes after evicting/spilling everything unpinned.
        resident: u64,
        /// The configured byte budget.
        capacity: u64,
    },
    /// Disk-tier failure: I/O error, torn file, or checksum mismatch.
    Disk(String),
    /// The deterministic crash injector fired at a durability boundary
    /// (the process model "died"; on-disk state is whatever the
    /// half-finished operation left behind).
    InjectedCrash(dmac_cluster::CrashPoint),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Lang(e) => write!(f, "program error: {e}"),
            CoreError::Cluster(e) => write!(f, "cluster error: {e}"),
            CoreError::Matrix(e) => write!(f, "kernel error: {e}"),
            CoreError::Planner(m) => write!(f, "planner error: {m}"),
            CoreError::Engine(m) => write!(f, "engine error: {m}"),
            CoreError::Unbound(n) => write!(f, "no binding for input matrix '{n}'"),
            CoreError::StoreConflict(n) => write!(
                f,
                "store conflict: another in-flight program is writing matrix '{n}'"
            ),
            CoreError::NoValue(m) => write!(f, "value unavailable: {m}"),
            CoreError::RecoveryExhausted { worker, attempts } => write!(
                f,
                "lost worker {worker}: recovery budget of {attempts} attempt(s) exhausted"
            ),
            CoreError::StoreOverCommit { resident, capacity } => write!(
                f,
                "store over-commit: {resident} pinned bytes resident against a budget of {capacity}"
            ),
            CoreError::Disk(m) => write!(f, "disk tier error: {m}"),
            CoreError::InjectedCrash(p) => {
                write!(f, "injected crash at durability point '{p}'")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Lang(e) => Some(e),
            CoreError::Cluster(e) => Some(e),
            CoreError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dmac_lang::LangError> for CoreError {
    fn from(e: dmac_lang::LangError) -> Self {
        CoreError::Lang(e)
    }
}

impl From<dmac_cluster::ClusterError> for CoreError {
    fn from(e: dmac_cluster::ClusterError) -> Self {
        CoreError::Cluster(e)
    }
}

impl From<dmac_matrix::MatrixError> for CoreError {
    fn from(e: dmac_matrix::MatrixError) -> Self {
        CoreError::Matrix(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = dmac_lang::LangError::NoOutputs.into();
        assert!(e.to_string().contains("no outputs"));
        let e: CoreError = dmac_matrix::MatrixError::InvalidBlockSize(0).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(CoreError::Unbound("V".into()).to_string().contains("'V'"));
    }
}
