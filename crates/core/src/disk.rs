//! The durable disk tier under [`crate::store::SharedStore`] (PR 6).
//!
//! Layout of a data directory:
//!
//! ```text
//! <root>/blocks/<fnv64:016x>.blk   content-addressed immutable blob files
//! <root>/manifest-<seq:06>.txt     snapshot manifests (append-only seq)
//! <root>/CURRENT                   "<manifest-file> <checksum:016x>"
//! <root>/plans/<fp:016x>.dml       persisted plan-cache scripts (serve)
//! ```
//!
//! **Blobs** hold one serialised [`DistMatrix`] each (geometry, scheme,
//! and the exact per-worker tile placement, so a reload reproduces the
//! physical layout bit-for-bit). A blob file is
//! `magic ∥ payload_len ∥ payload ∥ fnv1a64(payload)` and is named by
//! the payload's own FNV-1a hash — content addressing, so identical
//! matrices across snapshots share one file and re-checkpointing an
//! unchanged matrix writes nothing.
//!
//! **Crash consistency** rests on two rules: blobs and manifests are
//! written to a temp file and atomically renamed, and a snapshot only
//! becomes visible when the `CURRENT` pointer (itself temp+rename) is
//! swapped to the new manifest. A crash at any boundary therefore
//! leaves either the old snapshot fully intact or the new one fully
//! published; half-written garbage is unreachable and later removed by
//! compaction. Every read re-verifies length and checksum, so even a
//! filesystem that tears writes (modelled by [`CrashPoint::MidBlobWrite`]
//! / [`CrashPoint::MidManifestWrite`]) is detected and the reader falls
//! back to the previous manifest — or, with none valid, to lineage
//! replay.
//!
//! **Crash injection**: [`DiskTier::arm_crashes`] installs a
//! [`FaultPlan`] whose `crash_point`/`crash_at` deterministically kill
//! the process model at the chosen durability boundary, leaving exactly
//! the torn state a real `kill -9` could. Tests then reopen the
//! directory with a fresh store and assert recovery is bit-for-bit
//! identical to a healthy run.

use std::collections::HashSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::sync::Mutex;

use dmac_cluster::{CrashPoint, DistMatrix, FaultPlan, PartitionScheme};
use dmac_matrix::{Block, CscBlock, DenseBlock};

use crate::error::{CoreError, Result};

const BLOB_MAGIC: &[u8; 6] = b"DMBK1\n";
const DIST_MAGIC: &[u8; 6] = b"DMDM1\n";
const MANIFEST_MAGIC: &str = "dmac-manifest v1";
const PLAN_MAGIC: &str = "dmac-plan v1";

/// FNV-1a over raw bytes (the string variant lives in
/// `dmac_lang::normalize`; blobs need the byte form).
pub fn fnv1a_bytes(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn disk_err(ctx: &str, e: impl std::fmt::Display) -> CoreError {
    CoreError::Disk(format!("{ctx}: {e}"))
}

// ---------------------------------------------------------------------------
// DistMatrix <-> bytes codec
// ---------------------------------------------------------------------------

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| CoreError::Disk("truncated payload".into()))?;
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn usize64(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|e| disk_err("length overflows usize", e))
    }
}

fn scheme_tag(s: PartitionScheme) -> u8 {
    match s {
        PartitionScheme::Row => 0,
        PartitionScheme::Col => 1,
        PartitionScheme::Hash => 2,
        PartitionScheme::Broadcast => 3,
    }
}

fn tag_scheme(t: u8) -> Result<PartitionScheme> {
    Ok(match t {
        0 => PartitionScheme::Row,
        1 => PartitionScheme::Col,
        2 => PartitionScheme::Hash,
        3 => PartitionScheme::Broadcast,
        other => return Err(CoreError::Disk(format!("unknown scheme tag {other}"))),
    })
}

/// Serialise a [`DistMatrix`] — geometry, scheme, and exact per-worker
/// placement — into a self-describing payload.
pub fn encode_dist(m: &DistMatrix) -> Vec<u8> {
    // Distinct logical tiles with their physical holder. Under
    // Broadcast every worker holds every tile, so one copy is written
    // with the "replicated" sentinel; otherwise each tile lives on
    // exactly one worker (validated placements).
    let broadcast = m.scheme() == PartitionScheme::Broadcast;
    let mut tiles: Vec<(usize, usize, u32, &Arc<Block>)> = Vec::new();
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    for w in 0..m.workers() {
        for (&(bi, bj), tile) in m.worker_blocks(w) {
            if seen.insert((bi, bj)) {
                let owner = if broadcast { u32::MAX } else { w as u32 };
                tiles.push((bi, bj, owner, tile));
            }
        }
    }
    tiles.sort_unstable_by_key(|&(bi, bj, _, _)| (bi, bj));

    let mut out = Vec::new();
    out.extend_from_slice(DIST_MAGIC);
    push_u64(&mut out, m.rows() as u64);
    push_u64(&mut out, m.cols() as u64);
    push_u64(&mut out, m.block_size() as u64);
    push_u64(&mut out, m.workers() as u64);
    out.push(scheme_tag(m.scheme()));
    push_u64(&mut out, tiles.len() as u64);
    for (bi, bj, owner, tile) in tiles {
        push_u64(&mut out, bi as u64);
        push_u64(&mut out, bj as u64);
        push_u32(&mut out, owner);
        match tile.as_ref() {
            Block::Dense(d) => {
                out.push(0);
                push_u32(&mut out, d.rows() as u32);
                push_u32(&mut out, d.cols() as u32);
                for v in d.data() {
                    push_u64(&mut out, v.to_bits());
                }
            }
            Block::Sparse(s) => {
                out.push(1);
                push_u32(&mut out, s.rows() as u32);
                push_u32(&mut out, s.cols() as u32);
                push_u32(&mut out, s.nnz() as u32);
                for &p in s.col_ptrs() {
                    push_u32(&mut out, p);
                }
                for &r in s.row_indices() {
                    push_u32(&mut out, r);
                }
                for v in s.values() {
                    push_u64(&mut out, v.to_bits());
                }
            }
        }
    }
    out
}

/// Decode a payload produced by [`encode_dist`], validating the
/// reconstructed placement.
pub fn decode_dist(payload: &[u8]) -> Result<DistMatrix> {
    let mut c = Cursor {
        data: payload,
        pos: 0,
    };
    if c.take(DIST_MAGIC.len())? != DIST_MAGIC {
        return Err(CoreError::Disk("bad matrix payload magic".into()));
    }
    let rows = c.usize64()?;
    let cols = c.usize64()?;
    let block = c.usize64()?;
    let workers = c.usize64()?;
    let scheme = tag_scheme(c.take(1)?[0])?;
    let count = c.usize64()?;
    let mut tiles = Vec::with_capacity(count);
    for _ in 0..count {
        let bi = c.usize64()?;
        let bj = c.usize64()?;
        let owner = c.u32()?;
        let owner = if owner == u32::MAX {
            None
        } else {
            Some(owner as usize)
        };
        let kind = c.take(1)?[0];
        let tile = match kind {
            0 => {
                let r = c.u32()? as usize;
                let cc = c.u32()? as usize;
                let n = r
                    .checked_mul(cc)
                    .ok_or_else(|| CoreError::Disk("dense tile size overflow".into()))?;
                let mut data = Vec::with_capacity(n);
                for _ in 0..n {
                    data.push(f64::from_bits(c.u64()?));
                }
                Block::Dense(DenseBlock::from_vec(r, cc, data).map_err(CoreError::Matrix)?)
            }
            1 => {
                let r = c.u32()? as usize;
                let cc = c.u32()? as usize;
                let nnz = c.u32()? as usize;
                let mut col_ptr = Vec::with_capacity(cc + 1);
                for _ in 0..cc + 1 {
                    col_ptr.push(c.u32()?);
                }
                let mut row_idx = Vec::with_capacity(nnz);
                for _ in 0..nnz {
                    row_idx.push(c.u32()?);
                }
                let mut values = Vec::with_capacity(nnz);
                for _ in 0..nnz {
                    values.push(f64::from_bits(c.u64()?));
                }
                Block::Sparse(
                    CscBlock::from_csc(r, cc, col_ptr, row_idx, values)
                        .map_err(CoreError::Matrix)?,
                )
            }
            other => return Err(CoreError::Disk(format!("unknown tile kind {other}"))),
        };
        tiles.push((owner, bi, bj, Arc::new(tile)));
    }
    if c.pos != payload.len() {
        return Err(CoreError::Disk(
            "trailing bytes after matrix payload".into(),
        ));
    }
    DistMatrix::from_placed_tiles(rows, cols, block, scheme, workers, tiles)
        .map_err(CoreError::Cluster)
}

// ---------------------------------------------------------------------------
// Manifests
// ---------------------------------------------------------------------------

/// One named matrix recorded in a snapshot manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Store name of the matrix.
    pub name: String,
    /// Content address of its blob (16 hex chars).
    pub hash: String,
    /// Payload byte length (re-verified against the blob on load).
    pub bytes: u64,
    /// Logical RAM bytes of the matrix (store accounting on recovery).
    pub logical_bytes: u64,
    /// Partition scheme, so `scheme_of` works without loading the blob
    /// (plan-cache keys depend on it).
    pub scheme: PartitionScheme,
}

/// A parsed snapshot manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Monotonic snapshot sequence number.
    pub seq: u64,
    /// `"spill"` or `"checkpoint"` (informational).
    pub kind: String,
    /// Phase (iteration) tag the snapshot was taken at.
    pub phase: u64,
    /// The snapshot's members.
    pub entries: Vec<ManifestEntry>,
}

fn escape_name(name: &str) -> String {
    let mut s = String::with_capacity(name.len());
    for ch in name.chars() {
        match ch {
            '%' => s.push_str("%25"),
            ' ' => s.push_str("%20"),
            '\n' => s.push_str("%0A"),
            '\r' => s.push_str("%0D"),
            '\t' => s.push_str("%09"),
            c => s.push(c),
        }
    }
    s
}

fn unescape_name(escaped: &str) -> Result<String> {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(ch) = chars.next() {
        if ch != '%' {
            out.push(ch);
            continue;
        }
        let hi = chars.next();
        let lo = chars.next();
        let (Some(hi), Some(lo)) = (hi, lo) else {
            return Err(CoreError::Disk("truncated name escape".into()));
        };
        let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16)
            .map_err(|e| disk_err("bad name escape", e))?;
        out.push(byte as char);
    }
    Ok(out)
}

fn render_manifest(m: &Manifest) -> String {
    let mut s = String::new();
    s.push_str(MANIFEST_MAGIC);
    s.push('\n');
    s.push_str(&format!("seq {}\n", m.seq));
    s.push_str(&format!("kind {}\n", m.kind));
    s.push_str(&format!("phase {}\n", m.phase));
    for e in &m.entries {
        s.push_str(&format!(
            "entry {} {} {} {} {}\n",
            escape_name(&e.name),
            e.hash,
            e.bytes,
            e.logical_bytes,
            e.scheme
        ));
    }
    s
}

fn parse_scheme(s: &str) -> Result<PartitionScheme> {
    for cand in [
        PartitionScheme::Row,
        PartitionScheme::Col,
        PartitionScheme::Hash,
        PartitionScheme::Broadcast,
    ] {
        if cand.to_string() == s {
            return Ok(cand);
        }
    }
    Err(CoreError::Disk(format!("unknown scheme '{s}'")))
}

fn parse_manifest(text: &str) -> Result<Manifest> {
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(CoreError::Disk("bad manifest header".into()));
    }
    let mut seq = None;
    let mut kind = None;
    let mut phase = None;
    let mut entries = Vec::new();
    for line in lines {
        let mut parts = line.split(' ');
        match parts.next() {
            Some("seq") => {
                seq = Some(
                    parts
                        .next()
                        .ok_or_else(|| CoreError::Disk("manifest seq missing".into()))?
                        .parse::<u64>()
                        .map_err(|e| disk_err("manifest seq", e))?,
                );
            }
            Some("kind") => kind = parts.next().map(str::to_string),
            Some("phase") => {
                phase = Some(
                    parts
                        .next()
                        .ok_or_else(|| CoreError::Disk("manifest phase missing".into()))?
                        .parse::<u64>()
                        .map_err(|e| disk_err("manifest phase", e))?,
                );
            }
            Some("entry") => {
                let fields: Vec<&str> = parts.collect();
                if fields.len() != 5 {
                    return Err(CoreError::Disk(format!(
                        "manifest entry has {} fields, want 5",
                        fields.len()
                    )));
                }
                entries.push(ManifestEntry {
                    name: unescape_name(fields[0])?,
                    hash: fields[1].to_string(),
                    bytes: fields[2].parse().map_err(|e| disk_err("entry bytes", e))?,
                    logical_bytes: fields[3]
                        .parse()
                        .map_err(|e| disk_err("entry logical bytes", e))?,
                    scheme: parse_scheme(fields[4])?,
                });
            }
            Some("") | None => {}
            Some(other) => {
                return Err(CoreError::Disk(format!("unknown manifest line '{other}'")));
            }
        }
    }
    Ok(Manifest {
        seq: seq.ok_or_else(|| CoreError::Disk("manifest missing seq".into()))?,
        kind: kind.ok_or_else(|| CoreError::Disk("manifest missing kind".into()))?,
        phase: phase.ok_or_else(|| CoreError::Disk("manifest missing phase".into()))?,
        entries,
    })
}

// ---------------------------------------------------------------------------
// The tier
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct CrashState {
    point: Option<CrashPoint>,
    at: usize,
    count: usize,
    fired: bool,
}

/// Outcome of a [`DiskTier::compact`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Unreferenced blob files deleted.
    pub removed_blobs: usize,
    /// Superseded manifest files deleted.
    pub removed_manifests: usize,
}

/// Handle to one durable data directory. Cheap to share behind the
/// store's mutex; all methods take `&self`.
#[derive(Debug)]
pub struct DiskTier {
    root: PathBuf,
    crash: Mutex<CrashState>,
}

impl DiskTier {
    /// Open (creating if needed) a data directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<DiskTier> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(root.join("blocks")).map_err(|e| disk_err("create blocks dir", e))?;
        fs::create_dir_all(root.join("plans")).map_err(|e| disk_err("create plans dir", e))?;
        Ok(DiskTier {
            root,
            crash: Mutex::new(CrashState::default()),
        })
    }

    /// The data directory this tier writes into.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Arm the deterministic crash injector from a [`FaultPlan`]
    /// (`crash_point` / `crash_at`). One-shot, like PR 1's stage kill.
    pub fn arm_crashes(&self, plan: &FaultPlan) {
        let mut g = self.crash.lock().unwrap();
        g.point = plan.crash_point;
        g.at = plan.crash_at;
        g.count = 0;
        g.fired = false;
    }

    /// Does the armed crash fire at this crossing of `point`?
    fn crash_fires(&self, point: CrashPoint) -> bool {
        let mut g = self.crash.lock().unwrap();
        if g.fired || g.point != Some(point) {
            return false;
        }
        let n = g.count;
        g.count += 1;
        if n == g.at {
            g.fired = true;
            return true;
        }
        false
    }

    fn crash_check(&self, point: CrashPoint) -> Result<()> {
        if self.crash_fires(point) {
            return Err(CoreError::InjectedCrash(point));
        }
        Ok(())
    }

    fn blob_path(&self, hash: &str) -> PathBuf {
        self.root.join("blocks").join(format!("{hash}.blk"))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp).map_err(|e| disk_err("create temp file", e))?;
            f.write_all(bytes)
                .map_err(|e| disk_err("write temp file", e))?;
            f.sync_all().map_err(|e| disk_err("sync temp file", e))?;
        }
        fs::rename(&tmp, path).map_err(|e| disk_err("rename into place", e))
    }

    /// Write `payload` as a content-addressed blob; returns its hash.
    /// Idempotent: an existing verified blob is reused without writing.
    pub fn put_blob(&self, payload: &[u8]) -> Result<String> {
        self.crash_check(CrashPoint::BeforeBlobWrite)?;
        let hash = format!("{:016x}", fnv1a_bytes(payload));
        let path = self.blob_path(&hash);
        if self
            .read_blob_file(&path, Some(payload.len() as u64))
            .is_ok()
        {
            return Ok(hash);
        }
        let mut framed = Vec::with_capacity(payload.len() + 20);
        framed.extend_from_slice(BLOB_MAGIC);
        framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        framed.extend_from_slice(payload);
        framed.extend_from_slice(&fnv1a_bytes(payload).to_le_bytes());
        if self.crash_fires(CrashPoint::MidBlobWrite) {
            // Model a filesystem that loses the tail: the final name
            // exists but holds only half the frame.
            let torn = &framed[..framed.len() / 2];
            fs::write(&path, torn).map_err(|e| disk_err("torn write", e))?;
            return Err(CoreError::InjectedCrash(CrashPoint::MidBlobWrite));
        }
        self.write_atomic(&path, &framed)?;
        Ok(hash)
    }

    fn read_blob_file(&self, path: &Path, expect_len: Option<u64>) -> Result<Vec<u8>> {
        let framed = fs::read(path).map_err(|e| disk_err("read blob", e))?;
        if framed.len() < BLOB_MAGIC.len() + 16 || &framed[..BLOB_MAGIC.len()] != BLOB_MAGIC {
            return Err(CoreError::Disk("blob magic missing or file torn".into()));
        }
        let len = u64::from_le_bytes(framed[6..14].try_into().unwrap()) as usize;
        let body_end = 14usize
            .checked_add(len)
            .ok_or_else(|| CoreError::Disk("blob length overflow".into()))?;
        if framed.len() != body_end + 8 {
            return Err(CoreError::Disk(format!(
                "blob truncated: header says {len} payload bytes, file holds {}",
                framed.len().saturating_sub(22)
            )));
        }
        let payload = &framed[14..body_end];
        let sum = u64::from_le_bytes(framed[body_end..].try_into().unwrap());
        if fnv1a_bytes(payload) != sum {
            return Err(CoreError::Disk("blob checksum mismatch".into()));
        }
        if let Some(expect) = expect_len {
            if payload.len() as u64 != expect {
                return Err(CoreError::Disk(format!(
                    "blob payload is {} bytes, manifest says {expect}",
                    payload.len()
                )));
            }
        }
        Ok(payload.to_vec())
    }

    /// Read and verify a blob's payload.
    pub fn get_blob(&self, hash: &str) -> Result<Vec<u8>> {
        self.read_blob_file(&self.blob_path(hash), None)
    }

    /// Does `hash` exist on disk with an intact frame of `bytes` payload?
    pub fn verify_blob(&self, hash: &str, bytes: u64) -> bool {
        self.read_blob_file(&self.blob_path(hash), Some(bytes))
            .is_ok()
    }

    fn manifest_name(seq: u64) -> String {
        format!("manifest-{seq:06}.txt")
    }

    fn manifest_seqs(&self) -> Vec<u64> {
        let mut seqs = Vec::new();
        if let Ok(rd) = fs::read_dir(&self.root) {
            for entry in rd.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(rest) = name
                    .strip_prefix("manifest-")
                    .and_then(|r| r.strip_suffix(".txt"))
                {
                    if let Ok(seq) = rest.parse::<u64>() {
                        seqs.push(seq);
                    }
                }
            }
        }
        seqs.sort_unstable();
        seqs
    }

    /// Publish a snapshot: write `manifest-<seq>.txt`, then swap
    /// `CURRENT` to it. Returns the new sequence number.
    pub fn publish(&self, kind: &str, phase: u64, entries: Vec<ManifestEntry>) -> Result<u64> {
        self.crash_check(CrashPoint::BeforeManifestPublish)?;
        let seq = self.manifest_seqs().last().copied().unwrap_or(0) + 1;
        let manifest = Manifest {
            seq,
            kind: kind.to_string(),
            phase,
            entries,
        };
        let body = render_manifest(&manifest);
        let path = self.root.join(Self::manifest_name(seq));
        if self.crash_fires(CrashPoint::MidManifestWrite) {
            let torn = &body.as_bytes()[..body.len() / 2];
            fs::write(&path, torn).map_err(|e| disk_err("torn manifest write", e))?;
            return Err(CoreError::InjectedCrash(CrashPoint::MidManifestWrite));
        }
        self.write_atomic(&path, body.as_bytes())?;
        self.crash_check(CrashPoint::BeforeCurrentSwap)?;
        let current = format!(
            "{} {:016x}\n",
            Self::manifest_name(seq),
            fnv1a_bytes(body.as_bytes())
        );
        self.write_atomic(&self.root.join("CURRENT"), current.as_bytes())?;
        Ok(seq)
    }

    fn read_manifest_file(&self, name: &str, expect_sum: Option<u64>) -> Result<Manifest> {
        let body = fs::read(self.root.join(name)).map_err(|e| disk_err("read manifest", e))?;
        if let Some(sum) = expect_sum {
            if fnv1a_bytes(&body) != sum {
                return Err(CoreError::Disk(format!(
                    "manifest {name} checksum mismatch"
                )));
            }
        }
        let text = String::from_utf8(body).map_err(|e| disk_err("manifest utf8", e))?;
        parse_manifest(&text)
    }

    /// A manifest is *usable* only when the file itself parses and every
    /// blob it references verifies (exists, intact frame, length match).
    fn manifest_usable(&self, m: &Manifest) -> bool {
        m.entries.iter().all(|e| self.verify_blob(&e.hash, e.bytes))
    }

    /// Load the latest fully-valid snapshot: first the one `CURRENT`
    /// points at, then earlier manifests by descending sequence. A torn
    /// or corrupt candidate (bad checksum anywhere in its closure) is
    /// skipped — paranoid recovery never trusts unverified bytes.
    /// `Ok(None)` means no usable snapshot exists (fall back to lineage).
    pub fn load_latest(&self) -> Result<Option<Manifest>> {
        self.crash_check(CrashPoint::MidRecovery)?;
        let mut tried: HashSet<String> = HashSet::new();
        if let Ok(current) = fs::read_to_string(self.root.join("CURRENT")) {
            let mut parts = current.split_whitespace();
            if let (Some(name), Some(sum)) = (parts.next(), parts.next()) {
                tried.insert(name.to_string());
                if let Ok(sum) = u64::from_str_radix(sum, 16) {
                    if let Ok(m) = self.read_manifest_file(name, Some(sum)) {
                        if self.manifest_usable(&m) {
                            return Ok(Some(m));
                        }
                    }
                }
            }
        }
        for seq in self.manifest_seqs().into_iter().rev() {
            let name = Self::manifest_name(seq);
            if tried.contains(&name) {
                continue;
            }
            if let Ok(m) = self.read_manifest_file(&name, None) {
                if self.manifest_usable(&m) {
                    return Ok(Some(m));
                }
            }
        }
        Ok(None)
    }

    /// Delete unreferenced blob files and manifests older than
    /// `keep_from_seq`. A blob is *referenced* when any surviving
    /// manifest (seq ≥ `keep_from_seq`) lists it, or when the caller
    /// names it in `extra_referenced` (live spilled entries not yet in a
    /// snapshot). Safe at any point: only unreachable garbage is
    /// touched, so a crash mid-compaction merely leaves some garbage for
    /// the next pass.
    pub fn compact(
        &self,
        extra_referenced: &HashSet<String>,
        keep_from_seq: u64,
    ) -> Result<CompactionReport> {
        let mut referenced = extra_referenced.clone();
        for seq in self.manifest_seqs() {
            if seq >= keep_from_seq {
                if let Ok(m) = self.read_manifest_file(&Self::manifest_name(seq), None) {
                    for e in &m.entries {
                        referenced.insert(e.hash.clone());
                    }
                }
            }
        }
        let referenced = referenced;
        let mut report = CompactionReport::default();
        let blocks = self.root.join("blocks");
        let mut garbage: Vec<PathBuf> = Vec::new();
        if let Ok(rd) = fs::read_dir(&blocks) {
            for entry in rd.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy().to_string();
                let hash = name.strip_suffix(".blk").unwrap_or(&name);
                let keep = name.ends_with(".blk") && referenced.contains(hash);
                if !keep {
                    garbage.push(entry.path());
                }
            }
        }
        garbage.sort();
        for path in garbage {
            self.crash_check(CrashPoint::MidCompaction)?;
            if fs::remove_file(&path).is_ok() {
                report.removed_blobs += 1;
            }
        }
        for seq in self.manifest_seqs() {
            if seq < keep_from_seq {
                self.crash_check(CrashPoint::MidCompaction)?;
                if fs::remove_file(self.root.join(Self::manifest_name(seq))).is_ok() {
                    report.removed_manifests += 1;
                }
            }
        }
        self.crash_check(CrashPoint::AfterCompaction)?;
        Ok(report)
    }

    // -- plan-cache persistence (dmac-served restart warm-up) ------------

    /// Persist a submitted script so a restarted server can re-plan it
    /// (the plan cache is recovered by *re-preparing*, not by
    /// serialising plans — planning is deterministic).
    pub fn put_plan(&self, fingerprint: u64, script: &str) -> Result<()> {
        let body = format!(
            "{PLAN_MAGIC} {:016x}\n{script}",
            fnv1a_bytes(script.as_bytes())
        );
        let path = self
            .root
            .join("plans")
            .join(format!("{fingerprint:016x}.dml"));
        self.write_atomic(&path, body.as_bytes())
    }

    /// Every intact persisted script, sorted by file name (deterministic
    /// warm-up order). Corrupt files are skipped, not fatal.
    pub fn list_plans(&self) -> Vec<String> {
        let mut files: Vec<PathBuf> = Vec::new();
        if let Ok(rd) = fs::read_dir(self.root.join("plans")) {
            for entry in rd.flatten() {
                if entry.path().extension().is_some_and(|e| e == "dml") {
                    files.push(entry.path());
                }
            }
        }
        files.sort();
        let mut scripts = Vec::new();
        for path in files {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let Some((header, script)) = text.split_once('\n') else {
                continue;
            };
            let Some(sum) = header.strip_prefix(PLAN_MAGIC).map(str::trim) else {
                continue;
            };
            let Ok(sum) = u64::from_str_radix(sum, 16) else {
                continue;
            };
            if fnv1a_bytes(script.as_bytes()) == sum {
                scripts.push(script.to_string());
            }
        }
        scripts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmac_matrix::BlockedMatrix;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    pub(crate) fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!("dmac-disk-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn dense(rows: usize, cols: usize) -> BlockedMatrix {
        BlockedMatrix::from_fn(rows, cols, 4, |i, j| (i * cols + j) as f64 * 0.5 - 3.0).unwrap()
    }

    fn sparse(rows: usize, cols: usize) -> BlockedMatrix {
        BlockedMatrix::from_triplets(
            rows,
            cols,
            4,
            vec![(0, 0, 1.5), (rows - 1, cols - 1, -2.0), (1, 2, 0.25)],
        )
        .unwrap()
    }

    #[test]
    fn codec_roundtrips_every_scheme_exactly() {
        for scheme in [
            PartitionScheme::Row,
            PartitionScheme::Col,
            PartitionScheme::Hash,
            PartitionScheme::Broadcast,
        ] {
            for m in [dense(10, 6), sparse(10, 6)] {
                let d = DistMatrix::from_blocked(&m, scheme, 3);
                let back = decode_dist(&encode_dist(&d)).unwrap();
                assert_eq!(back.scheme(), scheme);
                assert_eq!(back.workers(), 3);
                // Bit-for-bit data and identical physical placement.
                assert_eq!(back.to_blocked().unwrap().to_dense(), m.to_dense());
                for w in 0..3 {
                    let mut a: Vec<_> = d.worker_blocks(w).keys().copied().collect();
                    let mut b: Vec<_> = back.worker_blocks(w).keys().copied().collect();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "placement drifted on worker {w}");
                }
            }
        }
    }

    #[test]
    fn codec_rejects_corruption() {
        let d = DistMatrix::from_blocked(&dense(8, 8), PartitionScheme::Row, 2);
        let mut bytes = encode_dist(&d);
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(decode_dist(&bytes), Err(CoreError::Disk(_))));
        assert!(decode_dist(b"garbage").is_err());
    }

    #[test]
    fn blob_roundtrip_and_content_addressing() {
        let tier = DiskTier::open(temp_dir("blob")).unwrap();
        let h1 = tier.put_blob(b"hello world").unwrap();
        let h2 = tier.put_blob(b"hello world").unwrap();
        assert_eq!(h1, h2, "same content, same address");
        assert_eq!(tier.get_blob(&h1).unwrap(), b"hello world");
        assert!(tier.verify_blob(&h1, 11));
        assert!(!tier.verify_blob(&h1, 12), "length mismatch detected");
        assert!(tier.get_blob("doesnotexist").is_err());
    }

    #[test]
    fn torn_and_corrupt_blobs_are_detected() {
        let tier = DiskTier::open(temp_dir("torn")).unwrap();
        let h = tier.put_blob(b"payload-bytes").unwrap();
        let path = tier.blob_path(&h);
        // Truncate.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 4]).unwrap();
        assert!(matches!(tier.get_blob(&h), Err(CoreError::Disk(_))));
        // Flip a payload byte (length intact, checksum wrong).
        let mut flipped = full.clone();
        flipped[BLOB_MAGIC.len() + 8 + 2] ^= 0xFF;
        fs::write(&path, &flipped).unwrap();
        let err = tier.get_blob(&h).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn publish_swaps_current_and_survives_reload() {
        let tier = DiskTier::open(temp_dir("pub")).unwrap();
        let h = tier.put_blob(b"abc").unwrap();
        let entry = ManifestEntry {
            name: "weird name %\n".into(),
            hash: h.clone(),
            bytes: 3,
            logical_bytes: 100,
            scheme: PartitionScheme::Row,
        };
        let seq1 = tier.publish("checkpoint", 1, vec![entry.clone()]).unwrap();
        let seq2 = tier.publish("checkpoint", 2, vec![entry.clone()]).unwrap();
        assert!(seq2 > seq1);
        let m = tier.load_latest().unwrap().unwrap();
        assert_eq!(m.seq, seq2);
        assert_eq!(m.phase, 2);
        assert_eq!(m.entries, vec![entry]);
    }

    #[test]
    fn corrupt_current_falls_back_to_prior_manifest() {
        let tier = DiskTier::open(temp_dir("fallback")).unwrap();
        let h = tier.put_blob(b"abc").unwrap();
        let entry = |phase: u64| ManifestEntry {
            name: format!("m{phase}"),
            hash: h.clone(),
            bytes: 3,
            logical_bytes: 1,
            scheme: PartitionScheme::Hash,
        };
        tier.publish("checkpoint", 1, vec![entry(1)]).unwrap();
        let seq2 = tier.publish("checkpoint", 2, vec![entry(2)]).unwrap();
        // Tear the newest manifest: recovery must fall back to seq 1.
        let path = tier.root().join(DiskTier::manifest_name(seq2));
        let body = fs::read(&path).unwrap();
        fs::write(&path, &body[..body.len() / 2]).unwrap();
        let m = tier.load_latest().unwrap().unwrap();
        assert_eq!(m.phase, 1, "fell back to the last valid snapshot");
        // With every manifest gone, recovery reports "nothing usable".
        fs::remove_file(tier.root().join(DiskTier::manifest_name(1))).unwrap();
        fs::remove_file(&path).unwrap();
        assert!(tier.load_latest().unwrap().is_none());
    }

    #[test]
    fn missing_blob_invalidates_the_snapshot() {
        let tier = DiskTier::open(temp_dir("missing")).unwrap();
        let h = tier.put_blob(b"abc").unwrap();
        tier.publish(
            "checkpoint",
            1,
            vec![ManifestEntry {
                name: "m".into(),
                hash: h.clone(),
                bytes: 3,
                logical_bytes: 1,
                scheme: PartitionScheme::Row,
            }],
        )
        .unwrap();
        fs::remove_file(tier.blob_path(&h)).unwrap();
        assert!(tier.load_latest().unwrap().is_none());
    }

    #[test]
    fn compaction_removes_only_garbage() {
        let tier = DiskTier::open(temp_dir("compact")).unwrap();
        let keep = tier.put_blob(b"keep me").unwrap();
        let drop1 = tier.put_blob(b"garbage 1").unwrap();
        let drop2 = tier.put_blob(b"garbage 2").unwrap();
        tier.publish("checkpoint", 1, vec![]).unwrap();
        tier.publish("checkpoint", 2, vec![]).unwrap();
        let seq3 = tier.publish("checkpoint", 3, vec![]).unwrap();
        let referenced: HashSet<String> = [keep.clone()].into();
        let report = tier.compact(&referenced, seq3 - 1).unwrap();
        assert_eq!(report.removed_blobs, 2);
        assert_eq!(report.removed_manifests, 1);
        assert!(tier.get_blob(&keep).is_ok());
        assert!(tier.get_blob(&drop1).is_err());
        assert!(tier.get_blob(&drop2).is_err());
        assert_eq!(tier.load_latest().unwrap().unwrap().seq, seq3);
    }

    #[test]
    fn crash_injector_is_deterministic_and_one_shot() {
        let tier = DiskTier::open(temp_dir("crash")).unwrap();
        tier.arm_crashes(&FaultPlan::crash(CrashPoint::BeforeBlobWrite, 1));
        assert!(tier.put_blob(b"first").is_ok(), "occurrence 0 passes");
        let err = tier.put_blob(b"second").unwrap_err();
        assert!(matches!(
            err,
            CoreError::InjectedCrash(CrashPoint::BeforeBlobWrite)
        ));
        // One-shot: the "restarted process" proceeds normally.
        assert!(tier.put_blob(b"second").is_ok());
    }

    #[test]
    fn mid_blob_crash_leaves_a_detectable_torn_file() {
        let tier = DiskTier::open(temp_dir("midblob")).unwrap();
        tier.arm_crashes(&FaultPlan::crash(CrashPoint::MidBlobWrite, 0));
        let err = tier.put_blob(b"some payload that gets torn").unwrap_err();
        assert!(matches!(err, CoreError::InjectedCrash(_)));
        let hash = format!("{:016x}", fnv1a_bytes(b"some payload that gets torn"));
        // The torn file exists under the final name but never verifies.
        assert!(tier.blob_path(&hash).exists());
        assert!(tier.get_blob(&hash).is_err());
        // A rewrite (post-restart) heals it in place.
        tier.arm_crashes(&FaultPlan::none());
        tier.put_blob(b"some payload that gets torn").unwrap();
        assert!(tier.get_blob(&hash).is_ok());
    }

    #[test]
    fn plan_persistence_roundtrips_and_skips_corruption() {
        let tier = DiskTier::open(temp_dir("plans")).unwrap();
        tier.put_plan(1, "A = random(A, 8, 8)\noutput(A)\n")
            .unwrap();
        tier.put_plan(2, "B = random(B, 4, 4)\noutput(B)\n")
            .unwrap();
        let scripts = tier.list_plans();
        assert_eq!(scripts.len(), 2);
        assert!(scripts[0].contains("random"));
        // Corrupt one: it is skipped, the other survives.
        let path = tier.root().join("plans").join(format!("{:016x}.dml", 1u64));
        fs::write(&path, "dmac-plan v1 0000000000000000\ntampered").unwrap();
        assert_eq!(tier.list_plans().len(), 1);
    }

    #[test]
    fn name_escaping_roundtrips() {
        for name in ["plain", "has space", "pct%20", "nl\nname", "tab\tname"] {
            assert_eq!(unescape_name(&escape_name(name)).unwrap(), name);
            assert!(!escape_name(name).contains(' '));
            assert!(!escape_name(name).contains('\n'));
        }
    }
}
