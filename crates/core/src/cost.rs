//! The dependency-oriented cost model (paper §4.1).
//!
//! For an input event `In(A, p, op)`, three situations matter:
//!
//! 1. a Non-Communication dependency satisfies it → cost `0`;
//! 2. a Partition / Transpose-Partition dependency is needed → cost `|A|`;
//! 3. a Broadcast / Transpose-Broadcast dependency is needed → cost
//!    `N·|A|`, `N` the number of workers.
//!
//! The output event of a strategy costs `N·|A|` for CPMM and `0` otherwise.
//!
//! `|A|` — the byte size fed into these formulas — comes in two flavours,
//! chosen by [`crate::planner::PlannerConfig::density_adaptive`]:
//!
//! * **predicted-nnz bytes** (the default): `8 · nnz` of the matrix's
//!   propagated [`dmac_stats::SparsityProfile`]. Sparse tiles already
//!   ship CSC-sized payloads on the wire; this makes the planner price
//!   what the wire will actually carry.
//! * **worst-case static bytes**: [`dmac_lang::infer::MatrixStats::est_bytes`]
//!   = `ceil(rows · cols · sparsity · 8)` — the paper's original Table-2
//!   pricing.
//!
//! A dense matrix has `nnz = rows · cols`, so the dense formulas are
//! exactly the `density = 1.0` special case of the nnz pricing: both
//! flavours produce byte-identical costs on dense inputs. The model
//! itself is agnostic — it takes `size_bytes` and applies the §4.1
//! event rules.

use dmac_cluster::PartitionScheme;

use crate::strategy::Strategy;

/// The cost model, parameterised by the cluster size `N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Number of workers (the paper's `N`).
    pub workers: u64,
}

impl CostModel {
    /// Model for an `N`-worker cluster.
    pub fn new(workers: usize) -> CostModel {
        CostModel {
            workers: workers as u64,
        }
    }

    /// Cost of an input event requiring scheme `req` on a matrix of
    /// estimated size `size_bytes`, given whether a non-communication
    /// dependency can satisfy it (`free`).
    pub fn input_cost(&self, req: PartitionScheme, free: bool, size_bytes: u64) -> u64 {
        if free {
            return 0;
        }
        match req {
            PartitionScheme::Row | PartitionScheme::Col => size_bytes,
            PartitionScheme::Broadcast => self.workers * size_bytes,
            // A Hash requirement never occurs (it is a storage state).
            PartitionScheme::Hash => 0,
        }
    }

    /// Cost of a strategy's output event for an output of estimated size
    /// `out_bytes`.
    pub fn output_cost(&self, strategy: Strategy, out_bytes: u64) -> u64 {
        if strategy.output_communicates() {
            self.workers * out_bytes
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_situations_of_section_4_1() {
        let m = CostModel::new(4);
        // Situation 1: non-communication dependency
        assert_eq!(m.input_cost(PartitionScheme::Row, true, 1000), 0);
        assert_eq!(m.input_cost(PartitionScheme::Broadcast, true, 1000), 0);
        // Situation 2: (transpose-)partition
        assert_eq!(m.input_cost(PartitionScheme::Row, false, 1000), 1000);
        assert_eq!(m.input_cost(PartitionScheme::Col, false, 1000), 1000);
        // Situation 3: (transpose-)broadcast
        assert_eq!(m.input_cost(PartitionScheme::Broadcast, false, 1000), 4000);
    }

    #[test]
    fn cpmm_output_costs_n_times_size() {
        let m = CostModel::new(5);
        assert_eq!(m.output_cost(Strategy::Cpmm, 100), 500);
        assert_eq!(m.output_cost(Strategy::Rmm1, 100), 0);
        assert_eq!(m.output_cost(Strategy::Rmm2, 100), 0);
        assert_eq!(
            m.output_cost(Strategy::CellAligned(PartitionScheme::Row), 100),
            0
        );
    }
}
