//! Bridging sparsity profiles onto cluster-resident matrices.
//!
//! [`SparsityProfile::measure`] works on a local `BlockedMatrix`;
//! session inputs live as [`DistMatrix`] shards (possibly replicated by
//! a broadcast scheme), so this module measures profiles directly from
//! the distributed representation, deduplicating tiles by grid
//! coordinate.

use std::collections::HashSet;

use dmac_cluster::dist::DistMatrix;
use dmac_stats::SparsityProfile;

/// Measure the exact sparsity profile of a distributed matrix. Tiles
/// replicated across workers (broadcast schemes) are counted once.
pub fn measure_dist(m: &DistMatrix) -> SparsityProfile {
    let mut p = SparsityProfile::empty(m.rows(), m.cols(), m.block_size());
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    for w in 0..m.workers() {
        for (&(bi, bj), block) in m.worker_blocks(w) {
            if !seen.insert((bi, bj)) {
                continue;
            }
            let n = block.nnz() as u64;
            p.nnz += n;
            p.row_nnz[bi] += n as f64;
            p.col_nnz[bj] += n as f64;
        }
    }
    p.nnz = p.nnz.min(m.rows() as u64 * m.cols() as u64);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmac_cluster::partition::PartitionScheme;
    use dmac_matrix::BlockedMatrix;

    #[test]
    fn dist_measure_matches_local_measure_and_dedups_broadcast() {
        let m = BlockedMatrix::from_fn(20, 12, 4, |i, j| {
            if (i + j) % 3 == 0 {
                (i * 12 + j) as f64
            } else {
                0.0
            }
        })
        .unwrap();
        let local = SparsityProfile::measure(&m);
        for scheme in [
            PartitionScheme::Row,
            PartitionScheme::Broadcast,
            PartitionScheme::Hash,
        ] {
            let d = DistMatrix::from_blocked(&m, scheme, 4);
            assert_eq!(measure_dist(&d), local, "scheme {scheme:?}");
        }
    }
}
