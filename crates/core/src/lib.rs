//! # dmac-core — matrix-dependency analysis, planning, and execution
//!
//! This crate is the reproduction of the DMac paper's primary contribution:
//!
//! * [`event`] — input/output *events* (`In(A, p, op)` / `Out(A, p, op)`),
//!   the vocabulary of §3.
//! * [`dependency`] — the matrix-dependency classifier: Definition 1 and
//!   the eight dependency types of Table 2, split into communication and
//!   non-communication categories.
//! * [`cost`] — the dependency-oriented cost model of §4.1: input events
//!   cost `0`, `|A|`, or `N·|A|`; a CPMM output event costs `N·|A|`.
//! * [`strategy`] — the candidate execution strategies per operator
//!   (RMM1 / RMM2 / CPMM for multiplication, scheme-aligned strategies for
//!   cell-wise and unary operators).
//! * [`plan`] — the execution plan: compute steps plus the five extended
//!   operators (`partition`, `broadcast`, `transpose`, `reference`,
//!   `extract`) of §4.2.1.
//! * [`planner`] — Algorithm 1 with Heuristic 1 (Pull-Up Broadcast) and
//!   Heuristic 2 (Re-assignment).
//! * [`liveness`] — static live-range analysis over the finished plan:
//!   explicit `free` steps at each intermediate's last use and the
//!   [`plan::MemoryCertificate`] bounding per-step resident bytes.
//! * [`stage`] — the traverse-based stage scheduler of §5.2: the plan is
//!   split into un-interleaved stages whose boundaries are exactly the
//!   communication operators.
//! * [`engine`] — executes a staged plan on the simulated cluster,
//!   reporting per-phase compute/communication statistics.
//! * [`trace`] — the execution flight recorder: low-level cluster spans
//!   merged into a per-step [`Trace`] whose measured bytes are diffed
//!   against the planner's Table 2 predictions (`Trace::conformance`),
//!   exportable as chrome://tracing JSON.
//! * [`recovery`] — lineage-based stage recovery: worker losses are
//!   survived by decommissioning the host, remapping its logical workers,
//!   and deterministically replaying the producing stages of lost state.
//! * [`disk`] — the durable tier under the store: content-addressed
//!   checksummed blob files, snapshot manifests with an atomically-swapped
//!   `CURRENT` pointer, compaction, and a deterministic crash injector for
//!   every durability boundary.
//! * [`baselines`] — the systems DMac is compared against: SystemML-S
//!   (same runtime, dependency-blind planner), single-node R, and the
//!   ScaLAPACK / SciDB simulators used for Table 4.
//! * [`session`] — the user-facing facade tying everything together.

#![forbid(unsafe_code)]

pub mod baselines;
pub mod cost;
pub mod dependency;
pub mod disk;
pub mod engine;
pub mod error;
pub mod event;
pub mod json;
pub mod liveness;
pub mod plan;
pub mod planner;
pub mod profile;
pub mod recovery;
pub mod session;
pub mod stage;
pub mod store;
pub mod strategy;
pub mod trace;
pub mod verifyhook;

pub use disk::{CompactionReport, DiskTier, Manifest, ManifestEntry};
pub use dmac_stats::{DensityClass, SparsityProfile};
pub use error::{CoreError, Result};
pub use recovery::{RecoveryPolicy, RecoveryStats};
pub use session::Session;
pub use store::{SharedStore, StoreStats};
pub use trace::{Conformance, SpillTraffic, StepTrace, Trace};
