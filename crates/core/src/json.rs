//! Re-export of the workspace-shared JSON encoder.
//!
//! The encoder originated here and moved to `dmac_cluster::json` so the
//! cluster's real transport backend (the lowest layer that emits wire
//! JSON) can use it without a dependency cycle. Everything that imported
//! `dmac_core::json` keeps working through this shim.

pub use dmac_cluster::json::*;
