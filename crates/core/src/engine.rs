//! Plan execution on the simulated cluster (paper §5.2–§5.3).
//!
//! The engine walks the staged plan in order, mapping each step onto the
//! cluster primitives of `dmac-cluster`:
//!
//! | plan step | runtime |
//! |---|---|
//! | `partition` | metered all-to-all shuffle |
//! | `broadcast` | metered one-to-all replication |
//! | `transpose` / `extract` / `reference` | local (free) |
//! | `compute` RMM1/RMM2 | communication-free local multiply |
//! | `compute` CPMM | per-worker partials + metered output shuffle |
//! | `compute` cell-wise / unary | scheme-aligned local work |
//! | `compute` reduce | local partials + driver combine |
//!
//! Around every step the engine snapshots the cluster's byte meter and
//! simulated clock, attributing the deltas to the step's *phase* (the
//! iteration tag), which yields the per-iteration accumulated curves of
//! Figure 6.
//!
//! ## Fault tolerance
//!
//! Every step executes under an attempt loop. When a step fails with
//! [`WorkerLost`](dmac_cluster::ClusterError::WorkerLost) — whether the
//! host died at a stage boundary, at primitive entry, or mid-replay — the
//! engine hands the failure to [`crate::recovery`]: the host is
//! decommissioned, lost state is rebuilt through plan lineage, and the
//! step is re-executed, all without caller intervention. Each loss
//! consumes one attempt from the [`RecoveryPolicy`] budget; exhausting it
//! surfaces the typed [`CoreError::RecoveryExhausted`]. The bytes and
//! simulated seconds spent on failed attempts and recovery are excluded
//! from the per-phase curves and reported separately in
//! [`ExecReport::recovery`] (they *are* included in the report's total
//! clock and ledger — failures cost real time).

use std::collections::HashMap;
use std::time::Instant;

use dmac_cluster::cluster::{CellOp, ReduceKind};
use dmac_cluster::{
    Cluster, ClusterError, CommStats, DistMatrix, PartitionScheme, SimClock, UnaryTileOp,
};
use dmac_lang::{BinOp, MatrixId, MatrixOrigin, OpKind, Program, ReduceOp, ScalarId, UnaryOp};
use dmac_matrix::BlockedMatrix;

use crate::error::{CoreError, Result};
use crate::plan::{FusedInstr, Plan, PlanStep};
use crate::recovery::{self, RecoveryPolicy, RecoveryStats};
use crate::stage;
use crate::trace::{StepTrace, Trace};

/// Per-phase (per-iteration) statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Measured local compute seconds (max-across-workers per step, summed).
    pub compute_sec: f64,
    /// Modelled network seconds.
    pub comm_sec: f64,
    /// Shuffle traffic in bytes.
    pub shuffle_bytes: u64,
    /// Broadcast traffic in bytes.
    pub broadcast_bytes: u64,
}

impl PhaseStats {
    /// Total simulated time of the phase.
    pub fn total_sec(&self) -> f64 {
        self.compute_sec + self.comm_sec
    }

    /// Total bytes moved in the phase.
    pub fn total_bytes(&self) -> u64 {
        self.shuffle_bytes + self.broadcast_bytes
    }
}

/// The result of executing a plan.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Full communication ledger of the run.
    pub comm: CommStats,
    /// Simulated clock: measured compute + modelled network time
    /// (including time lost to failures and recovery).
    pub sim: SimClock,
    /// Real wall-clock seconds the simulation took (all workers run
    /// sequentially in-process, so this exceeds `sim` on multi-worker
    /// configs).
    pub wall_sec: f64,
    /// Statistics per phase tag (index = phase); failure/recovery costs
    /// are excluded (see [`ExecReport::recovery`]).
    pub per_phase: Vec<PhaseStats>,
    /// Number of stages the plan was scheduled into.
    pub stage_count: usize,
    /// The planner's own communication estimate (cost-model units).
    pub planner_estimate: u64,
    /// What worker failures cost this run (zeroes on a healthy run).
    pub recovery: RecoveryStats,
    /// The flight-recorder trace: per-step spans, predicted vs actual
    /// cost-model bytes, per-worker traffic, buffer-pool counters.
    pub trace: Trace,
}

impl ExecReport {
    /// Simulated execution time (the paper's reported "execution time").
    pub fn sim_time_sec(&self) -> f64 {
        self.sim.total_sec()
    }

    /// Render the report as a JSON object: totals, per-phase series,
    /// recovery and buffer-pool counters, and the trace's byte totals.
    /// Used by the `dmac-serve` `Stats` response and the bench bins.
    pub fn to_json(&self) -> String {
        use crate::json::{arr_of, JsonObj};
        let phases = arr_of(self.per_phase.iter().map(|p| {
            JsonObj::new()
                .f64("compute_sec", p.compute_sec)
                .f64("comm_sec", p.comm_sec)
                .u64("shuffle_bytes", p.shuffle_bytes)
                .u64("broadcast_bytes", p.broadcast_bytes)
                .build()
        }));
        JsonObj::new()
            .f64("sim_sec", self.sim.total_sec())
            .f64("compute_sec", self.sim.compute_sec())
            .f64("comm_sec", self.sim.comm_sec())
            .f64("wall_sec", self.wall_sec)
            .u64("stage_count", self.stage_count as u64)
            .u64("planner_estimate", self.planner_estimate)
            .u64("shuffle_bytes", self.comm.shuffle_bytes())
            .u64("broadcast_bytes", self.comm.broadcast_bytes())
            .u64("recovery_bytes", self.comm.recovery_bytes())
            .u64("retry_bytes", self.comm.retry_bytes())
            .raw("per_phase", &phases)
            .raw(
                "recovery",
                &JsonObj::new()
                    .u64("worker_failures", self.recovery.worker_failures as u64)
                    .u64("recovery_rounds", self.recovery.recovery_rounds as u64)
                    .u64("recovery_bytes", self.recovery.recovery_bytes)
                    .f64("recovery_sec", self.recovery.recovery_sec)
                    .build(),
            )
            .raw(
                "trace",
                &JsonObj::new()
                    .u64("steps", self.trace.steps.len() as u64)
                    .u64("predicted_bytes", self.trace.predicted_total())
                    .u64("actual_bytes", self.trace.actual_total())
                    .u64("wire_bytes", self.trace.wire_total())
                    .u64("transport_bytes", self.trace.transport_total())
                    .u64("recovery_wire_bytes", self.trace.recovery_wire_total())
                    .u64("predicted_nnz", self.trace.predicted_nnz_total())
                    .u64("observed_nnz", self.trace.observed_nnz_total())
                    .u64("spills", self.trace.spill.spills)
                    .u64("spill_bytes", self.trace.spill.spill_bytes)
                    .u64("loads", self.trace.spill.loads)
                    .u64("load_bytes", self.trace.spill.load_bytes)
                    .u64("peak_resident_bytes", self.trace.peak_resident())
                    .build(),
            )
            .raw(
                "step_nnz",
                &arr_of(self.trace.steps.iter().map(|s| {
                    JsonObj::new()
                        .u64("step", s.step as u64)
                        .u64("predicted_nnz", s.predicted_nnz)
                        .u64("observed_nnz", s.observed_nnz)
                        .str("density_class", s.density_class)
                        .u64("resident_bytes", s.resident_bytes)
                        .build()
                })),
            )
            .raw(
                "pool",
                &JsonObj::new()
                    .u64("reused", self.trace.pool.reused as u64)
                    .u64("allocated", self.trace.pool.allocated as u64)
                    .u64("returned", self.trace.pool.returned as u64)
                    .u64("dropped", self.trace.pool.dropped as u64)
                    .build(),
            )
            .build()
    }
}

/// Everything a run produces besides the report.
#[derive(Debug, Default)]
pub struct RunOutputs {
    /// Values of output nodes, keyed by program matrix id.
    pub matrices: HashMap<MatrixId, DistMatrix>,
    /// Values to persist into the session environment, keyed by name.
    pub stored: HashMap<String, DistMatrix>,
    /// All reduction results.
    pub scalars: HashMap<ScalarId, f64>,
    /// Best materialised placement of each *load* input (Spark-style RDD
    /// caching): if a source was repartitioned to a Row/Column scheme
    /// during the run, the session keeps that copy so later programs
    /// start from it (the cross-program half of dependency exploitation).
    pub cached_inputs: HashMap<MatrixId, DistMatrix>,
}

/// Deterministic pseudo-random dense entries for `RandomMatrix` inputs
/// (SplitMix64 over the cell coordinates — no external RNG dependency).
pub fn random_cell(seed: u64, matrix: MatrixId, i: usize, j: usize) -> f64 {
    let mut z = seed
        .wrapping_add((matrix as u64) << 48)
        .wrapping_add((i as u64) << 24)
        .wrapping_add(j as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Everything immutable a run (and its recovery) needs: the program, the
/// plan, durable input bindings, and the lineage maps derived from the
/// plan (which step produces each node; which nodes are sources).
pub(crate) struct ExecCtx<'a> {
    pub program: &'a Program,
    pub plan: &'a Plan,
    pub bindings: &'a HashMap<MatrixId, DistMatrix>,
    pub block_size: usize,
    pub seed: u64,
    /// `producer[node]` = index of the plan step producing `node`
    /// (`None` for source nodes).
    pub producer: Vec<Option<usize>>,
    /// Source node → matrix id (durable lineage roots).
    pub sources: HashMap<usize, MatrixId>,
    /// Stage of each step (for recovery's re-executed-stage accounting).
    pub step_stage: Vec<usize>,
}

/// Materialise a source node: clone its durable binding (`load`) or
/// regenerate it from the recorded seed (`random`). During recovery the
/// re-read of a binding is metered as [`CommKind::Recovery`]
/// (dmac_cluster) traffic — durable storage is remote; regeneration is
/// free.
pub(crate) fn seed_source(
    cluster: &mut Cluster,
    ctx: &ExecCtx<'_>,
    node: usize,
    mid: MatrixId,
    recovering: bool,
) -> Result<DistMatrix> {
    let decl = ctx.program.decl(mid)?;
    let dist = match decl.origin {
        MatrixOrigin::Load => {
            let d = ctx
                .bindings
                .get(&mid)
                .cloned()
                .ok_or_else(|| CoreError::Unbound(decl.name.clone()))?;
            if recovering {
                cluster.charge_recovery(format!("refetch({})", decl.name), d.logical_bytes())?;
            }
            d
        }
        MatrixOrigin::Random => {
            let m = BlockedMatrix::from_fn(
                decl.stats.rows,
                decl.stats.cols,
                ctx.block_size,
                |i, j| random_cell(ctx.seed, mid, i, j),
            )?;
            cluster.load(&m, ctx.plan.nodes[node].scheme)
        }
        MatrixOrigin::Op(_) => {
            return Err(CoreError::Engine(format!(
                "source node for op-produced matrix {mid}"
            )))
        }
    };
    if dist.rows() != decl.stats.rows || dist.cols() != decl.stats.cols {
        return Err(CoreError::Engine(format!(
            "binding for '{}' is {}x{}, declared {}x{}",
            decl.name,
            dist.rows(),
            dist.cols(),
            decl.stats.rows,
            decl.stats.cols
        )));
    }
    Ok(dist)
}

/// Execute one plan step against the current values. State is only
/// assigned on success, so a step that fails mid-flight (worker loss,
/// exhausted send retries) can be re-executed after recovery.
pub(crate) fn exec_step(
    cluster: &mut Cluster,
    ctx: &ExecCtx<'_>,
    step_idx: usize,
    values: &mut [Option<DistMatrix>],
    scalars: &mut HashMap<ScalarId, f64>,
) -> Result<()> {
    let plan = ctx.plan;
    let take = |v: &[Option<DistMatrix>], n: usize| -> Result<DistMatrix> {
        v[n].clone()
            .ok_or_else(|| CoreError::Engine(format!("node {n} used before definition")))
    };
    match &plan.steps[step_idx] {
        PlanStep::Partition { src, out, .. } => {
            let m = take(values, *src)?;
            let target = plan.nodes[*out].scheme;
            let label = format!("m{}", plan.nodes[*out].matrix);
            values[*out] = Some(cluster.repartition(&m, target, &label)?);
        }
        PlanStep::Broadcast { src, out, .. } => {
            let m = take(values, *src)?;
            let label = format!("m{}", plan.nodes[*out].matrix);
            values[*out] = Some(cluster.broadcast(&m, &label)?);
        }
        PlanStep::Transpose { src, out, .. } => {
            let m = take(values, *src)?;
            values[*out] = Some(cluster.transpose(&m)?);
        }
        PlanStep::Extract { src, out, .. } => {
            let m = take(values, *src)?;
            values[*out] = Some(cluster.extract(&m, plan.nodes[*out].scheme)?);
        }
        PlanStep::Reference { src, out, .. } => {
            values[*out] = Some(take(values, *src)?);
        }
        PlanStep::Free { node, .. } => {
            // Release the node's value. The transport is only told to drop
            // shards when no other live node aliases the same distributed
            // value (Reference steps clone the handle) and the value is not
            // a durable binding the session still owns. `take` first makes
            // the step idempotent under post-failure re-execution.
            if let Some(m) = values[*node].take() {
                let rid = m.rid();
                let aliased = values
                    .iter()
                    .any(|v| v.as_ref().is_some_and(|x| x.rid() == rid));
                let bound_source = ctx
                    .sources
                    .get(node)
                    .is_some_and(|mid| ctx.bindings.contains_key(mid));
                if !aliased && !bound_source {
                    cluster.free(&m)?;
                }
            }
        }
        PlanStep::Compute {
            op,
            strategy,
            inputs,
            out,
            out_scalar,
            ..
        } => {
            let operator = &ctx.program.ops()[*op];
            let declared = out.map(|n| plan.nodes[n].scheme);
            let result = run_compute(
                cluster,
                &operator.kind,
                *strategy,
                inputs,
                declared,
                values,
                scalars,
            )?;
            match result {
                ComputeResult::Matrix(mut m) => {
                    let node = *out.as_ref().ok_or_else(|| {
                        CoreError::Engine(format!("operator {op} produced an unexpected matrix"))
                    })?;
                    // SystemML-S stores results back into the hash
                    // cache; reconcile the physical scheme with the
                    // plan node's declared scheme.
                    if plan.nodes[node].scheme == PartitionScheme::Hash
                        && m.scheme() != PartitionScheme::Hash
                    {
                        m = cluster.rehash(&m)?;
                    }
                    values[node] = Some(m);
                }
                ComputeResult::Scalar(v) => {
                    let sid = out_scalar.ok_or_else(|| {
                        CoreError::Engine(format!("operator {op} produced an unexpected scalar"))
                    })?;
                    scalars.insert(sid, v);
                }
            }
        }
        PlanStep::FusedCellWise {
            ops,
            prog,
            inputs,
            out,
            ..
        } => {
            // Resolve the symbolic scalar expressions now (the plan keeps
            // them symbolic so lineage replay re-reads the live values).
            let scalar_env = |id: ScalarId| -> f64 { *scalars.get(&id).unwrap_or(&f64::NAN) };
            let kernel: Vec<dmac_matrix::FusedOp> = prog
                .iter()
                .map(|instr| match instr {
                    FusedInstr::Leaf(i) => dmac_matrix::FusedOp::Leaf(*i),
                    FusedInstr::Add => dmac_matrix::FusedOp::Add,
                    FusedInstr::Sub => dmac_matrix::FusedOp::Sub,
                    FusedInstr::CellMul => dmac_matrix::FusedOp::CellMul,
                    FusedInstr::CellDiv => dmac_matrix::FusedOp::CellDiv,
                    FusedInstr::Scale(e) => dmac_matrix::FusedOp::Scale(e.eval(&scalar_env)),
                    FusedInstr::AddScalar(e) => {
                        dmac_matrix::FusedOp::AddScalar(e.eval(&scalar_env))
                    }
                })
                .collect();
            let operands = inputs
                .iter()
                .map(|&n| take(values, n))
                .collect::<Result<Vec<_>>>()?;
            let refs: Vec<&DistMatrix> = operands.iter().collect();
            // The span label names the subsumed operators.
            let subsumed: Vec<&str> = ops
                .iter()
                .map(|&o| match &ctx.program.ops()[o].kind {
                    OpKind::Binary { op, .. } => op.name(),
                    OpKind::Unary { op, .. } => op.name(),
                    OpKind::Reduce { .. } => "reduce",
                })
                .collect();
            let label = subsumed.join("+");
            values[*out] = Some(cluster.fused_cellwise(&refs, &kernel, &label)?);
        }
    }
    Ok(())
}

/// Extract the lost host from a recoverable error, if it is one.
fn worker_lost(e: &CoreError) -> Option<usize> {
    match e {
        CoreError::Cluster(ClusterError::WorkerLost(host)) => Some(*host),
        _ => None,
    }
}

/// Snapshot of every byte counter, for attributing deltas.
#[derive(Clone, Copy)]
struct CommSnap {
    shuffle: u64,
    broadcast: u64,
    recovery: u64,
    retry: u64,
}

impl CommSnap {
    fn take(cluster: &Cluster) -> CommSnap {
        let c = cluster.comm();
        CommSnap {
            shuffle: c.shuffle_bytes(),
            broadcast: c.broadcast_bytes(),
            recovery: c.recovery_bytes(),
            retry: c.retry_bytes(),
        }
    }

    fn all(&self) -> u64 {
        self.shuffle + self.broadcast + self.recovery + self.retry
    }
}

/// Execute `plan` for `program` on `cluster`.
///
/// `bindings` supplies a distributed matrix for every `load` declaration
/// (by matrix id); `random` declarations are generated deterministically
/// from `seed`. The cluster's meters are reset at entry. Worker losses
/// are recovered transparently within `policy`'s attempt budget.
#[allow(clippy::too_many_arguments)] // flat run-context; Session is the ergonomic entry point
pub fn execute(
    cluster: &mut Cluster,
    program: &Program,
    plan: &Plan,
    bindings: &HashMap<MatrixId, DistMatrix>,
    block_size: usize,
    seed: u64,
    planner_estimate: u64,
    policy: &RecoveryPolicy,
    store: Option<&crate::store::SharedStore>,
) -> Result<(ExecReport, RunOutputs)> {
    cluster.reset_meters();
    let wall_start = Instant::now();
    let stages = stage::schedule(plan);

    let mut producer: Vec<Option<usize>> = vec![None; plan.nodes.len()];
    for (i, step) in plan.steps.iter().enumerate() {
        if let Some(out) = step.out_node() {
            producer[out] = Some(i);
        }
    }
    let ctx = ExecCtx {
        program,
        plan,
        bindings,
        block_size,
        seed,
        producer,
        sources: plan.sources.iter().copied().collect(),
        step_stage: stages.step_stage.clone(),
    };

    let mut values: Vec<Option<DistMatrix>> = vec![None; plan.nodes.len()];
    let mut scalars: HashMap<ScalarId, f64> = HashMap::new();

    // Seed source nodes.
    for &(node, mid) in &plan.sources {
        values[node] = Some(seed_source(cluster, &ctx, node, mid, false)?);
    }

    // Liveness is the *plan's* job: the planner splices explicit `Free`
    // steps at each intermediate's last use (see `crate::liveness`), so
    // the engine releases exactly what the certificate says, when it says.
    // `last_use`/`keep` are still derived here for recovery, which must
    // re-drop values lineage replay resurrects (a node's last use includes
    // its own `Free` step, so the two mechanisms compose).
    let mut last_use = vec![usize::MAX; plan.nodes.len()];
    for (i, step) in plan.steps.iter().enumerate() {
        for n in step.in_nodes() {
            last_use[n] = i;
        }
    }
    let mut keep = vec![false; plan.nodes.len()];
    for (node, _, _) in &plan.outputs {
        keep[*node] = true;
    }
    // Nodes eligible for input-placement caching must survive to the end.
    for &(_, mid) in &plan.sources {
        if bindings.contains_key(&mid) {
            for (n, node) in plan.nodes.iter().enumerate() {
                if node.matrix == mid && !node.transposed && node.scheme.is_rc() {
                    keep[n] = true;
                    break;
                }
            }
        }
    }

    let mut per_phase: Vec<PhaseStats> = Vec::new();
    let mut step_traces: Vec<StepTrace> = Vec::with_capacity(plan.steps.len());
    let mut stats = RecoveryStats::default();
    let mut attempts_left = policy.max_attempts;
    let mut current_stage = usize::MAX;
    // Resident metering: logical bytes per distributed value, cached by
    // rid so each value is priced once per run.
    let mut rid_bytes: HashMap<u64, u64> = HashMap::new();
    let mut last_pressure = 0u64;

    for (step_idx, step) in plan.steps.iter().enumerate() {
        let stage = stages.step_stage[step_idx];
        if stage != current_stage {
            current_stage = stage;
            // Stage boundary: the fault plan may take a host down here.
            // The loss is detected by the next primitive's liveness check.
            cluster.begin_stage(stage);
        }

        // Flight recorder: remember where this step's spans start and
        // when (simulated clock) the step began.
        let span_from = cluster.span_count();
        let sim_start = cluster.clock().total_sec();

        let mut comm0 = CommSnap::take(cluster);
        let mut clock0 = *cluster.clock();
        loop {
            match exec_step(cluster, &ctx, step_idx, &mut values, &mut scalars) {
                Ok(()) => break,
                Err(e) => {
                    let Some(mut dead) = worker_lost(&e) else {
                        return Err(e);
                    };
                    // The failed attempt's spans (recorded clean) belong
                    // to recovery, not to the steady-state run; re-flag
                    // them and record everything until the retry as
                    // recovery traffic.
                    cluster.mark_spans_recovery(span_from);
                    cluster.set_recovery_mode(true);
                    // Recover, tolerating further losses mid-recovery as
                    // long as the attempt budget holds.
                    loop {
                        stats.worker_failures += 1;
                        if attempts_left == 0 {
                            return Err(CoreError::RecoveryExhausted {
                                worker: dead,
                                attempts: policy.max_attempts,
                            });
                        }
                        attempts_left -= 1;
                        match recovery::recover(
                            cluster,
                            &ctx,
                            &mut values,
                            &mut scalars,
                            step_idx,
                            dead,
                            &last_use,
                            &keep,
                            &mut stats,
                        ) {
                            Ok(()) => break,
                            Err(e2) => match worker_lost(&e2) {
                                Some(h) => dead = h,
                                None => return Err(e2),
                            },
                        }
                    }
                    stats.recovery_rounds += 1;
                    cluster.set_recovery_mode(false);
                    // Charge the failed attempt + recovery work to the
                    // recovery meters, then re-baseline so the retried
                    // step's phase attribution stays clean.
                    let snap = CommSnap::take(cluster);
                    stats.recovery_bytes += snap.all() - comm0.all();
                    stats.recovery_sec += cluster.clock().total_sec() - clock0.total_sec();
                    comm0 = snap;
                    clock0 = *cluster.clock();
                }
            }
        }

        // Assemble the step's flight-recorder record from the spans the
        // cluster primitives emitted while it was in flight (recovery
        // replays of earlier steps included, flagged).
        let spans = cluster.spans()[span_from..].to_vec();
        let (kind, label) = step_identity(plan, program, step);
        // nnz channel: the estimator's prediction next to what the step
        // actually materialised (read before liveness releases the value).
        let (predicted_nnz, observed_nnz, density_class) = match step.out_node() {
            Some(out) => {
                let predicted = plan.step_predicted_nnz(step_idx);
                let observed = values[out].as_ref().map(|m| m.nnz() as u64).unwrap_or(0);
                let decl = program.decl(plan.nodes[out].matrix)?;
                let class =
                    crate::DensityClass::classify(predicted, decl.stats.rows, decl.stats.cols)
                        .as_str();
                (predicted, observed, class)
            }
            None => (0, 0, ""),
        };
        // Meter residency after the step (and any release it performed):
        // logical bytes of all live values, each distributed value counted
        // once however many nodes alias it. The certificate prices nodes
        // individually, so it dominates this by construction (V21).
        let resident_bytes = {
            let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
            let mut sum = 0u64;
            for v in values.iter().flatten() {
                if seen.insert(v.rid()) {
                    sum += *rid_bytes
                        .entry(v.rid())
                        .or_insert_with(|| v.logical_bytes());
                }
            }
            sum
        };
        // Charge the footprint against the shared store's byte budget so
        // a capacity-bounded store displaces cold entries *during* the
        // run instead of over-committing RAM. Early `Free` steps lower
        // this curve, which is exactly how the liveness pass converts a
        // certified peak into fewer spills (the session zeroes the
        // pressure once the run's values are released).
        if let Some(store) = store {
            if resident_bytes != last_pressure {
                last_pressure = resident_bytes;
                store.set_external_pressure(resident_bytes)?;
            }
        }
        step_traces.push(StepTrace {
            step: step_idx,
            stage,
            phase: step.phase(),
            kind,
            label,
            predicted_bytes: plan.predicted_bytes(step_idx),
            actual_bytes: spans
                .iter()
                .filter(|s| !s.recovery)
                .map(|s| s.event_bytes)
                .sum(),
            wire_bytes: spans
                .iter()
                .filter(|s| !s.recovery)
                .map(|s| s.wire_bytes)
                .sum(),
            transport_bytes: spans
                .iter()
                .filter(|s| !s.recovery)
                .map(|s| s.transport_bytes)
                .sum(),
            recovery_wire_bytes: spans
                .iter()
                .filter(|s| s.recovery)
                .map(|s| s.wire_bytes)
                .sum(),
            predicted_nnz,
            observed_nnz,
            density_class,
            resident_bytes,
            sim_start_sec: sim_start,
            sim_end_sec: cluster.clock().total_sec(),
            spans,
        });

        // Attribute the deltas to the step's phase.
        let phase = step.phase();
        if per_phase.len() <= phase {
            per_phase.resize(phase + 1, PhaseStats::default());
        }
        let p = &mut per_phase[phase];
        let snap = CommSnap::take(cluster);
        p.shuffle_bytes += snap.shuffle - comm0.shuffle;
        p.broadcast_bytes += snap.broadcast - comm0.broadcast;
        p.compute_sec += cluster.clock().compute_sec() - clock0.compute_sec();
        p.comm_sec += cluster.clock().comm_sec() - clock0.comm_sec();
    }

    // Collect outputs.
    let take = |v: &Vec<Option<DistMatrix>>, n: usize| -> Result<DistMatrix> {
        v[n].clone()
            .ok_or_else(|| CoreError::Engine(format!("node {n} used before definition")))
    };
    let mut outputs = RunOutputs {
        scalars,
        ..Default::default()
    };
    // Cache improved placements of load inputs: prefer the first
    // untransposed Row/Column materialisation of each source matrix.
    for &(_, mid) in &plan.sources {
        if !bindings.contains_key(&mid) {
            continue; // randoms are regenerated per run
        }
        for (n, node) in plan.nodes.iter().enumerate() {
            if node.matrix == mid && !node.transposed && node.scheme.is_rc() {
                if let Some(v) = &values[n] {
                    outputs.cached_inputs.insert(mid, v.clone());
                    break;
                }
            }
        }
    }
    for (node, mid, name) in &plan.outputs {
        let m = take(&values, *node)?;
        outputs.matrices.insert(*mid, m.clone());
        if let Some(name) = name {
            outputs.stored.insert(name.clone(), m);
        }
    }

    let report = ExecReport {
        comm: cluster.comm().clone(),
        sim: *cluster.clock(),
        wall_sec: wall_start.elapsed().as_secs_f64(),
        per_phase,
        stage_count: stages.count,
        planner_estimate,
        recovery: stats,
        trace: Trace {
            workers: cluster.workers(),
            stage_count: stages.count,
            steps: step_traces,
            pool: cluster.pool_stats(),
            // The session fills this in after absorbing outputs; the
            // engine itself never touches the store's disk tier.
            spill: Default::default(),
        },
    };
    Ok((report, outputs))
}

/// Flight-recorder identity of a plan step: its kind tag (extended
/// operator name or compute strategy) and a human-readable label.
fn step_identity(plan: &Plan, program: &Program, step: &PlanStep) -> (String, String) {
    match step {
        PlanStep::Partition { out, .. } => ("partition".into(), plan.node_label(program, *out)),
        PlanStep::Broadcast { out, .. } => ("broadcast".into(), plan.node_label(program, *out)),
        PlanStep::Transpose { out, .. } => ("transpose".into(), plan.node_label(program, *out)),
        PlanStep::Extract { out, .. } => ("extract".into(), plan.node_label(program, *out)),
        PlanStep::Reference { out, .. } => ("reference".into(), plan.node_label(program, *out)),
        PlanStep::Compute {
            strategy,
            out,
            out_scalar,
            ..
        } => {
            let label = match (out, out_scalar) {
                (Some(n), _) => plan.node_label(program, *n),
                (None, Some(s)) => format!("scalar s{}", s),
                (None, None) => String::new(),
            };
            (strategy.name(), label)
        }
        PlanStep::Free { node, .. } => ("free".into(), plan.node_label(program, *node)),
        PlanStep::FusedCellWise { ops, out, .. } => (
            format!("Fused({})", ops.len()),
            plan.node_label(program, *out),
        ),
    }
}

enum ComputeResult {
    Matrix(DistMatrix),
    Scalar(f64),
}

fn run_compute(
    cluster: &mut Cluster,
    kind: &OpKind,
    strategy: crate::strategy::Strategy,
    inputs: &[usize],
    declared_scheme: Option<PartitionScheme>,
    values: &[Option<DistMatrix>],
    scalars: &HashMap<ScalarId, f64>,
) -> Result<ComputeResult> {
    use crate::strategy::Strategy as S;
    let val = |n: usize| -> Result<DistMatrix> {
        values[n]
            .clone()
            .ok_or_else(|| CoreError::Engine(format!("node {n} used before definition")))
    };
    let scalar_env = |id: ScalarId| -> f64 { *scalars.get(&id).unwrap_or(&f64::NAN) };

    match (kind, strategy) {
        (
            OpKind::Binary {
                op: BinOp::MatMul, ..
            },
            S::Rmm1,
        ) => Ok(ComputeResult::Matrix(
            cluster.rmm1(&val(inputs[0])?, &val(inputs[1])?)?,
        )),
        (
            OpKind::Binary {
                op: BinOp::MatMul, ..
            },
            S::Rmm2,
        ) => Ok(ComputeResult::Matrix(
            cluster.rmm2(&val(inputs[0])?, &val(inputs[1])?)?,
        )),
        (
            OpKind::Binary {
                op: BinOp::MatMul, ..
            },
            S::Cpmm,
        ) => {
            // The output scheme was pinned by Re-assignment (or finalised
            // to Row); for a SystemML-S (Hash) output, aggregate to Row and
            // rehash afterwards.
            let declared = declared_scheme
                .ok_or_else(|| CoreError::Engine("cpmm without output node".into()))?;
            let target = if declared.is_rc() {
                declared
            } else {
                PartitionScheme::Row
            };
            Ok(ComputeResult::Matrix(cluster.cpmm(
                &val(inputs[0])?,
                &val(inputs[1])?,
                target,
            )?))
        }
        (OpKind::Binary { op, .. }, S::CellAligned(_)) => {
            let cell = match op {
                BinOp::Add => CellOp::Add,
                BinOp::Sub => CellOp::Sub,
                BinOp::CellMul => CellOp::Mul,
                BinOp::CellDiv => CellOp::Div,
                BinOp::MatMul => return Err(CoreError::Engine("matmul with cell strategy".into())),
            };
            Ok(ComputeResult::Matrix(cluster.cellwise(
                &val(inputs[0])?,
                &val(inputs[1])?,
                cell,
            )?))
        }
        (OpKind::Unary { op, .. }, S::UnaryLocal) => {
            let m = val(inputs[0])?;
            // The named-operator form (not a closure) keeps scalar maps
            // mirrorable on physical transport backends.
            let tile_op = match op {
                UnaryOp::Scale(s) => UnaryTileOp::Scale(s.eval(&scalar_env)),
                UnaryOp::AddScalar(s) => UnaryTileOp::AddScalar(s.eval(&scalar_env)),
            };
            Ok(ComputeResult::Matrix(cluster.unary(&m, tile_op)?))
        }
        (OpKind::Reduce { op, .. }, S::ReduceLocal) => {
            let m = val(inputs[0])?;
            let v = match op {
                ReduceOp::Sum | ReduceOp::Value => cluster.reduce(&m, ReduceKind::Sum)?,
                ReduceOp::Norm2 => cluster.reduce(&m, ReduceKind::Norm2)?,
            };
            Ok(ComputeResult::Scalar(v))
        }
        (k, s) => Err(CoreError::Engine(format!(
            "strategy {s:?} incompatible with operator {k:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_report_json_carries_the_nnz_channel() {
        let mut p = dmac_lang::Program::new();
        let a = p.load("A", 8, 8, 1.0);
        let b = p.add(a, a).unwrap();
        p.output(b);
        let mut s = crate::Session::builder().workers(2).block_size(4).build();
        let m = dmac_matrix::BlockedMatrix::from_fn(8, 8, 4, |i, j| (i + j) as f64).unwrap();
        s.bind("A", m).unwrap();
        let json = s.run(&p).unwrap().to_json();
        for needle in [
            "\"predicted_nnz\":",
            "\"observed_nnz\":",
            "\"step_nnz\":[",
            "\"density_class\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn random_cell_is_deterministic_and_uniform_ish() {
        let a = random_cell(42, 1, 3, 4);
        let b = random_cell(42, 1, 3, 4);
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a));
        assert_ne!(random_cell(42, 1, 3, 5), a);
        assert_ne!(random_cell(43, 1, 3, 4), a);
        // crude uniformity: mean of many samples near 0.5
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|i| random_cell(7, 0, i, i * 31 + 1))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
