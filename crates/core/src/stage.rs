//! Stage scheduling (paper §5.2).
//!
//! "DMac first schedules [the plan] into several un-interleaved stages
//! where each stage can be executed among the cluster without network
//! communication. … the boundaries between stages are either `partition`
//! operators or `broadcast` operators or both."
//!
//! We assign every plan node the number of communication edges on its
//! longest path from a source: data in stage `k` can be computed from
//! stage-`k` data with purely local work; each communication step lifts its
//! output into the next stage. A step executes in the stage of its output
//! (communication steps *are* the boundary into their stage). This is the
//! traverse-based boundary search of §5.2 expressed over the step DAG, and
//! it yields the Figure-3 staging for GNMF.

use crate::plan::{Plan, PlanStep};

/// Stage assignment for a plan.
#[derive(Debug, Clone)]
pub struct Stages {
    /// Stage of each step (parallel to `plan.steps`).
    pub step_stage: Vec<usize>,
    /// Stage of each node (parallel to `plan.nodes`).
    pub node_stage: Vec<usize>,
    /// Number of stages (`max + 1`).
    pub count: usize,
}

impl Stages {
    /// Steps belonging to stage `k`, in plan order.
    pub fn steps_of(&self, k: usize) -> impl Iterator<Item = usize> + '_ {
        self.step_stage
            .iter()
            .enumerate()
            .filter(move |(_, &s)| s == k)
            .map(|(i, _)| i)
    }
}

/// Compute the stage schedule of a plan.
pub fn schedule(plan: &Plan) -> Stages {
    let mut node_stage = vec![0usize; plan.nodes.len()];
    let mut step_stage = Vec::with_capacity(plan.steps.len());
    let mut max_stage = 0;
    let mut prev_stage = 0;
    for step in &plan.steps {
        let in_stage = step
            .in_nodes()
            .iter()
            .map(|&n| node_stage[n])
            .max()
            .unwrap_or(0);
        // A free executes wherever the plan already is: it joins the
        // preceding step's stage instead of dragging execution back to
        // the (possibly earlier) stage its node was defined in.
        let out_stage = if matches!(step, PlanStep::Free { .. }) {
            in_stage.max(prev_stage)
        } else {
            in_stage + usize::from(step.is_comm())
        };
        if let Some(out) = step.out_node() {
            node_stage[out] = out_stage;
        }
        step_stage.push(out_stage);
        prev_stage = out_stage;
        max_stage = max_stage.max(out_stage);
    }
    Stages {
        step_stage,
        node_stage,
        count: max_stage + 1,
    }
}

/// Validate the defining invariant: inside one stage, every step after the
/// first non-communication step is non-communication — i.e. communication
/// happens only at stage boundaries. Returns the offending step index on
/// violation.
pub fn validate(plan: &Plan, stages: &Stages) -> Result<(), usize> {
    // Every local step must live in the same stage as all of its inputs;
    // every comm step must live exactly one stage above its inputs; a
    // free joins the stage in effect at its position.
    let mut prev_stage = 0;
    for (i, step) in plan.steps.iter().enumerate() {
        let in_stage = step
            .in_nodes()
            .iter()
            .map(|&n| stages.node_stage[n])
            .max()
            .unwrap_or(0);
        let expect = if matches!(step, PlanStep::Free { .. }) {
            in_stage.max(prev_stage)
        } else {
            in_stage + usize::from(step.is_comm())
        };
        if stages.step_stage[i] != expect {
            return Err(i);
        }
        prev_stage = stages.step_stage[i];
        if let Some(out) = step.out_node() {
            if stages.node_stage[out] != stages.step_stage[i] {
                return Err(i);
            }
        }
    }
    Ok(())
}

/// Render a stage-by-stage view of the plan (paper-Figure-3 style).
pub fn explain_stages(plan: &Plan, program: &dmac_lang::Program) -> String {
    use std::fmt::Write as _;
    let stages = schedule(plan);
    let mut s = String::new();
    let _ = writeln!(s, "{} stages", stages.count);
    for k in 0..stages.count {
        let _ = writeln!(s, "Stage {}:", k + 1);
        for idx in stages.steps_of(k) {
            let step = &plan.steps[idx];
            let kind = match step {
                PlanStep::Partition { .. } => "partition",
                PlanStep::Broadcast { .. } => "broadcast",
                PlanStep::Transpose { .. } => "transpose",
                PlanStep::Extract { .. } => "extract",
                PlanStep::Reference { .. } => "reference",
                PlanStep::Compute { strategy, .. } => {
                    let _ = writeln!(
                        s,
                        "  compute {} -> {}",
                        strategy.name(),
                        step.out_node()
                            .map(|n| plan.node_label(program, n))
                            .unwrap_or_else(|| "<scalar>".into())
                    );
                    continue;
                }
                PlanStep::FusedCellWise { ops, .. } => {
                    let _ = writeln!(
                        s,
                        "  fused   Fused({}) -> {}",
                        ops.len(),
                        step.out_node()
                            .map(|n| plan.node_label(program, n))
                            .unwrap_or_default()
                    );
                    continue;
                }
                PlanStep::Free { node, .. } => {
                    let _ = writeln!(s, "  free    {}", plan.node_label(program, *node));
                    continue;
                }
            };
            let _ = writeln!(
                s,
                "  {kind} -> {}",
                step.out_node()
                    .map(|n| plan.node_label(program, n))
                    .unwrap_or_default()
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_program, PlannerConfig};
    use dmac_lang::Program;
    use std::collections::HashMap;

    fn gnmf_iteration() -> Program {
        // Full first iteration of Code 1 (both updates).
        let mut p = Program::new();
        let v = p.load("V", 2000, 1500, 0.01);
        let w = p.random("W", 2000, 20);
        let h = p.random("H", 20, 1500);
        // H update
        let wt_v = p.matmul(w.t(), v).unwrap();
        let wt_w = p.matmul(w.t(), w).unwrap();
        let wt_w_h = p.matmul(wt_w, h).unwrap();
        let h_num = p.cell_mul(h, wt_v).unwrap();
        let h2 = p.cell_div(h_num, wt_w_h).unwrap();
        // W update
        let v_ht = p.matmul(v, h2.t()).unwrap();
        let h_ht = p.matmul(h2, h2.t()).unwrap();
        let w_h_ht = p.matmul(w, h_ht).unwrap();
        let w_num = p.cell_mul(w, v_ht).unwrap();
        let w2 = p.cell_div(w_num, w_h_ht).unwrap();
        p.store(h2, "H");
        p.store(w2, "W");
        p
    }

    #[test]
    fn gnmf_first_iteration_stage_structure() {
        let p = gnmf_iteration();
        let planned = plan_program(&p, &PlannerConfig::default(), 4, &HashMap::new()).unwrap();
        let stages = schedule(&planned.plan);
        validate(&planned.plan, &stages).unwrap_or_else(|i| {
            panic!(
                "stage invariant violated at step {i}:\n{}",
                planned.plan.explain(&p)
            )
        });
        // The paper's Figure 3 divides the first iteration into 5 stages;
        // our greedy planner lands in the same neighbourhood (the exact
        // plan differs because Figure 3 is hand-derived and depends on the
        // V/W size ratio; see EXPERIMENTS.md).
        assert!(
            (3..=9).contains(&stages.count),
            "expected ~5 stages, got {}:\n{}",
            stages.count,
            explain_stages(&planned.plan, &p)
        );
    }

    #[test]
    fn local_only_plan_is_one_stage() {
        let mut p = Program::new();
        let a = p.load("A", 10, 10, 1.0);
        let b = p.scale_const(a, 2.0).unwrap();
        let c = p.scale_const(b, 3.0).unwrap();
        p.output(c);
        let planned = plan_program(&p, &PlannerConfig::default(), 4, &HashMap::new()).unwrap();
        let stages = schedule(&planned.plan);
        assert_eq!(stages.count, 1);
        validate(&planned.plan, &stages).unwrap();
    }

    #[test]
    fn each_comm_step_starts_a_new_stage_level() {
        let mut p = Program::new();
        let a = p.load("A", 100, 100, 1.0);
        let b = p.add(a, a).unwrap(); // partition A -> stage 1
        let c = p.matmul(b, b.t()).unwrap(); // needs more comm
        p.output(c);
        let planned = plan_program(&p, &PlannerConfig::default(), 4, &HashMap::new()).unwrap();
        let stages = schedule(&planned.plan);
        validate(&planned.plan, &stages).unwrap();
        assert!(stages.count >= 2);
        // comm steps are exactly the boundary steps: their stage is one
        // above their inputs' stage.
        for (i, step) in planned.plan.steps.iter().enumerate() {
            if step.is_comm() {
                let in_stage = step
                    .in_nodes()
                    .iter()
                    .map(|&n| stages.node_stage[n])
                    .max()
                    .unwrap_or(0);
                assert_eq!(stages.step_stage[i], in_stage + 1);
            }
        }
    }

    #[test]
    fn explain_stages_renders() {
        let p = gnmf_iteration();
        let planned = plan_program(&p, &PlannerConfig::default(), 4, &HashMap::new()).unwrap();
        let text = explain_stages(&planned.plan, &p);
        assert!(text.contains("Stage 1:"), "{text}");
        assert!(text.to_lowercase().contains("compute"), "{text}");
    }
}
