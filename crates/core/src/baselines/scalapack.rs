//! A behavioural simulator of ScaLAPACK's distributed dense matrix
//! multiplication (`pdgemm`), for the Table-4 comparison.
//!
//! What the paper measures about ScaLAPACK (§6.6):
//!
//! 1. it is "not well tuned for sparse matrices, and handles the sparse
//!    matrix as the way on dense one" — so MM-Sparse and MM-Dense cost the
//!    same;
//! 2. it is "a highly tuned library": its dense performance is comparable
//!    to DMac's;
//! 3. it runs on MPI with a 2-D block-cyclic layout, so it pays SUMMA-style
//!    panel broadcasts and per-message latency instead of shared-memory
//!    reads.
//!
//! The simulator reproduces exactly those three behaviours: it densifies
//! the inputs, runs the *real* dense kernels (so results are verifiable),
//! scales measured compute by the process count, and charges a SUMMA
//! communication model:
//! total panel traffic `≈ √P · (|A| + |B|)` dense bytes.

use std::time::Instant;

use dmac_cluster::NetworkModel;
use dmac_matrix::{AggregationMode, BlockedMatrix, LocalExecutor};

use crate::error::Result;

/// Result of a simulated external-system multiplication.
#[derive(Debug)]
pub struct SimResult {
    /// Simulated execution time in seconds.
    pub sim_time_sec: f64,
    /// Bytes the simulated system would move.
    pub comm_bytes: u64,
    /// The (real, verifiable) product.
    pub result: BlockedMatrix,
}

/// Configuration of the ScaLAPACK simulator.
#[derive(Debug, Clone, Copy)]
pub struct ScalapackConfig {
    /// Total MPI processes (the paper runs 8 nodes × 8 processes).
    pub processes: usize,
    /// Threads used to *measure* the dense kernels locally.
    pub measure_threads: usize,
    /// Interconnect model.
    pub network: NetworkModel,
    /// Per-message latency charged for each panel exchange round (MPI
    /// messages instead of shared memory — §6.6).
    pub message_latency_sec: f64,
}

impl Default for ScalapackConfig {
    fn default() -> Self {
        ScalapackConfig {
            processes: 64,
            measure_threads: 8,
            network: NetworkModel::default(),
            message_latency_sec: 1e-4,
        }
    }
}

/// Dense bytes of an `m × n` matrix (8-byte elements): what ScaLAPACK
/// stores and ships regardless of sparsity.
pub fn dense_bytes(rows: usize, cols: usize) -> u64 {
    (rows as u64) * (cols as u64) * 8
}

/// Simulate `A · B` on ScaLAPACK.
pub fn multiply(a: &BlockedMatrix, b: &BlockedMatrix, cfg: &ScalapackConfig) -> Result<SimResult> {
    // 1. Densify: ScaLAPACK has no sparse pdgemm.
    let ad = BlockedMatrix::from_fn(a.rows(), a.cols(), a.block_size(), {
        let d = a.to_dense();
        move |i, j| d.at(i, j)
    })?;
    let bd = BlockedMatrix::from_fn(b.rows(), b.cols(), b.block_size(), {
        let d = b.to_dense();
        move |i, j| d.at(i, j)
    })?;

    // 2. Real dense compute, measured, then scaled by the process count
    //    (block-cyclic layouts balance dense work nearly perfectly).
    let ex = LocalExecutor::new(cfg.measure_threads, AggregationMode::InPlace);
    let t0 = Instant::now();
    let result = ex.matmul(&ad, &bd)?;
    let measured = t0.elapsed().as_secs_f64();
    let compute_sec = measured * cfg.measure_threads as f64 / (cfg.processes as f64).max(1.0);

    // 3. SUMMA communication: over the k-loop each process receives the
    //    row panels of A and column panels of B it does not own; the total
    //    traffic is ≈ √P · (|A| + |B|) dense bytes, in √P rounds of
    //    grid-wide messages.
    let p_sqrt = (cfg.processes as f64).sqrt();
    let comm_bytes = ((dense_bytes(a.rows(), a.cols()) + dense_bytes(b.rows(), b.cols())) as f64
        * p_sqrt) as u64;
    let rounds = a.col_blocks().max(1);
    let comm_sec = comm_bytes as f64 / cfg.network.bandwidth_bytes_per_sec
        + rounds as f64 * cfg.processes as f64 * cfg.message_latency_sec;

    Ok(SimResult {
        sim_time_sec: compute_sec + comm_sec,
        comm_bytes,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize) -> BlockedMatrix {
        BlockedMatrix::from_fn(rows, cols, 8, |i, j| ((i + 2 * j) % 5) as f64 - 1.0).unwrap()
    }

    fn sparse(rows: usize, cols: usize) -> BlockedMatrix {
        BlockedMatrix::from_triplets(
            rows,
            cols,
            8,
            (0..rows * cols)
                .filter(|t| t % 29 == 0)
                .map(|t| (t / cols, t % cols, 1.0)),
        )
        .unwrap()
    }

    #[test]
    fn product_is_numerically_correct() {
        let a = dense(24, 16);
        let b = dense(16, 20);
        let r = multiply(&a, &b, &ScalapackConfig::default()).unwrap();
        assert_eq!(
            r.result.to_dense(),
            a.matmul_reference(&b).unwrap().to_dense()
        );
    }

    #[test]
    fn sparse_and_dense_inputs_cost_the_same_comm() {
        let cfg = ScalapackConfig::default();
        let s = multiply(&sparse(32, 32), &dense(32, 16), &cfg).unwrap();
        let d = multiply(&dense(32, 32), &dense(32, 16), &cfg).unwrap();
        // the sparsity-blindness of Table 4: identical traffic
        assert_eq!(s.comm_bytes, d.comm_bytes);
    }

    #[test]
    fn more_processes_less_compute_more_messages() {
        let a = dense(64, 64);
        let b = dense(64, 64);
        let few = multiply(
            &a,
            &b,
            &ScalapackConfig {
                processes: 4,
                message_latency_sec: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        let many = multiply(
            &a,
            &b,
            &ScalapackConfig {
                processes: 64,
                message_latency_sec: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(many.comm_bytes > few.comm_bytes, "√P panel traffic grows");
    }
}
