//! The comparison systems of the paper's evaluation (§6.1, §6.6).
//!
//! * **SystemML-S** — "the core techniques of SystemML on Spark", sharing
//!   DMac's local execution strategy; the only difference is that it plans
//!   without matrix dependencies. It is realised by
//!   [`crate::planner::PlannerConfig::systemml_s`]: every operator's inputs
//!   are repartitioned from the hash-partitioned cache, strategies are
//!   chosen per-operator.
//! * **R** — the single-machine in-memory baseline: the same engine on a
//!   one-worker cluster ([`SystemKind::RLocal`]).
//! * **ScaLAPACK** — simulated in [`scalapack`]: dense-only block-cyclic
//!   multiplication (sparse inputs are densified, exactly the behaviour
//!   Table 4 exposes) with SUMMA-style communication and MPI message
//!   overhead.
//! * **SciDB** — simulated in [`scidb`]: chunked array storage that must
//!   redistribute to ScaLAPACK layout before multiplying, plus DBMS
//!   query-processing/failure-handling overhead.

pub mod scalapack;
pub mod scidb;

/// Which system executes a session's programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// DMac: dependency-aware planning (the paper's system).
    Dmac,
    /// SystemML-S: dependency-blind planning, same runtime.
    SystemMlS,
    /// R: single-node in-memory execution, same kernels.
    RLocal,
}

impl SystemKind {
    /// Display name used by the bench harness.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Dmac => "DMac",
            SystemKind::SystemMlS => "SystemML-S",
            SystemKind::RLocal => "R",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(SystemKind::Dmac.name(), "DMac");
        assert_eq!(SystemKind::SystemMlS.name(), "SystemML-S");
        assert_eq!(SystemKind::RLocal.name(), "R");
    }
}
