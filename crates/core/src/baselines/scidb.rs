//! A behavioural simulator of SciDB's linear-algebra path, for Table 4.
//!
//! What the paper measures about SciDB (§6.6): its linear algebra is
//! delegated to ScaLAPACK, but "before performing matrix operations, SciDB
//! needs to redistribute the data on each computing node to satisfy the
//! requirement of ScaLAPACK. Meanwhile, SciDB maintains a failure handling
//! mechanism during the computation, which introduces extra overhead." In
//! Table 4 SciDB lands ~6.5× slower than raw ScaLAPACK on both sparse and
//! dense inputs.
//!
//! The simulator therefore charges: (1) a full chunk-store → block-cyclic
//! redistribution of both (densified) inputs, (2) the ScaLAPACK
//! multiplication itself, (3) a DBMS overhead factor covering query
//! processing and failure handling, calibrated once against Table 4's
//! dense ratio and documented in EXPERIMENTS.md.

use dmac_cluster::NetworkModel;
use dmac_matrix::BlockedMatrix;

use super::scalapack::{self, dense_bytes, ScalapackConfig, SimResult};
use crate::error::Result;

/// Configuration of the SciDB simulator.
#[derive(Debug, Clone, Copy)]
pub struct ScidbConfig {
    /// The embedded ScaLAPACK configuration.
    pub scalapack: ScalapackConfig,
    /// Multiplier covering query processing + failure handling. The
    /// paper's Table 4 dense ratio (12m15s / 116s ≈ 6.3) calibrates the
    /// default.
    pub dbms_overhead_factor: f64,
    /// Fixed query setup cost (optimisation, catalog, operator dispatch).
    pub query_setup_sec: f64,
}

impl Default for ScidbConfig {
    fn default() -> Self {
        ScidbConfig {
            scalapack: ScalapackConfig::default(),
            dbms_overhead_factor: 5.0,
            query_setup_sec: 0.5,
        }
    }
}

/// Simulate `A · B` on SciDB.
pub fn multiply(a: &BlockedMatrix, b: &BlockedMatrix, cfg: &ScidbConfig) -> Result<SimResult> {
    // 1. Redistribute chunk storage into block-cyclic layout: every cell
    //    of both (dense-materialised) inputs crosses the instance
    //    boundary once.
    let redist_bytes = dense_bytes(a.rows(), a.cols()) + dense_bytes(b.rows(), b.cols());
    let net: NetworkModel = cfg.scalapack.network;
    let redist_sec = net.transfer_time(redist_bytes);

    // 2. The actual multiplication via ScaLAPACK.
    let inner = scalapack::multiply(a, b, &cfg.scalapack)?;

    // 3. DBMS overheads.
    let sim_time_sec =
        cfg.query_setup_sec + redist_sec + inner.sim_time_sec * cfg.dbms_overhead_factor;

    Ok(SimResult {
        sim_time_sec,
        comm_bytes: inner.comm_bytes + redist_bytes,
        result: inner.result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize) -> BlockedMatrix {
        BlockedMatrix::from_fn(rows, cols, 8, |i, j| ((i * 3 + j) % 4) as f64).unwrap()
    }

    #[test]
    fn result_matches_reference() {
        let a = dense(16, 12);
        let b = dense(12, 8);
        let r = multiply(&a, &b, &ScidbConfig::default()).unwrap();
        assert_eq!(
            r.result.to_dense(),
            a.matmul_reference(&b).unwrap().to_dense()
        );
    }

    #[test]
    fn scidb_is_slower_than_raw_scalapack() {
        let a = dense(64, 64);
        let b = dense(64, 64);
        let cfg = ScidbConfig::default();
        let sci = multiply(&a, &b, &cfg).unwrap();
        let sca = scalapack::multiply(&a, &b, &cfg.scalapack).unwrap();
        assert!(
            sci.sim_time_sec > 2.0 * sca.sim_time_sec,
            "sci {} vs sca {}",
            sci.sim_time_sec,
            sca.sim_time_sec
        );
        assert!(sci.comm_bytes > sca.comm_bytes);
    }
}
