//! Matrix-dependency classification (paper §3.2, Table 2).
//!
//! **Definition 1 (Matrix Dependency).** An input event `In(B, pj, opj)` is
//! dependent on an output event `Out(A, pi, opi)` if `B = A` or `B = Aᵀ`,
//! and `Precede(opi, opj)` holds.
//!
//! Of the 18 combinations of scheme pairs and transpose relationship, eight
//! distinct matrix processes suffice (Table 2). Four require communication
//! (Partition, Transpose-Partition, Broadcast, Transpose-Broadcast); four
//! are free (Reference, Transpose, Extract, Extract-Transpose).

use dmac_cluster::PartitionScheme;

use crate::event::{InEvent, OutEvent};

/// The eight dependency types of Table 2, named after the matrix process
/// that satisfies them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependencyType {
    /// `A = B`, `Oppose(pi, pj)` — repartition. **Communication.**
    Partition,
    /// `A = Bᵀ`, `EqualRC(pi, pj)` — transpose then repartition.
    /// **Communication.**
    TransposePartition,
    /// `A = B`, `Contain(pj, pi)` — broadcast. **Communication.**
    Broadcast,
    /// `A = Bᵀ`, `Contain(pj, pi)` — transpose then broadcast.
    /// **Communication.**
    TransposeBroadcast,
    /// `A = B`, `EqualRC(pi, pj) || EqualB(pi, pj)` — direct reuse. Free.
    Reference,
    /// `A = Bᵀ`, `Oppose(pi, pj) || EqualB(pi, pj)` — local transpose. Free.
    Transpose,
    /// `A = B`, `Contain(pi, pj)` — local filter of a broadcast copy. Free.
    Extract,
    /// `A = Bᵀ`, `Contain(pi, pj)` — local filter + local transpose. Free.
    ExtractTranspose,
}

impl DependencyType {
    /// Does satisfying this dependency move data between workers?
    /// (The paper's two categories: Communication Dependency vs
    /// Non-Communication Dependency.)
    pub fn communicates(self) -> bool {
        matches!(
            self,
            DependencyType::Partition
                | DependencyType::TransposePartition
                | DependencyType::Broadcast
                | DependencyType::TransposeBroadcast
        )
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DependencyType::Partition => "Partition",
            DependencyType::TransposePartition => "Transpose-Partition",
            DependencyType::Broadcast => "Broadcast",
            DependencyType::TransposeBroadcast => "Transpose-Broadcast",
            DependencyType::Reference => "Reference",
            DependencyType::Transpose => "Transpose",
            DependencyType::Extract => "Extract",
            DependencyType::ExtractTranspose => "Extract-Transpose",
        }
    }
}

/// Classify the dependency between an output event and a later input event
/// per Table 2. Returns `None` when no dependency exists: different base
/// matrices, no precedence, a Hash-placed output (which satisfies nothing
/// without a repartition — callers treat Hash sources as implicit
/// Partition/Broadcast), or an input requiring Hash (never happens).
///
/// ```
/// use dmac_cluster::PartitionScheme;
/// use dmac_core::dependency::{classify, DependencyType};
/// use dmac_core::event::{EventMatrix, InEvent, OutEvent};
///
/// // op0 wrote W row-partitioned; op1 reads Wᵀ column-partitioned:
/// // a free, local Transpose dependency.
/// let out = OutEvent { matrix: EventMatrix::plain(0), scheme: PartitionScheme::Row, op: 0 };
/// let inp = InEvent { matrix: EventMatrix::trans(0), scheme: PartitionScheme::Col, op: 1 };
/// let dep = classify(&out, &inp).unwrap();
/// assert_eq!(dep, DependencyType::Transpose);
/// assert!(!dep.communicates());
/// ```
pub fn classify(out: &OutEvent, input: &InEvent) -> Option<DependencyType> {
    if !out.precedes(input) {
        return None;
    }
    let same = input.matrix.same(out.matrix);
    let trans = input.matrix.transposed_of(out.matrix);
    if !same && !trans {
        return None;
    }
    let (pi, pj) = (out.scheme, input.scheme);
    if pi == PartitionScheme::Hash || pj == PartitionScheme::Hash {
        return None;
    }
    let dep = if same {
        if pi.equal_rc(pj) || pi.equal_b(pj) {
            DependencyType::Reference
        } else if pi.oppose(pj) {
            DependencyType::Partition
        } else if pj.contain(pi) {
            DependencyType::Broadcast
        } else {
            debug_assert!(pi.contain(pj));
            DependencyType::Extract
        }
    } else {
        // B = Aᵀ
        if pi.oppose(pj) || pi.equal_b(pj) {
            DependencyType::Transpose
        } else if pi.equal_rc(pj) {
            DependencyType::TransposePartition
        } else if pj.contain(pi) {
            DependencyType::TransposeBroadcast
        } else {
            debug_assert!(pi.contain(pj));
            DependencyType::ExtractTranspose
        }
    };
    Some(dep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventMatrix;
    use PartitionScheme::{Broadcast as B, Col as C, Row as R};

    fn out(t: bool, p: PartitionScheme) -> OutEvent {
        OutEvent {
            matrix: if t {
                EventMatrix::trans(0)
            } else {
                EventMatrix::plain(0)
            },
            scheme: p,
            op: 0,
        }
    }

    fn inp(t: bool, p: PartitionScheme) -> InEvent {
        InEvent {
            matrix: if t {
                EventMatrix::trans(0)
            } else {
                EventMatrix::plain(0)
            },
            scheme: p,
            op: 1,
        }
    }

    /// Exhaustive check of all 18 combinations of Table 2: 9 scheme pairs
    /// × 2 transpose relationships.
    #[test]
    fn all_eighteen_combinations_match_table2() {
        use DependencyType::*;
        let cases: Vec<(PartitionScheme, PartitionScheme, bool, DependencyType)> = vec![
            // same matrix (A = B)
            (R, R, false, Reference),
            (C, C, false, Reference),
            (B, B, false, Reference),
            (R, C, false, Partition),
            (C, R, false, Partition),
            (R, B, false, Broadcast),
            (C, B, false, Broadcast),
            (B, R, false, Extract),
            (B, C, false, Extract),
            // transposed (B = Aᵀ)
            (R, C, true, Transpose),
            (C, R, true, Transpose),
            (B, B, true, Transpose),
            (R, R, true, TransposePartition),
            (C, C, true, TransposePartition),
            (R, B, true, TransposeBroadcast),
            (C, B, true, TransposeBroadcast),
            (B, R, true, ExtractTranspose),
            (B, C, true, ExtractTranspose),
        ];
        assert_eq!(cases.len(), 18);
        for (pi, pj, transposed, expect) in cases {
            let o = out(false, pi);
            let i = inp(transposed, pj);
            assert_eq!(
                classify(&o, &i),
                Some(expect),
                "Out(A,{pi}) -> In({}, {pj})",
                if transposed { "At" } else { "A" }
            );
        }
    }

    #[test]
    fn communication_category_matches_table2() {
        use DependencyType::*;
        for (dep, comm) in [
            (Partition, true),
            (TransposePartition, true),
            (Broadcast, true),
            (TransposeBroadcast, true),
            (Reference, false),
            (Transpose, false),
            (Extract, false),
            (ExtractTranspose, false),
        ] {
            assert_eq!(dep.communicates(), comm, "{}", dep.name());
        }
    }

    #[test]
    fn no_dependency_without_precedence() {
        let o = OutEvent {
            matrix: EventMatrix::plain(0),
            scheme: R,
            op: 5,
        };
        let i = InEvent {
            matrix: EventMatrix::plain(0),
            scheme: R,
            op: 5,
        };
        assert_eq!(classify(&o, &i), None);
    }

    #[test]
    fn no_dependency_across_matrices() {
        let o = out(false, R);
        let mut i = inp(false, R);
        i.matrix = EventMatrix::plain(9);
        assert_eq!(classify(&o, &i), None);
    }

    #[test]
    fn hash_sources_satisfy_nothing() {
        let o = out(false, PartitionScheme::Hash);
        assert_eq!(classify(&o, &inp(false, R)), None);
        assert_eq!(classify(&o, &inp(true, B)), None);
    }

    #[test]
    fn transpose_relation_is_symmetric_in_classification() {
        // Out(Aᵀ, r) -> In(A, c) is also a Transpose dependency.
        let o = out(true, R);
        let i = inp(false, C);
        assert_eq!(classify(&o, &i), Some(DependencyType::Transpose));
    }
}
