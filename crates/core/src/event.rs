//! Input/output events (paper §3.1, Table 1).
//!
//! An *event* is "an input (output) process of reading (writing) a single
//! matrix by an operator": `In(A, p, op)` reads matrix `A` under partition
//! scheme `p`; `Out(A, p, op)` writes it. Events are the endpoints of
//! matrix dependencies. A reference may be to the transpose of a stored
//! value (`B = Aᵀ` in Definition 1), so events carry a `transposed` flag
//! relative to the base matrix value they touch.

use dmac_cluster::PartitionScheme;
use dmac_lang::MatrixId;

/// The matrix side of an event: which base value, and whether the event is
/// about its transpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventMatrix {
    /// The base matrix value.
    pub id: MatrixId,
    /// True when the event concerns `Aᵀ` rather than `A`.
    pub transposed: bool,
}

impl EventMatrix {
    /// Untransposed reference to `id`.
    pub fn plain(id: MatrixId) -> EventMatrix {
        EventMatrix {
            id,
            transposed: false,
        }
    }

    /// Transposed reference to `id`.
    pub fn trans(id: MatrixId) -> EventMatrix {
        EventMatrix {
            id,
            transposed: true,
        }
    }

    /// Do two event matrices denote the same data (`A = B`)?
    pub fn same(self, other: EventMatrix) -> bool {
        self.id == other.id && self.transposed == other.transposed
    }

    /// Do they denote each other's transpose (`A = Bᵀ`)?
    pub fn transposed_of(self, other: EventMatrix) -> bool {
        self.id == other.id && self.transposed != other.transposed
    }
}

/// `In(A, p, op)` — operator `op` requires matrix `A` partitioned `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InEvent {
    /// What is read.
    pub matrix: EventMatrix,
    /// Scheme the operator requires.
    pub scheme: PartitionScheme,
    /// Index of the reading operator in the program.
    pub op: usize,
}

/// `Out(A, p, op)` — operator `op` produces (or leaves cached) matrix `A`
/// partitioned `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutEvent {
    /// What is written.
    pub matrix: EventMatrix,
    /// Scheme it is materialised with.
    pub scheme: PartitionScheme,
    /// Index of the producing operator.
    pub op: usize,
}

impl OutEvent {
    /// `Precede(op_i, op_j)` — this output happened before the given input
    /// is consumed.
    pub fn precedes(&self, input: &InEvent) -> bool {
        self.op < input.op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_and_transposed_of() {
        let a = EventMatrix::plain(1);
        let at = EventMatrix::trans(1);
        let b = EventMatrix::plain(2);
        assert!(a.same(a));
        assert!(!a.same(at));
        assert!(a.transposed_of(at));
        assert!(at.transposed_of(a));
        assert!(!a.transposed_of(b));
        assert!(!a.same(b));
    }

    #[test]
    fn precede_is_strict() {
        let out = OutEvent {
            matrix: EventMatrix::plain(0),
            scheme: PartitionScheme::Row,
            op: 3,
        };
        let later = InEvent {
            matrix: EventMatrix::plain(0),
            scheme: PartitionScheme::Row,
            op: 5,
        };
        let same_op = InEvent { op: 3, ..later };
        assert!(out.precedes(&later));
        assert!(!out.precedes(&same_op));
    }
}
