//! Candidate execution strategies per operator (paper §4.1, Figure 2).
//!
//! Every operator has a set of alternative execution strategies, each
//! specifying the partition schemes it *requires* for its inputs and the
//! scheme(s) it *produces*. Matrix multiplication has the three strategies
//! of Figure 2:
//!
//! ```text
//! RMM1:  A(b) × B(c) → AB(c)      (no communication during execution)
//! RMM2:  A(r) × B(b) → AB(r)      (no communication during execution)
//! CPMM:  A(c) × B(r) → AB(r|c)    (output shuffle: N·|AB|)
//! ```
//!
//! Cell-wise operators need both operands under the *same* scheme (row,
//! column, or broadcast) and produce that scheme. Unary operators and
//! reductions are local under any placement and impose no requirement.

use dmac_cluster::PartitionScheme;
use dmac_lang::{BinOp, OpKind};

/// An execution strategy for one operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Replication-based multiplication, left operand broadcast.
    Rmm1,
    /// Replication-based multiplication, right operand broadcast.
    Rmm2,
    /// Cross-product multiplication (output shuffled).
    Cpmm,
    /// Scheme-aligned cell-wise operator at the given scheme.
    CellAligned(PartitionScheme),
    /// Unary operator executed locally under whatever placement the input
    /// has (scheme preserved).
    UnaryLocal,
    /// Reduction executed locally with a driver-side combine.
    ReduceLocal,
}

impl Strategy {
    /// Short display name.
    pub fn name(self) -> String {
        match self {
            Strategy::Rmm1 => "RMM1".into(),
            Strategy::Rmm2 => "RMM2".into(),
            Strategy::Cpmm => "CPMM".into(),
            Strategy::CellAligned(s) => format!("Cell({s})"),
            Strategy::UnaryLocal => "Unary".into(),
            Strategy::ReduceLocal => "Reduce".into(),
        }
    }

    /// Does this strategy's own execution shuffle data (beyond acquiring
    /// its inputs)? Only CPMM does — its partial results are aggregated
    /// across the cluster (§4.1: the output event of CPMM costs `N·|A|`).
    pub fn output_communicates(self) -> bool {
        self == Strategy::Cpmm
    }
}

/// What a strategy yields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutScheme {
    /// The output is materialised under this fixed scheme.
    Fixed(PartitionScheme),
    /// CPMM: the output can be materialised under Row *or* Column at the
    /// same cost — the planner's Re-assignment heuristic picks (Table 1's
    /// `W1ᵀW1(r|c)` notation in Figure 3).
    FlexibleRc,
    /// Reductions produce a driver-side scalar, not a matrix.
    Scalar,
    /// Unary operators keep their input's placement.
    SameAsInput,
}

/// A candidate: the strategy plus its input-scheme requirements and output.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The strategy.
    pub strategy: Strategy,
    /// Required scheme per input (`None` = no requirement, any placement).
    pub inputs: Vec<Option<PartitionScheme>>,
    /// What comes out.
    pub output: OutScheme,
}

/// Enumerate the candidate strategies for an operator. `allow_cpmm` exists
/// for the ablation study (restricting multiplication to RMM1/RMM2).
pub fn candidates(kind: &OpKind, allow_cpmm: bool) -> Vec<Candidate> {
    use PartitionScheme::{Broadcast, Col, Row};
    match kind {
        OpKind::Binary {
            op: BinOp::MatMul, ..
        } => {
            let mut v = vec![
                Candidate {
                    strategy: Strategy::Rmm1,
                    inputs: vec![Some(Broadcast), Some(Col)],
                    output: OutScheme::Fixed(Col),
                },
                Candidate {
                    strategy: Strategy::Rmm2,
                    inputs: vec![Some(Row), Some(Broadcast)],
                    output: OutScheme::Fixed(Row),
                },
            ];
            if allow_cpmm {
                v.push(Candidate {
                    strategy: Strategy::Cpmm,
                    inputs: vec![Some(Col), Some(Row)],
                    output: OutScheme::FlexibleRc,
                });
            }
            v
        }
        OpKind::Binary { .. } => [Row, Col, Broadcast]
            .into_iter()
            .map(|s| Candidate {
                strategy: Strategy::CellAligned(s),
                inputs: vec![Some(s), Some(s)],
                output: OutScheme::Fixed(s),
            })
            .collect(),
        OpKind::Unary { .. } => vec![Candidate {
            strategy: Strategy::UnaryLocal,
            inputs: vec![None],
            output: OutScheme::SameAsInput,
        }],
        OpKind::Reduce { .. } => vec![Candidate {
            strategy: Strategy::ReduceLocal,
            inputs: vec![None],
            output: OutScheme::Scalar,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmac_lang::{Expr, ReduceOp, ScalarExpr, UnaryOp};

    fn matmul_kind() -> OpKind {
        OpKind::Binary {
            op: BinOp::MatMul,
            lhs: Expr::new(0).into(),
            rhs: Expr::new(1).into(),
        }
    }

    #[test]
    fn matmul_has_three_strategies_of_figure2() {
        let c = candidates(&matmul_kind(), true);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].strategy, Strategy::Rmm1);
        assert_eq!(
            c[0].inputs,
            vec![Some(PartitionScheme::Broadcast), Some(PartitionScheme::Col)]
        );
        assert_eq!(c[0].output, OutScheme::Fixed(PartitionScheme::Col));
        assert_eq!(c[1].strategy, Strategy::Rmm2);
        assert_eq!(c[1].output, OutScheme::Fixed(PartitionScheme::Row));
        assert_eq!(c[2].strategy, Strategy::Cpmm);
        assert_eq!(c[2].output, OutScheme::FlexibleRc);
        assert!(c[2].strategy.output_communicates());
        assert!(!c[0].strategy.output_communicates());
    }

    #[test]
    fn cpmm_can_be_disabled_for_ablation() {
        let c = candidates(&matmul_kind(), false);
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|x| x.strategy != Strategy::Cpmm));
    }

    #[test]
    fn cellwise_has_three_aligned_strategies() {
        let kind = OpKind::Binary {
            op: BinOp::CellMul,
            lhs: Expr::new(0).into(),
            rhs: Expr::new(1).into(),
        };
        let c = candidates(&kind, true);
        assert_eq!(c.len(), 3);
        for cand in &c {
            let Strategy::CellAligned(s) = cand.strategy else {
                panic!("wrong strategy");
            };
            assert_eq!(cand.inputs, vec![Some(s), Some(s)]);
            assert_eq!(cand.output, OutScheme::Fixed(s));
        }
    }

    #[test]
    fn unary_and_reduce_impose_no_requirement() {
        let u = OpKind::Unary {
            op: UnaryOp::Scale(ScalarExpr::c(2.0)),
            input: Expr::new(0).into(),
        };
        let c = candidates(&u, true);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].inputs, vec![None]);
        assert_eq!(c[0].output, OutScheme::SameAsInput);

        let r = OpKind::Reduce {
            op: ReduceOp::Sum,
            input: Expr::new(0).into(),
        };
        let c = candidates(&r, true);
        assert_eq!(c[0].output, OutScheme::Scalar);
    }

    #[test]
    fn names_render() {
        assert_eq!(Strategy::Rmm1.name(), "RMM1");
        assert_eq!(
            Strategy::CellAligned(PartitionScheme::Col).name(),
            "Cell(c)"
        );
    }
}
