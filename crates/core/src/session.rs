//! [`Session`]: the user-facing entry point, tying planner, cluster and
//! engine together — the DMac "driver program" (paper §5.4).
//!
//! A session owns a simulated cluster and a [`SharedStore`] of named
//! distributed matrices (its environment). Running a program:
//!
//! 1. resolves every `load` against the store (matrices stored by a
//!    previous run keep their partition schemes — dependency information
//!    flows *across* programs, which is how iterative algorithms avoid
//!    repartitioning loop-invariant inputs like PageRank's link matrix),
//! 2. plans it with the configured system's planner (DMac or SystemML-S),
//! 3. executes the staged plan, and
//! 4. persists `store`d outputs back into the store.
//!
//! By default each session gets a private store; the service layer
//! (`dmac-serve`) builds many sessions over one [`SharedStore`] via
//! [`SessionBuilder::store`], which is what makes named matrices visible
//! across concurrent client sessions.

use std::collections::HashMap;

use dmac_cluster::{
    Cluster, ClusterConfig, DistMatrix, FaultPlan, NetworkModel, PartitionScheme, SocketOptions,
    SocketTransport,
};
use dmac_lang::{Expr, MatrixId, MatrixOrigin, Program};
use dmac_matrix::BlockedMatrix;

use dmac_stats::{DensityClass, SparsityProfile};

use crate::baselines::SystemKind;
use crate::engine::{self, ExecReport};
use crate::error::{CoreError, Result};
use crate::plan::Plan;
use crate::planner::{plan_program_profiled, PlannerConfig};
use crate::recovery::RecoveryPolicy;
use crate::stage;
use crate::store::SharedStore;

/// Builder for [`Session`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    workers: usize,
    local_threads: usize,
    network: NetworkModel,
    system: SystemKind,
    planner: Option<PlannerConfig>,
    block_size: usize,
    seed: u64,
    fault_plan: Option<FaultPlan>,
    recovery: RecoveryPolicy,
    store: Option<SharedStore>,
    transport: TransportChoice,
}

/// Which cluster communication backend a session runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransportChoice {
    /// In-process metered simulator (the default; always available).
    Sim,
    /// Real `dmac-workerd` processes over local TCP sockets.
    Socket(SocketOptions),
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            workers: 4,
            local_threads: 8,
            network: NetworkModel::default(),
            system: SystemKind::Dmac,
            planner: None,
            block_size: 256,
            seed: 0xD11AC,
            fault_plan: None,
            recovery: RecoveryPolicy::default(),
            store: None,
            transport: TransportChoice::Sim,
        }
    }
}

impl SessionBuilder {
    /// Number of simulated workers (the paper's `N`/`K`).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Local threads per worker (the paper's `L`).
    pub fn local_threads(mut self, l: usize) -> Self {
        self.local_threads = l.max(1);
        self
    }

    /// Network model for simulated communication time.
    pub fn network(mut self, n: NetworkModel) -> Self {
        self.network = n;
        self
    }

    /// Which system plans the programs (DMac, SystemML-S, or single-node R).
    pub fn system(mut self, s: SystemKind) -> Self {
        self.system = s;
        self
    }

    /// Override the planner configuration (ablations). Ignored for
    /// [`SystemKind::SystemMlS`], which pins its own config.
    pub fn planner(mut self, cfg: PlannerConfig) -> Self {
        self.planner = Some(cfg);
        self
    }

    /// Square block size used for every matrix in the session.
    pub fn block_size(mut self, b: usize) -> Self {
        self.block_size = b.max(1);
        self
    }

    /// Seed for `RandomMatrix` generation.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Install a deterministic fault-injection plan on the cluster (see
    /// [`FaultPlan`]). Without one, nothing ever fails.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Worker losses tolerated per run before
    /// [`CoreError::RecoveryExhausted`] surfaces. Defaults to 3; `0`
    /// restores fail-fast behaviour.
    pub fn recovery_attempts(mut self, n: usize) -> Self {
        self.recovery = RecoveryPolicy::attempts(n);
        self
    }

    /// Back the session's environment with an existing shared store
    /// instead of a fresh private one. All sessions sharing the store see
    /// each other's `bind`s and `store`d outputs.
    pub fn store(mut self, store: SharedStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Run the session on real `dmac-workerd` processes over local TCP
    /// sockets instead of the in-process simulator. The simulator stays
    /// authoritative; the socket backend mirrors every operation and the
    /// cluster proves the two byte-equal. Launching worker processes can
    /// fail, so sessions with this backend must be built with
    /// [`SessionBuilder::try_build`].
    pub fn socket_transport(mut self, opts: SocketOptions) -> Self {
        self.transport = TransportChoice::Socket(opts);
        self
    }

    /// Build the session, panicking if the transport backend fails to
    /// launch. Infallible for the default simulator backend; sessions
    /// using [`SessionBuilder::socket_transport`] should prefer
    /// [`SessionBuilder::try_build`].
    pub fn build(self) -> Session {
        self.try_build().expect("transport launch failed")
    }

    /// Build the session, surfacing transport launch failures.
    pub fn try_build(self) -> Result<Session> {
        let (workers, mut planner) = match self.system {
            SystemKind::Dmac => (self.workers, self.planner.unwrap_or_default()),
            SystemKind::SystemMlS => (self.workers, PlannerConfig::systemml_s()),
            // R: the same engine confined to one worker — communication
            // disappears, matching the paper's single-machine baseline.
            SystemKind::RLocal => (1, self.planner.unwrap_or_default()),
        };
        // The fusion threshold is measured in blocks, so the planner
        // needs the session's block size to translate matrix shapes.
        planner.fusion_block = self.block_size;
        let config = ClusterConfig {
            workers,
            local_threads: self.local_threads,
            network: self.network,
        };
        let mut cluster = match self.transport {
            TransportChoice::Sim => Cluster::new(config),
            TransportChoice::Socket(opts) => {
                let transport = SocketTransport::launch(workers, opts)?;
                Cluster::with_transport(config, Box::new(transport))
            }
        };
        let env = self.store.unwrap_or_default();
        if let Some(plan) = self.fault_plan {
            // Durability crash points live in the store's disk tier;
            // stage/op kills live in the cluster. One plan arms both.
            env.arm_crashes(&plan);
            cluster.set_fault_plan(plan);
        }
        Ok(Session {
            cluster,
            planner,
            system: self.system,
            block_size: self.block_size,
            seed: self.seed,
            recovery: self.recovery,
            env,
            last_values: HashMap::new(),
            last_scalars: HashMap::new(),
            last_report: None,
        })
    }
}

/// A DMac session: cluster + shared matrix store + planner configuration.
#[derive(Debug)]
pub struct Session {
    cluster: Cluster,
    planner: PlannerConfig,
    system: SystemKind,
    block_size: usize,
    seed: u64,
    recovery: RecoveryPolicy,
    env: SharedStore,
    last_values: HashMap<MatrixId, DistMatrix>,
    last_scalars: HashMap<dmac_lang::ScalarId, f64>,
    last_report: Option<ExecReport>,
}

impl Session {
    /// Start building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The session's block size.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The configured system kind.
    pub fn system(&self) -> SystemKind {
        self.system
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.cluster.workers()
    }

    /// Access the underlying cluster (meters, failure injection).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Name of the cluster communication backend (`"sim"` or `"socket"`).
    pub fn transport_name(&self) -> &'static str {
        self.cluster.transport_name()
    }

    /// Whether the backend runs real worker processes.
    pub fn transport_is_physical(&self) -> bool {
        self.cluster.transport_is_physical()
    }

    /// The transport backend's cumulative wire counters (frames, payload
    /// bytes, relay/peer bytes, dispatch rounds).
    pub fn transport_stats(&self) -> dmac_cluster::TransportStats {
        self.cluster.transport_stats()
    }

    /// Cleanly stop the transport backend. On the socket backend this
    /// asks every worker process to exit and reaps it, erroring if any
    /// child had to be killed. The simulator backend is a no-op.
    pub fn shutdown_transport(&mut self) -> Result<()> {
        self.cluster.shutdown_transport()?;
        Ok(())
    }

    /// Bind a local matrix under `name`, reblocking to the session's block
    /// size and scattering it hash-partitioned (a freshly loaded RDD).
    pub fn bind(&mut self, name: &str, m: BlockedMatrix) -> Result<()> {
        let m = if m.block_size() == self.block_size {
            m
        } else {
            m.reblock(self.block_size)?
        };
        let dist = self.cluster.load(&m, PartitionScheme::Hash);
        self.env.insert(name, dist)?;
        Ok(())
    }

    /// Bind an already-distributed matrix (keeps its scheme).
    pub fn bind_dist(&mut self, name: &str, m: DistMatrix) -> Result<()> {
        self.env.insert(name, m)?;
        Ok(())
    }

    /// Is a name bound?
    pub fn is_bound(&self, name: &str) -> bool {
        self.env.contains(name)
    }

    /// Drop a named matrix from the store, eagerly releasing its blocks
    /// (the store's LRU eviction builds on the same release path).
    /// Returns whether the name was bound.
    pub fn drop_matrix(&mut self, name: &str) -> bool {
        self.env.remove(name)
    }

    /// The store backing this session's environment (shared with other
    /// sessions when built via [`SessionBuilder::store`]).
    pub fn shared_store(&self) -> &SharedStore {
        &self.env
    }

    /// Fetch a stored environment matrix as a local blocked matrix.
    pub fn env_value(&self, name: &str) -> Result<BlockedMatrix> {
        let d = self
            .env
            .get(name)
            .ok_or_else(|| CoreError::Unbound(name.to_string()))?;
        Ok(d.to_blocked()?)
    }

    fn resolve_inputs(
        &self,
        program: &Program,
    ) -> Result<(
        HashMap<MatrixId, DistMatrix>,
        HashMap<MatrixId, PartitionScheme>,
    )> {
        let mut bindings = HashMap::new();
        let mut initial = HashMap::new();
        for decl in program.matrices() {
            match decl.origin {
                MatrixOrigin::Load => {
                    let dist = self
                        .env
                        .get(&decl.name)
                        .ok_or_else(|| CoreError::Unbound(decl.name.clone()))?;
                    initial.insert(decl.id, dist.scheme());
                    bindings.insert(decl.id, dist);
                }
                MatrixOrigin::Random => {
                    initial.insert(decl.id, PartitionScheme::Hash);
                }
                MatrixOrigin::Op(_) => {}
            }
        }
        Ok((bindings, initial))
    }

    /// Measured sparsity profiles of a run's load bindings (the
    /// "computed at load" half of the statistics subsystem): every bound
    /// input gets an exact per-block-strip nnz census, which the
    /// estimator then propagates through the whole program.
    fn measured_profiles(
        bindings: &HashMap<MatrixId, DistMatrix>,
    ) -> HashMap<MatrixId, SparsityProfile> {
        bindings
            .iter()
            .map(|(&mid, d)| (mid, crate::profile::measure_dist(d)))
            .collect()
    }

    /// Best-effort source profiles for planning without execution
    /// (`plan_only` / `prepare` / `explain`): measure whatever is
    /// *resident* in the store right now. Spilled or unbound inputs fall
    /// back to the declaration's uniform sparsity inside the estimator.
    fn peeked_profiles(&self, program: &Program) -> HashMap<MatrixId, SparsityProfile> {
        let mut out = HashMap::new();
        for decl in program.matrices() {
            if matches!(decl.origin, MatrixOrigin::Load) {
                if let Some(d) = self.env.peek(&decl.name) {
                    out.insert(decl.id, crate::profile::measure_dist(&d));
                }
            }
        }
        out
    }

    /// Initial schemes for planning: bound load inputs keep their cached
    /// scheme, everything else is assumed Hash-placed. Planning needs no
    /// data, so unbound loads are fine here (unlike [`Session::run`]).
    ///
    /// Random matrices are always Hash: the engine generates them fresh
    /// each run, so a store entry that happens to share a random
    /// variable's name (GNMF stores `H` over its own `random` input)
    /// must not leak its scheme into the plan — [`Session::run_prepared`]
    /// checks staleness against the same Hash assumption.
    fn initial_schemes(&self, program: &Program) -> HashMap<MatrixId, PartitionScheme> {
        let mut initial = HashMap::new();
        for decl in program.matrices() {
            match decl.origin {
                MatrixOrigin::Load => {
                    let scheme = self
                        .env
                        .scheme_of(&decl.name)
                        .unwrap_or(PartitionScheme::Hash);
                    initial.insert(decl.id, scheme);
                }
                MatrixOrigin::Random => {
                    initial.insert(decl.id, PartitionScheme::Hash);
                }
                MatrixOrigin::Op(_) => {}
            }
        }
        initial
    }

    /// Plan a program without executing it. In debug builds, any
    /// installed plan verifier (see [`crate::verifyhook`]) re-checks the
    /// plan's invariants before it is returned.
    pub fn plan_only(&self, program: &Program) -> Result<Plan> {
        let initial = self.initial_schemes(program);
        let sources = self.peeked_profiles(program);
        let planned = plan_program_profiled(
            program,
            &self.planner,
            self.cluster.workers(),
            &initial,
            &sources,
        )?;
        crate::verifyhook::check(program, &planned, &self.planner, self.cluster.workers())?;
        Ok(planned.plan)
    }

    /// Plan a program once for repeated execution ([`Session::run_prepared`]).
    /// The plan is bound to the *current* placements of the session's
    /// environment; if a later run finds an input under a different
    /// scheme, `run_prepared` rejects it (re-`prepare` instead).
    pub fn prepare(&self, program: &Program) -> Result<PreparedProgram> {
        let initial = self.initial_schemes(program);
        let sources = self.peeked_profiles(program);
        let planned = plan_program_profiled(
            program,
            &self.planner,
            self.cluster.workers(),
            &initial,
            &sources,
        )?;
        crate::verifyhook::check(program, &planned, &self.planner, self.cluster.workers())?;
        Ok(PreparedProgram {
            program: program.clone(),
            planned,
            initial,
        })
    }

    /// Execute a prepared plan against the current environment, skipping
    /// planning. Fails with [`CoreError::Planner`] if any input's cached
    /// placement no longer matches what the plan assumed.
    pub fn run_prepared(&mut self, prep: &PreparedProgram) -> Result<ExecReport> {
        let spill0 = self.env.spill_traffic();
        let (bindings, current) = self.resolve_inputs(&prep.program)?;
        for (mid, scheme) in &prep.initial {
            if current.get(mid) != Some(scheme) {
                let name = prep
                    .program
                    .decl(*mid)
                    .map(|d| d.name.clone())
                    .unwrap_or_else(|_| format!("m{mid}"));
                return Err(CoreError::Planner(format!(
                    "prepared plan is stale: input '{name}' moved from {scheme} to {}; re-prepare",
                    current
                        .get(mid)
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| "unbound".into())
                )));
            }
        }
        let result = engine::execute(
            &mut self.cluster,
            &prep.program,
            &prep.planned.plan,
            &bindings,
            self.block_size,
            self.seed,
            prep.planned.estimated_comm,
            &self.recovery,
            Some(&self.env),
        );
        // The run is over (successfully or not): its values are released,
        // so the store no longer carries their pressure.
        let _ = self.env.set_external_pressure(0);
        let (report, outputs) = result?;
        let mut report = report;
        crate::verifyhook::check_run(&prep.planned.certificate, &report.trace)?;
        self.absorb_outputs(&prep.program, outputs)?;
        report.trace.spill = self.env.spill_traffic().since(&spill0);
        self.last_report = Some(report.clone());
        Ok(report)
    }

    /// EXPLAIN: render the plan, its stage schedule, the estimator's
    /// per-step predicted output nnz / density class, and the liveness
    /// pass's memory certificate.
    pub fn explain(&self, program: &Program) -> Result<String> {
        let initial = self.initial_schemes(program);
        let sources = self.peeked_profiles(program);
        let planned = plan_program_profiled(
            program,
            &self.planner,
            self.cluster.workers(),
            &initial,
            &sources,
        )?;
        crate::verifyhook::check(program, &planned, &self.planner, self.cluster.workers())?;
        let plan = &planned.plan;
        let cert = &planned.certificate;
        Ok(format!(
            "{}\n{}{}memory: certified peak {} bytes at step {} over {} steps\n",
            plan.explain(program),
            stage::explain_stages(plan, program),
            explain_sparsity(plan, program),
            cert.peak,
            cert.argmax,
            plan.steps.len(),
        ))
    }

    /// Plan and execute a program; persists `store`d outputs.
    pub fn run(&mut self, program: &Program) -> Result<ExecReport> {
        let spill0 = self.env.spill_traffic();
        let (bindings, initial) = self.resolve_inputs(program)?;
        let sources = Self::measured_profiles(&bindings);
        let planned = plan_program_profiled(
            program,
            &self.planner,
            self.cluster.workers(),
            &initial,
            &sources,
        )?;
        crate::verifyhook::check(program, &planned, &self.planner, self.cluster.workers())?;
        let result = engine::execute(
            &mut self.cluster,
            program,
            &planned.plan,
            &bindings,
            self.block_size,
            self.seed,
            planned.estimated_comm,
            &self.recovery,
            Some(&self.env),
        );
        // The run is over (successfully or not): its values are released,
        // so the store no longer carries their pressure.
        let _ = self.env.set_external_pressure(0);
        let (report, outputs) = result?;
        let mut report = report;
        crate::verifyhook::check_run(&planned.certificate, &report.trace)?;
        self.absorb_outputs(program, outputs)?;
        report.trace.spill = self.env.spill_traffic().since(&spill0);
        self.last_report = Some(report.clone());
        Ok(report)
    }

    /// Publish a durable snapshot of the named store entries at `phase`
    /// (see [`SharedStore::checkpoint`]). Iterative drivers call this at
    /// phase boundaries so a crashed run resumes from the snapshot
    /// instead of replaying its full lineage.
    pub fn checkpoint(&self, names: &[String], phase: u64) -> Result<u64> {
        self.env.checkpoint(names, phase)
    }

    /// Fold a run's outputs into the session: persist `store`d matrices,
    /// cache improved input placements (DMac only — SystemML-S's cache
    /// stays hash-partitioned, per the paper), and expose output values.
    /// Store inserts may displace entries to disk; an over-commit or disk
    /// failure there surfaces as the run's error.
    fn absorb_outputs(&mut self, program: &Program, outputs: engine::RunOutputs) -> Result<()> {
        if self.planner.exploit_dependencies {
            for (mid, dist) in outputs.cached_inputs {
                if let Ok(decl) = program.decl(mid) {
                    self.env.insert(&decl.name, dist)?;
                }
            }
        }
        for (name, dist) in outputs.stored {
            self.env.insert(&name, dist)?;
        }
        self.last_values = outputs.matrices;
        self.last_scalars = outputs.scalars;
        Ok(())
    }

    /// A matrix output of the last run, gathered to the driver.
    pub fn value(&self, e: Expr) -> Result<BlockedMatrix> {
        let d = self.last_values.get(&e.id).ok_or_else(|| {
            CoreError::NoValue(format!("matrix {} is not an output of the last run", e.id))
        })?;
        let m = d.to_blocked()?;
        Ok(if e.transposed { m.transpose() } else { m })
    }

    /// A matrix output of the last run, gathered **from the physical
    /// workers** instead of the in-process oracle. `Ok(None)` on the
    /// simulator backend (there is no second copy to gather). On the
    /// socket backend the returned matrix is reassembled purely from
    /// tile bytes shipped back by `dmac-workerd` processes, so comparing
    /// it bit-for-bit against [`Session::value`] proves the real cluster
    /// holds exactly the state the oracle says it should.
    pub fn value_physical(&mut self, e: Expr) -> Result<Option<BlockedMatrix>> {
        let d = self
            .last_values
            .get(&e.id)
            .ok_or_else(|| {
                CoreError::NoValue(format!("matrix {} is not an output of the last run", e.id))
            })?
            .clone();
        match self.cluster.gather_physical(&d)? {
            None => Ok(None),
            Some(g) => {
                let m = g.to_blocked()?;
                Ok(Some(if e.transposed { m.transpose() } else { m }))
            }
        }
    }

    /// Evaluate a scalar expression against the last run's reduction
    /// results (the driver-side α/β values of CG and Lanczos).
    pub fn scalar_value(&self, e: &dmac_lang::ScalarExpr) -> Result<f64> {
        for dep in e.deps() {
            if !self.last_scalars.contains_key(&dep) {
                return Err(CoreError::NoValue(format!(
                    "scalar {dep} was not produced by the last run"
                )));
            }
        }
        Ok(e.eval(&|id| self.last_scalars[&id]))
    }

    /// The report of the last run.
    pub fn last_report(&self) -> Option<&ExecReport> {
        self.last_report.as_ref()
    }

    /// The flight-recorder trace of the last run (see [`crate::trace`]).
    pub fn last_trace(&self) -> Option<&crate::trace::Trace> {
        self.last_report.as_ref().map(|r| &r.trace)
    }
}

/// Render the estimator's view of a plan: predicted output nnz and
/// density class for every matrix-producing step.
fn explain_sparsity(plan: &Plan, program: &Program) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("sparsity (predicted):\n");
    for (i, step) in plan.steps.iter().enumerate() {
        let Some(out) = step.out_node() else { continue };
        let nnz = plan.step_predicted_nnz(i);
        let Ok(decl) = program.decl(plan.nodes[out].matrix) else {
            continue;
        };
        let class = DensityClass::classify(nnz, decl.stats.rows, decl.stats.cols);
        let _ = writeln!(
            s,
            "  step {:>3}: nnz={} class={} [{}]",
            i,
            nnz,
            class.as_str(),
            plan.node_label(program, out)
        );
    }
    s
}

/// A program planned once for repeated execution (see
/// [`Session::prepare`]).
#[derive(Debug, Clone)]
pub struct PreparedProgram {
    program: Program,
    planned: crate::planner::Planned,
    initial: HashMap<MatrixId, PartitionScheme>,
}

impl PreparedProgram {
    /// The cached plan.
    pub fn plan(&self) -> &Plan {
        &self.planned.plan
    }

    /// The planner's communication estimate.
    pub fn estimated_comm(&self) -> u64 {
        self.planned.estimated_comm
    }

    /// The liveness pass's memory certificate: the step-indexed upper
    /// bound on resident bytes this plan is guaranteed to respect.
    pub fn certificate(&self) -> &crate::plan::MemoryCertificate {
        &self.planned.certificate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> BlockedMatrix {
        BlockedMatrix::from_fn(rows, cols, 8, |i, j| ((i * cols + j) % 7) as f64 - 3.0).unwrap()
    }

    #[test]
    fn end_to_end_cellwise_chain_matches_local() {
        let mut s = Session::builder()
            .workers(3)
            .local_threads(2)
            .block_size(8)
            .build();
        let a = ramp(20, 16);
        let b = ramp(20, 16);
        s.bind("A", a.clone()).unwrap();
        s.bind("B", b.clone()).unwrap();

        let mut p = Program::new();
        let ea = p.load("A", 20, 16, 1.0);
        let eb = p.load("B", 20, 16, 1.0);
        let sum = p.add(ea, eb).unwrap();
        let prod = p.cell_mul(sum, sum).unwrap();
        p.output(prod);

        let report = s.run(&p).unwrap();
        let got = s.value(prod).unwrap();
        let expect = a.add(&b).unwrap();
        let expect = expect.cell_mul(&expect).unwrap();
        assert_eq!(got.to_dense(), expect.to_dense());
        assert!(report.stage_count >= 1);
    }

    #[test]
    fn end_to_end_matmul_matches_local() {
        let mut s = Session::builder()
            .workers(4)
            .local_threads(2)
            .block_size(8)
            .build();
        let a = ramp(24, 16);
        s.bind("A", a.clone()).unwrap();

        let mut p = Program::new();
        let ea = p.load("A", 24, 16, 1.0);
        let g = p.matmul(ea.t(), ea).unwrap(); // gram matrix
        p.output(g);
        s.run(&p).unwrap();
        let got = s.value(g).unwrap();
        let expect = a.transpose().matmul_reference(&a).unwrap();
        if let Some(i) =
            dmac_matrix::approx_eq_slice(got.to_dense().data(), expect.to_dense().data(), 1e-9)
        {
            panic!("mismatch at {i}");
        }
    }

    #[test]
    fn unbound_load_is_an_error() {
        let mut s = Session::builder().build();
        let mut p = Program::new();
        let a = p.load("NOPE", 4, 4, 1.0);
        p.output(a);
        assert!(matches!(s.run(&p), Err(CoreError::Unbound(_))));
    }

    #[test]
    fn shape_mismatch_binding_is_an_error() {
        let mut s = Session::builder().block_size(4).build();
        s.bind("A", ramp(8, 8)).unwrap();
        let mut p = Program::new();
        let a = p.load("A", 9, 9, 1.0); // declared wrong
        let b = p.scale_const(a, 2.0).unwrap();
        p.output(b);
        assert!(matches!(s.run(&p), Err(CoreError::Engine(_))));
    }

    #[test]
    fn stored_outputs_persist_with_their_scheme() {
        let mut s = Session::builder().workers(2).block_size(8).build();
        s.bind("A", ramp(16, 16)).unwrap();
        let mut p = Program::new();
        let a = p.load("A", 16, 16, 1.0);
        let b = p.add(a, a).unwrap();
        p.store(b, "B");
        s.run(&p).unwrap();
        assert!(s.is_bound("B"));
        // Second program consuming B under its cached scheme must be free.
        let mut p2 = Program::new();
        let eb = p2.load("B", 16, 16, 1.0);
        let c = p2.cell_mul(eb, eb).unwrap();
        p2.output(c);
        let plan = s.plan_only(&p2).unwrap();
        assert_eq!(plan.comm_step_count(), 0, "{}", plan.explain(&p2));
    }

    #[test]
    fn scalars_flow_through_reductions() {
        let mut s = Session::builder().workers(2).block_size(4).build();
        s.bind("A", ramp(8, 8)).unwrap();
        let mut p = Program::new();
        let a = p.load("A", 8, 8, 1.0);
        let total = p.sum(a).unwrap();
        let scaled = p.scale(a, total).unwrap();
        p.output(scaled);
        s.run(&p).unwrap();
        let got = s.value(scaled).unwrap();
        let local = ramp(8, 8);
        let expect = local.scale(local.sum());
        assert_eq!(got.to_dense(), expect.to_dense());
    }

    #[test]
    fn random_matrices_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut s = Session::builder()
                .workers(2)
                .block_size(4)
                .seed(seed)
                .build();
            let mut p = Program::new();
            let w = p.random("W", 8, 8);
            let x = p.add(w, w).unwrap();
            p.output(x);
            s.run(&p).unwrap();
            s.value(x).unwrap().to_dense()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1).data(), run(2).data());
    }

    #[test]
    fn rlocal_uses_one_worker_and_no_comm_time() {
        let mut s = Session::builder()
            .system(SystemKind::RLocal)
            .workers(8) // ignored
            .block_size(8)
            .build();
        assert_eq!(s.workers(), 1);
        s.bind("A", ramp(16, 16)).unwrap();
        let mut p = Program::new();
        let a = p.load("A", 16, 16, 1.0);
        let b = p.matmul(a, a).unwrap();
        p.output(b);
        let report = s.run(&p).unwrap();
        assert_eq!(
            report.comm.total_bytes(),
            report
                .comm
                .events()
                .iter()
                .filter(|e| e.label == "reduce")
                .map(|e| e.bytes)
                .sum::<u64>(),
            "single worker moves no matrix bytes"
        );
    }

    #[test]
    fn storing_over_a_name_releases_the_old_entry() {
        let mut s = Session::builder().workers(2).block_size(8).build();
        s.bind("A", ramp(32, 32)).unwrap();
        let stats0 = s.shared_store().stats();
        // Re-bind a smaller matrix under the same name: resident bytes
        // must shrink, not accumulate (the PR-1-era leak).
        s.bind("A", ramp(8, 8)).unwrap();
        let stats1 = s.shared_store().stats();
        assert_eq!(stats1.entries, 1);
        assert!(stats1.bytes < stats0.bytes, "{stats1:?} vs {stats0:?}");
        assert_eq!(stats1.replaced, 1);
        // And drop_matrix releases eagerly too.
        assert!(s.drop_matrix("A"));
        assert!(!s.drop_matrix("A"));
        assert_eq!(s.shared_store().stats().bytes, 0);
        assert!(!s.is_bound("A"));
    }

    #[test]
    fn sessions_share_a_store() {
        let store = crate::store::SharedStore::new();
        let mut a = Session::builder()
            .workers(2)
            .block_size(8)
            .store(store.clone())
            .build();
        let b = Session::builder()
            .workers(2)
            .block_size(8)
            .store(store)
            .build();
        a.bind("A", ramp(16, 16)).unwrap();
        assert!(b.is_bound("A"));
        // A program run in session A that stores B is visible in session B.
        let mut p = Program::new();
        let ea = p.load("A", 16, 16, 1.0);
        let sum = p.add(ea, ea).unwrap();
        p.store(sum, "B");
        a.run(&p).unwrap();
        let got = b.env_value("B").unwrap();
        let local = ramp(16, 16);
        assert_eq!(got.to_dense(), local.add(&local).unwrap().to_dense());
    }

    #[test]
    fn transposed_value_retrieval() {
        let mut s = Session::builder().workers(2).block_size(4).build();
        s.bind("A", ramp(8, 6)).unwrap();
        let mut p = Program::new();
        let a = p.load("A", 8, 6, 1.0);
        let b = p.add(a, a).unwrap();
        p.output(b);
        s.run(&p).unwrap();
        let vt = s.value(b.t()).unwrap();
        assert_eq!(vt.rows(), 6);
        assert_eq!(vt.cols(), 8);
    }
}
