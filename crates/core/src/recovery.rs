//! Lineage-based stage recovery (the runtime's answer to worker loss).
//!
//! Real DMac runs on Spark and inherits RDD lineage: when an executor
//! dies, the partitions it held are recomputed from their parents, back to
//! durable input data. This module reproduces that contract for the
//! simulated cluster, at **stage granularity**:
//!
//! 1. the dead host is [`decommissioned`](dmac_cluster::Cluster::decommission)
//!    and its logical workers are remapped onto the survivors (logical
//!    worker count — and therefore every f64 summation order — is
//!    unchanged, so recovered runs are bit-for-bit identical to healthy
//!    ones);
//! 2. every live value that lost tiles with the host is rebuilt by walking
//!    the plan's lineage: source nodes are re-fetched from their durable
//!    bindings (metered as [`CommKind::Recovery`](dmac_cluster::CommKind)
//!    traffic), `random` sources are regenerated from the recorded seed,
//!    and intermediate nodes are recomputed by deterministically replaying
//!    their producing steps;
//! 3. the engine re-executes the step that observed the failure and
//!    continues — the caller never sees the fault unless the attempt
//!    budget runs out, in which case the run fails with the typed
//!    [`CoreError::RecoveryExhausted`].
//!
//! Stage granularity is deliberately coarse (and honest about its cost): a
//! damaged Broadcast value is rebuilt by replaying the whole broadcast
//! rather than copying surviving replicas, so recovery overhead reported
//! by [`RecoveryStats`] is an upper bound on what a finer-grained runtime
//! would pay. See DESIGN.md §8.

use std::collections::{HashMap, HashSet};

use dmac_cluster::{Cluster, DistMatrix};
use dmac_lang::ScalarId;

use crate::engine::{exec_step, seed_source, ExecCtx};
use crate::error::{CoreError, Result};

/// How the engine responds to worker loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Worker losses tolerated per run before giving up with
    /// [`CoreError::RecoveryExhausted`]. `0` means fail fast (the
    /// pre-recovery behaviour).
    pub max_attempts: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_attempts: 3 }
    }
}

impl RecoveryPolicy {
    /// Tolerate up to `n` worker losses per run.
    pub fn attempts(n: usize) -> RecoveryPolicy {
        RecoveryPolicy { max_attempts: n }
    }

    /// Fail fast on the first worker loss.
    pub fn disabled() -> RecoveryPolicy {
        RecoveryPolicy { max_attempts: 0 }
    }
}

/// What recovery cost a run, as reported in
/// [`ExecReport`](crate::engine::ExecReport).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    /// Worker losses observed (each consumes one attempt).
    pub worker_failures: usize,
    /// Completed recovery rounds (a round may span nested failures).
    pub recovery_rounds: usize,
    /// Plan steps replayed to rebuild lost state.
    pub replayed_steps: usize,
    /// Distinct stages those replayed steps belonged to.
    pub re_executed_stages: usize,
    /// Source nodes re-seeded from durable bindings (or regenerated).
    pub refetched_sources: usize,
    /// Extra bytes moved because of failures: wasted partial attempts,
    /// re-fetched sources, replayed shuffles/broadcasts, and send retries.
    pub recovery_bytes: u64,
    /// Simulated seconds spent on failed attempts plus recovery work
    /// (already included in the report's total clock).
    pub recovery_sec: f64,
}

impl RecoveryStats {
    /// Did any failure occur?
    pub fn any(&self) -> bool {
        self.worker_failures > 0
    }
}

/// Recover from the loss of `dead_host` observed while executing
/// `resume_step`: decommission the host, rebuild every damaged live value
/// through lineage, and drop rebuilt values the resumed execution no
/// longer needs. On return the engine can re-execute `resume_step` as if
/// the failure never happened. Scalars live on the driver and survive
/// untouched; they are passed through because replayed steps may read
/// them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn recover(
    cluster: &mut Cluster,
    ctx: &ExecCtx<'_>,
    values: &mut [Option<DistMatrix>],
    scalars: &mut HashMap<ScalarId, f64>,
    resume_step: usize,
    dead_host: usize,
    last_use: &[usize],
    keep: &[bool],
    stats: &mut RecoveryStats,
) -> Result<()> {
    let lost = cluster.decommission(dead_host)?;
    for v in values.iter_mut().flatten() {
        v.drop_workers(&lost);
    }

    // Rebuild every damaged live value, plus whatever the resumed step
    // consumes (its inputs are live by construction, but ensure() is the
    // single place that decides whether a value is intact).
    let mut replayed_stages: HashSet<usize> = HashSet::new();
    let mut need: Vec<usize> = (0..values.len()).filter(|&n| values[n].is_some()).collect();
    // A resumed `free` step only drops its operand — rebuilding it through
    // lineage would replay work just to throw the value away.
    if !matches!(
        ctx.plan.steps[resume_step],
        crate::plan::PlanStep::Free { .. }
    ) {
        need.extend(ctx.plan.steps[resume_step].in_nodes());
    }
    for node in need {
        ensure(
            cluster,
            ctx,
            values,
            scalars,
            node,
            stats,
            &mut replayed_stages,
        )?;
    }
    stats.re_executed_stages += replayed_stages.len();

    // Lineage replay may have resurrected values whose last consumer
    // already ran; release them again.
    for (n, v) in values.iter_mut().enumerate() {
        if !keep[n] && last_use[n] < resume_step {
            *v = None;
        }
    }
    Ok(())
}

/// Make `node`'s value complete, replaying lineage as needed: intact
/// values are left alone, sources are re-seeded from durable bindings,
/// intermediates are recomputed by replaying their producing step (after
/// recursively ensuring that step's inputs).
fn ensure(
    cluster: &mut Cluster,
    ctx: &ExecCtx<'_>,
    values: &mut [Option<DistMatrix>],
    scalars: &mut HashMap<ScalarId, f64>,
    node: usize,
    stats: &mut RecoveryStats,
    replayed_stages: &mut HashSet<usize>,
) -> Result<()> {
    if let Some(v) = &values[node] {
        if v.validate().is_ok() {
            return Ok(());
        }
    }
    if let Some(&mid) = ctx.sources.get(&node) {
        values[node] = Some(seed_source(cluster, ctx, node, mid, true)?);
        stats.refetched_sources += 1;
        return Ok(());
    }
    let step_idx = ctx.producer[node].ok_or_else(|| {
        CoreError::Engine(format!("node {node} has no producer for lineage replay"))
    })?;
    for n in ctx.plan.steps[step_idx].in_nodes() {
        ensure(cluster, ctx, values, scalars, n, stats, replayed_stages)?;
    }
    exec_step(cluster, ctx, step_idx, values, scalars)?;
    stats.replayed_steps += 1;
    replayed_stages.insert(ctx.step_stage[step_idx]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_defaults_and_constructors() {
        assert_eq!(RecoveryPolicy::default().max_attempts, 3);
        assert_eq!(RecoveryPolicy::disabled().max_attempts, 0);
        assert_eq!(RecoveryPolicy::attempts(7).max_attempts, 7);
    }

    #[test]
    fn stats_report_activity() {
        let mut s = RecoveryStats::default();
        assert!(!s.any());
        s.worker_failures = 1;
        assert!(s.any());
    }
}
