//! The plan-generation algorithm (paper §4.2, Algorithm 1).
//!
//! The planner walks the decomposed operator sequence in program order
//! (multiplications hoisted among simultaneously-ready operators, §4.2.3).
//! For each operator it:
//!
//! 1. enumerates the candidate strategies ([`crate::strategy::candidates`]),
//! 2. prices each candidate with the dependency-oriented cost model — an
//!    input event is free exactly when a Non-Communication dependency
//!    (Reference / Transpose / Extract / Extract-Transpose) links it to an
//!    output event already in the `OutputSet`,
//! 3. commits the `argmin` strategy, emitting the extended operators
//!    (`partition` / `broadcast` / `transpose` / `extract`) that realise
//!    each input's dependency,
//! 4. registers repartitioned copies in the `OutputSet` (Algorithm 1,
//!    line 19) so later operators reuse them, and
//! 5. applies **Heuristic 1 (Pull-Up Broadcast)** — when a broadcast
//!    requirement meets an earlier paid partition of the same matrix, the
//!    earlier partition is rewritten into a broadcast + extract — and
//!    **Heuristic 2 (Re-assignment)** — CPMM outputs stay `r|c`-flexible
//!    until their first consumer pins the scheme that makes it free.
//!
//! With `exploit_dependencies = false` the same machinery plans like
//! **SystemML-S**: every input event is priced and satisfied as if nothing
//! were reusable (each operator repartitions its inputs from the
//! hash-partitioned cache), which is exactly the baseline of §6.1.

use std::collections::HashMap;

use dmac_cluster::PartitionScheme;
use dmac_lang::{MatrixId, MatrixOrigin, MatrixRef, Program};
use dmac_stats::SparsityProfile;

use crate::cost::CostModel;
use crate::error::{CoreError, Result};
use crate::plan::{MemoryCertificate, NodeId, Plan, PlanStep};
use crate::strategy::{candidates, Candidate, OutScheme};

/// Planner knobs. Defaults reproduce full DMac; the ablation benches and
/// the SystemML-S baseline flip individual switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Track matrix dependencies across operators (the paper's core idea).
    /// `false` plans like SystemML-S.
    pub exploit_dependencies: bool,
    /// §4.2.3: hoist ready multiplications in the decomposition order.
    pub multiplication_first: bool,
    /// Heuristic 1: Pull-Up Broadcast.
    pub pull_up_broadcast: bool,
    /// Heuristic 2: Re-assignment of flexible output schemes.
    pub re_assignment: bool,
    /// Allow the CPMM strategy (ablation switch).
    pub allow_cpmm: bool,
    /// Collapse chains of scheme-aligned cell-wise operators into
    /// single-pass [`PlanStep::FusedCellWise`] steps (purely local; never
    /// changes communication).
    pub fuse_cellwise: bool,
    /// Only fuse a chain whose root output spans at least this many
    /// blocks. On tiny grids the fused interpreter's per-call overhead
    /// exceeds the saved materialisations and fusion *loses* wall time,
    /// so small chains keep their plain cell-wise steps.
    pub fusion_min_blocks: usize,
    /// Block size used to translate matrix shapes into block counts for
    /// the threshold. [`crate::session::SessionBuilder::build`] overwrites
    /// this with the session's block size.
    pub fusion_block: usize,
    /// Cost acquisitions from predicted-nnz bytes (`8 · nnz` of the
    /// propagated [`SparsityProfile`]) instead of the static worst-case
    /// `est_bytes`. Dense inputs are the `density = 1.0` special case and
    /// price identically; sparse inputs stop being costed as dense.
    /// Profiles are propagated either way — this only gates the pricing.
    pub density_adaptive: bool,
    /// Splice explicit [`PlanStep::Free`] steps at each intermediate's
    /// last use (see [`crate::liveness`]), so the executor releases
    /// values early instead of retaining every intermediate to run end.
    /// Never changes results or communication; `false` is the
    /// retain-to-end baseline the memory bench compares against.
    pub splice_frees: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            exploit_dependencies: true,
            multiplication_first: true,
            pull_up_broadcast: true,
            re_assignment: true,
            allow_cpmm: true,
            fuse_cellwise: true,
            fusion_min_blocks: 32,
            fusion_block: 256,
            density_adaptive: true,
            splice_frees: true,
        }
    }
}

impl PlannerConfig {
    /// The SystemML-S baseline: same strategies and cost model, no
    /// dependency tracking, no heuristics.
    pub fn systemml_s() -> PlannerConfig {
        PlannerConfig {
            exploit_dependencies: false,
            multiplication_first: false,
            pull_up_broadcast: false,
            re_assignment: false,
            allow_cpmm: true,
            fuse_cellwise: false,
            fusion_min_blocks: 32,
            fusion_block: 256,
            density_adaptive: true,
            splice_frees: true,
        }
    }
}

/// Element of the planner's `InputSet` (Algorithm 1, line 22): a paid
/// input event that Pull-Up Broadcast may later rewrite.
#[derive(Debug, Clone)]
struct InputRecord {
    matrix: MatrixId,
    scheme: PartitionScheme,
    cost: u64,
    /// Index of the `partition` step that satisfied this event, while it
    /// is still eligible for pull-up.
    partition_step: Option<usize>,
}

/// Result of planning: the plan plus the planner's own cost estimate.
#[derive(Debug, Clone)]
pub struct Planned {
    /// The generated execution plan.
    pub plan: Plan,
    /// The planner's estimated total communication (cost-model units:
    /// worst-case bytes, or predicted-nnz bytes under
    /// [`PlannerConfig::density_adaptive`]).
    pub estimated_comm: u64,
    /// Propagated sparsity profile per declared matrix (indexed by
    /// [`MatrixId`]); the basis of the nnz-costed pricing and of the
    /// per-step predicted nnz recorded into the plan.
    pub profiles: Vec<SparsityProfile>,
    /// Step-indexed upper bound on resident bytes (see
    /// [`crate::liveness::certificate`]): the admission-time memory
    /// contract the verifier re-derives (V20) and the engine's metering
    /// must stay under (V21).
    pub certificate: MemoryCertificate,
}

/// How a free (non-communication) acquisition would be realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FreePath {
    /// Reference dependency: the node itself.
    Exact(NodeId),
    /// Re-assignment: pin a flexible node to the required scheme.
    PinFlexible(NodeId),
    /// Pin a flexible node to the flipped scheme, then transpose.
    PinFlexibleTranspose(NodeId),
    /// Transpose dependency.
    Transpose(NodeId),
    /// Extract dependency.
    Extract(NodeId),
    /// Extract-Transpose dependency (transpose the broadcast copy, then
    /// extract).
    TransposeExtract(NodeId),
}

/// Generate an execution plan for `program`.
///
/// `initial_schemes` gives the placement each load/random starts with
/// (from the session's cache of previous runs); anything absent starts
/// Hash-placed, like a freshly loaded RDD.
pub fn plan_program(
    program: &Program,
    cfg: &PlannerConfig,
    workers: usize,
    initial_schemes: &HashMap<MatrixId, PartitionScheme>,
) -> Result<Planned> {
    plan_with_forced(program, cfg, workers, initial_schemes, None)
}

/// Like [`plan_program`], but with measured [`SparsityProfile`]s for
/// source matrices. Missing sources fall back to a uniform spread of the
/// static estimate, so an empty map reproduces [`plan_program`] exactly.
pub fn plan_program_profiled(
    program: &Program,
    cfg: &PlannerConfig,
    workers: usize,
    initial_schemes: &HashMap<MatrixId, PartitionScheme>,
    sources: &HashMap<MatrixId, SparsityProfile>,
) -> Result<Planned> {
    plan_with_forced_profiled(program, cfg, workers, initial_schemes, sources, None)
}

/// Like [`plan_program`], but with the strategy of selected operators
/// *forced* (`forced[op_index] = candidate index` in
/// [`crate::strategy::candidates`] order). Used by the exhaustive oracle
/// and by what-if analyses; unlisted operators keep the greedy argmin.
pub fn plan_with_forced(
    program: &Program,
    cfg: &PlannerConfig,
    workers: usize,
    initial_schemes: &HashMap<MatrixId, PartitionScheme>,
    forced: Option<&HashMap<usize, usize>>,
) -> Result<Planned> {
    plan_with_forced_profiled(
        program,
        cfg,
        workers,
        initial_schemes,
        &HashMap::new(),
        forced,
    )
}

/// The full planning entry point: measured source profiles *and* forced
/// strategies. Every other entry point delegates here.
pub fn plan_with_forced_profiled(
    program: &Program,
    cfg: &PlannerConfig,
    workers: usize,
    initial_schemes: &HashMap<MatrixId, PartitionScheme>,
    sources: &HashMap<MatrixId, SparsityProfile>,
    forced: Option<&HashMap<usize, usize>>,
) -> Result<Planned> {
    program.validate()?;
    // Propagate profiles in the session's blocking (the session overwrites
    // `fusion_block` with its block size). Propagation always runs — the
    // `density_adaptive` switch only gates whether pricing reads it.
    let profiles = dmac_stats::propagate(program, sources, cfg.fusion_block.max(1));
    let mut p = Planner {
        program,
        cfg: *cfg,
        cost: CostModel::new(workers),
        plan: Plan::default(),
        avail: HashMap::new(),
        input_records: Vec::new(),
        estimated_comm: 0,
        forced: forced.cloned().unwrap_or_default(),
        profiles,
    };
    p.seed_sources(initial_schemes);
    for &op_idx in &program.planner_order(cfg.multiplication_first) {
        p.plan_operator(op_idx)?;
    }
    p.bind_outputs()?;
    p.plan.finalize_flexible();
    if cfg.fuse_cellwise {
        fuse_cellwise_steps(program, &mut p.plan, cfg);
    }
    // Liveness post-pass: release each non-kept intermediate right after
    // its last reader. Runs after fusion so frees anchor to the steps
    // that actually execute.
    if cfg.splice_frees {
        crate::liveness::splice_frees(program, &mut p.plan);
    }
    // Post-pass: stamp the predicted output nnz onto every step that
    // defines a node (survives the fusion rebuild because it runs after).
    p.plan.predicted_nnz = p
        .plan
        .steps
        .iter()
        .map(|s| {
            s.out_node()
                .map(|n| p.profiles[p.plan.nodes[n].matrix as usize].nnz)
                .unwrap_or(0)
        })
        .collect();
    let certificate = crate::liveness::certificate(
        program,
        &p.plan,
        &p.profiles,
        cfg.density_adaptive,
        cfg.fusion_block.max(1),
    );
    Ok(Planned {
        plan: p.plan,
        estimated_comm: p.estimated_comm,
        profiles: p.profiles,
        certificate,
    })
}

/// The fusion pass: after planning (and the pull-up-broadcast /
/// re-assignment rewrites), collapse maximal groups of scheme-aligned
/// cell-wise compute steps into single [`PlanStep::FusedCellWise`] steps.
///
/// An intermediate is absorbed into its consumer exactly when
///
/// * both its producer and the consumer are cell-wise computes
///   ([`Strategy::CellAligned`] binaries or [`Strategy::UnaryLocal`]
///   scalar unaries),
/// * it has exactly one consumer across the whole plan, and
/// * it is not a program output (outputs must materialise).
///
/// Because the contracted edge is a direct node identity, the two steps
/// are guaranteed scheme-compatible: any scheme change in between would
/// have been realised by an intervening partition/broadcast step, whose
/// output node — not the producer's — the consumer would read. All
/// member steps are communication-free, so fusing moves no bytes and
/// every per-step prediction stays untouched.
///
/// Groups whose root output spans fewer than
/// [`PlannerConfig::fusion_min_blocks`] blocks are left unfused: with so
/// few tiles the fused interpreter's dispatch overhead outweighs the
/// saved materialisations (the BENCH_fusion regression on tiny inputs).
fn fuse_cellwise_steps(program: &Program, plan: &mut Plan, cfg: &PlannerConfig) {
    use crate::plan::FusedInstr;
    use crate::strategy::Strategy;
    use dmac_lang::{BinOp, OpKind, UnaryOp};
    use std::collections::HashSet;

    // Producer step and plan-wide consumer count per node.
    let mut producer: Vec<Option<usize>> = vec![None; plan.nodes.len()];
    let mut consumers = vec![0usize; plan.nodes.len()];
    for (i, s) in plan.steps.iter().enumerate() {
        if let Some(o) = s.out_node() {
            producer[o] = Some(i);
        }
        for n in s.in_nodes() {
            consumers[n] += 1;
        }
    }
    let is_output: HashSet<NodeId> = plan.outputs.iter().map(|&(n, _, _)| n).collect();

    let fusable: Vec<bool> = plan
        .steps
        .iter()
        .map(|s| match s {
            PlanStep::Compute {
                op,
                strategy,
                out: Some(_),
                out_scalar: None,
                ..
            } => match strategy {
                Strategy::CellAligned(_) => true,
                Strategy::UnaryLocal => {
                    matches!(program.ops()[*op].kind, OpKind::Unary { .. })
                }
                _ => false,
            },
            _ => false,
        })
        .collect();

    // Union fusable steps across contractible producer→consumer edges.
    let mut comp: Vec<usize> = (0..plan.steps.len()).collect();
    fn find(comp: &mut [usize], i: usize) -> usize {
        let mut r = i;
        while comp[r] != r {
            r = comp[r];
        }
        let mut c = i;
        while comp[c] != r {
            let next = comp[c];
            comp[c] = r;
            c = next;
        }
        r
    }
    for (j, s) in plan.steps.iter().enumerate() {
        if !fusable[j] {
            continue;
        }
        for n in s.in_nodes() {
            if consumers[n] != 1 || is_output.contains(&n) {
                continue;
            }
            if let Some(i) = producer[n] {
                if fusable[i] {
                    let (ri, rj) = (find(&mut comp, i), find(&mut comp, j));
                    comp[ri] = rj;
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, &f) in fusable.iter().enumerate() {
        if f {
            let r = find(&mut comp, i);
            groups.entry(r).or_default().push(i);
        }
    }

    // Build one fused step per multi-member group. Within a group every
    // contracted edge points at a unique consumer, so the member with the
    // highest plan index is the unique root — by then every leaf exists.
    let mut fused_at: HashMap<usize, PlanStep> = HashMap::new();
    let mut absorbed: HashSet<usize> = HashSet::new();
    for members in groups.into_values() {
        if members.len() < 2 {
            continue;
        }
        let member_set: HashSet<usize> = members.iter().copied().collect();
        let root = *members.iter().max().expect("non-empty group");
        let root_out = plan.steps[root]
            .out_node()
            .expect("fusable steps define a node");
        // Size gate: skip chains over grids too small to amortise the
        // fused interpreter.
        let blocks = program
            .decl(plan.nodes[root_out].matrix)
            .map(|d| {
                let block = cfg.fusion_block.max(1);
                dmac_matrix::blocking::blocks_along(d.stats.rows, block)
                    * dmac_matrix::blocking::blocks_along(d.stats.cols, block)
            })
            .unwrap_or(0);
        if blocks < cfg.fusion_min_blocks {
            continue;
        }

        // Post-order expression program over the group's leaves.
        let mut ops = members.clone();
        ops.sort_unstable();
        let mut leaves: Vec<NodeId> = Vec::new();
        let mut prog: Vec<FusedInstr> = Vec::new();
        let mut stack = vec![(root_out, false)];
        while let Some((node, emitted)) = stack.pop() {
            let member = producer[node].filter(|i| member_set.contains(i));
            let Some(i) = member else {
                let idx = leaves.iter().position(|&l| l == node).unwrap_or_else(|| {
                    leaves.push(node);
                    leaves.len() - 1
                });
                prog.push(FusedInstr::Leaf(idx));
                continue;
            };
            let PlanStep::Compute { op, inputs, .. } = &plan.steps[i] else {
                unreachable!("fusable steps are computes");
            };
            if emitted {
                prog.push(match &program.ops()[*op].kind {
                    OpKind::Binary { op: b, .. } => match b {
                        BinOp::Add => FusedInstr::Add,
                        BinOp::Sub => FusedInstr::Sub,
                        BinOp::CellMul => FusedInstr::CellMul,
                        BinOp::CellDiv => FusedInstr::CellDiv,
                        BinOp::MatMul => unreachable!("matmul is never cell-wise"),
                    },
                    OpKind::Unary { op: u, .. } => match u {
                        UnaryOp::Scale(e) => FusedInstr::Scale(e.clone()),
                        UnaryOp::AddScalar(e) => FusedInstr::AddScalar(e.clone()),
                    },
                    OpKind::Reduce { .. } => unreachable!("reductions are not fusable"),
                });
            } else {
                stack.push((node, true));
                for &input in inputs.iter().rev() {
                    stack.push((input, false));
                }
            }
        }

        let member_ops: Vec<usize> = ops
            .iter()
            .map(|&i| match &plan.steps[i] {
                PlanStep::Compute { op, .. } => *op,
                _ => unreachable!("fusable steps are computes"),
            })
            .collect();
        fused_at.insert(
            root,
            PlanStep::FusedCellWise {
                ops: member_ops,
                prog,
                inputs: leaves,
                out: root_out,
                phase: plan.steps[root].phase(),
            },
        );
        absorbed.extend(members.iter().copied().filter(|&i| i != root));
    }
    if fused_at.is_empty() {
        return;
    }

    // Rebuild steps/predictions, dropping absorbed members (all comm-free,
    // so every dropped prediction is 0 and the totals are unchanged).
    let old_steps = std::mem::take(&mut plan.steps);
    let old_predicted = std::mem::take(&mut plan.predicted);
    for (i, step) in old_steps.into_iter().enumerate() {
        if absorbed.contains(&i) {
            debug_assert_eq!(old_predicted.get(i).copied().unwrap_or(0), 0);
            continue;
        }
        let step = fused_at.remove(&i).unwrap_or(step);
        plan.steps.push(step);
        plan.predicted
            .push(old_predicted.get(i).copied().unwrap_or(0));
    }
}

/// Exhaustive planning oracle: enumerate every per-operator strategy
/// assignment, plan each with the full dependency machinery, and return
/// the cheapest plan by estimated communication. Exponential in the
/// number of multi-strategy operators — refuses programs with more than
/// `max_combinations` assignments. Exists to validate the greedy
/// Algorithm 1 on small programs (`tests/planner_oracle.rs`).
pub fn plan_exhaustive(
    program: &Program,
    cfg: &PlannerConfig,
    workers: usize,
    initial_schemes: &HashMap<MatrixId, PartitionScheme>,
    max_combinations: usize,
) -> Result<Planned> {
    program.validate()?;
    // Candidate count per operator.
    let counts: Vec<usize> = program
        .ops()
        .iter()
        .map(|op| candidates(&op.kind, cfg.allow_cpmm).len())
        .collect();
    let total: usize = counts
        .iter()
        .try_fold(1usize, |acc, &c| {
            acc.checked_mul(c).filter(|&t| t <= max_combinations)
        })
        .ok_or_else(|| {
            CoreError::Planner(format!(
                "exhaustive search over {} operators exceeds the {} combination budget",
                counts.len(),
                max_combinations
            ))
        })?;
    let mut best: Option<Planned> = None;
    for mut combo in 0..total {
        let mut forced = HashMap::new();
        for (op_idx, &c) in counts.iter().enumerate() {
            forced.insert(op_idx, combo % c);
            combo /= c;
        }
        let planned = plan_with_forced(program, cfg, workers, initial_schemes, Some(&forced))?;
        if best
            .as_ref()
            .map(|b| planned.estimated_comm < b.estimated_comm)
            .unwrap_or(true)
        {
            best = Some(planned);
        }
    }
    Ok(best.expect("at least one combination"))
}

struct Planner<'a> {
    program: &'a Program,
    cfg: PlannerConfig,
    cost: CostModel,
    plan: Plan,
    /// `OutputSet`: every materialised node per base matrix.
    avail: HashMap<MatrixId, Vec<NodeId>>,
    /// `InputSet`: paid input events, for Pull-Up Broadcast.
    input_records: Vec<InputRecord>,
    estimated_comm: u64,
    /// Forced strategy choices (op index -> candidate index).
    forced: HashMap<usize, usize>,
    /// Propagated sparsity profile per matrix id.
    profiles: Vec<SparsityProfile>,
}

impl<'a> Planner<'a> {
    fn seed_sources(&mut self, initial: &HashMap<MatrixId, PartitionScheme>) {
        for decl in self.program.matrices() {
            if matches!(decl.origin, MatrixOrigin::Load | MatrixOrigin::Random) {
                let scheme = initial
                    .get(&decl.id)
                    .copied()
                    .unwrap_or(PartitionScheme::Hash);
                let node = self.plan.add_node(decl.id, false, scheme, false);
                self.plan.sources.push((node, decl.id));
                self.avail.entry(decl.id).or_default().push(node);
            }
        }
    }

    /// `|A|` of matrix `id` in cost-model bytes: predicted-nnz bytes
    /// when density-adaptive, the static worst case otherwise. For dense
    /// profiles the two are identical (`density = 1.0` special case).
    fn bytes_of_matrix(&self, id: MatrixId) -> u64 {
        if self.cfg.density_adaptive {
            self.profiles[id as usize].predicted_bytes()
        } else {
            self.program
                .decl(id)
                .map(|d| d.stats.est_bytes())
                .unwrap_or(0)
        }
    }

    fn size_of(&self, r: &MatrixRef) -> u64 {
        // |A| is invariant under transposition.
        self.bytes_of_matrix(r.id)
    }

    fn register(&mut self, node: NodeId) {
        let m = self.plan.nodes[node].matrix;
        self.avail.entry(m).or_default().push(node);
    }

    /// Search the `OutputSet` for a node satisfying `(id, transposed, req)`
    /// through a non-communication dependency.
    fn find_free(&self, r: &MatrixRef, req: PartitionScheme) -> Option<FreePath> {
        if !self.cfg.exploit_dependencies {
            return None;
        }
        let nodes = self.avail.get(&r.id)?;
        let node = |pred: &dyn Fn(&crate::plan::PlanNode) -> bool| {
            nodes.iter().copied().find(|&n| pred(&self.plan.nodes[n]))
        };
        // Reference dependency: exact match (non-flexible).
        if let Some(n) = node(&|x| !x.flexible && x.transposed == r.transposed && x.scheme == req) {
            return Some(FreePath::Exact(n));
        }
        // Heuristic 2 material: flexible CPMM outputs satisfy either Row
        // or Column requirement for free once pinned.
        if self.cfg.re_assignment && req.is_rc() {
            if let Some(n) = node(&|x| x.flexible && x.transposed == r.transposed) {
                return Some(FreePath::PinFlexible(n));
            }
            if let Some(n) = node(&|x| x.flexible && x.transposed != r.transposed) {
                return Some(FreePath::PinFlexibleTranspose(n));
            }
        }
        match req {
            PartitionScheme::Row | PartitionScheme::Col => {
                // Transpose dependency: opposite handedness, flipped scheme.
                if let Some(n) =
                    node(&|x| !x.flexible && x.transposed != r.transposed && x.scheme == req.flip())
                {
                    return Some(FreePath::Transpose(n));
                }
                // Extract dependency: broadcast copy of the same handedness.
                if let Some(n) = node(&|x| {
                    !x.flexible
                        && x.transposed == r.transposed
                        && x.scheme == PartitionScheme::Broadcast
                }) {
                    return Some(FreePath::Extract(n));
                }
                // Extract-Transpose: broadcast copy of the other handedness.
                if let Some(n) = node(&|x| {
                    !x.flexible
                        && x.transposed != r.transposed
                        && x.scheme == PartitionScheme::Broadcast
                }) {
                    return Some(FreePath::TransposeExtract(n));
                }
                None
            }
            PartitionScheme::Broadcast => {
                // Transpose dependency on two broadcast copies.
                node(&|x| {
                    !x.flexible
                        && x.transposed != r.transposed
                        && x.scheme == PartitionScheme::Broadcast
                })
                .map(FreePath::Transpose)
            }
            PartitionScheme::Hash => None,
        }
    }

    /// Price an input event without mutating state.
    fn probe_cost(&self, r: &MatrixRef, req: Option<PartitionScheme>) -> u64 {
        let Some(req) = req else { return 0 };
        let free = self.find_free(r, req).is_some();
        self.cost.input_cost(req, free, self.size_of(r))
    }

    /// Any node currently holding `r.id` (prefers handedness match).
    fn any_node(&self, r: &MatrixRef) -> Result<NodeId> {
        let nodes = self
            .avail
            .get(&r.id)
            .filter(|v| !v.is_empty())
            .ok_or(CoreError::Planner(format!(
                "matrix {} referenced before materialisation",
                r.id
            )))?;
        Ok(nodes
            .iter()
            .copied()
            .find(|&n| self.plan.nodes[n].transposed == r.transposed)
            .unwrap_or(nodes[0]))
    }

    /// Acquire an input event: returns the node that satisfies it, emitting
    /// extended-operator steps and paying communication as needed.
    fn acquire(
        &mut self,
        r: &MatrixRef,
        req: Option<PartitionScheme>,
        phase: usize,
    ) -> Result<NodeId> {
        let Some(req) = req else {
            // No scheme requirement (unary/reduce): read any node. A
            // flexible node is pinned to Row first.
            let n = self.any_node(r)?;
            if self.plan.nodes[n].flexible {
                self.plan.nodes[n].scheme = PartitionScheme::Row;
                self.plan.nodes[n].flexible = false;
            }
            // Handedness is reconciled by the caller for requirement-free
            // inputs (unary ops run on either handedness; the engine
            // accounts for it via the node's own flag).
            return self.materialize_handedness(n, r.transposed, phase);
        };

        if let Some(path) = self.find_free(r, req) {
            return Ok(self.realize_free(path, r, req, phase));
        }

        // Heuristic 1: a broadcast need meets an earlier paid partition of
        // the same matrix — rewrite that partition into broadcast+extract.
        if self.cfg.pull_up_broadcast && req == PartitionScheme::Broadcast {
            if let Some(rec_idx) = self.input_records.iter().position(|rec| {
                rec.matrix == r.id
                    && rec.scheme.is_rc()
                    && rec.cost > 0
                    && rec.partition_step.is_some()
            }) {
                self.pull_up_broadcast(rec_idx)?;
                if let Some(path) = self.find_free(r, req) {
                    return Ok(self.realize_free(path, r, req, phase));
                }
            }
        }

        // Pay for the communication dependency.
        let size = self.size_of(r);
        let cost = self.cost.input_cost(req, false, size);
        self.estimated_comm += cost;
        let src = self.any_node(r)?;
        let src = self.materialize_handedness(src, r.transposed, phase)?;
        let out = self.plan.add_node(r.id, r.transposed, req, false);
        let step = match req {
            PartitionScheme::Row | PartitionScheme::Col => PlanStep::Partition { src, out, phase },
            PartitionScheme::Broadcast => PlanStep::Broadcast { src, out, phase },
            PartitionScheme::Hash => {
                return Err(CoreError::Planner("hash is never a requirement".into()))
            }
        };
        let step_idx = self.plan.steps.len();
        self.plan.push_step(step, cost);
        // Algorithm 1 line 19: the repartitioned copy joins the OutputSet.
        if self.cfg.exploit_dependencies {
            self.register(out);
        } else {
            // SystemML-S still needs the node for bookkeeping, but the
            // find_free fast path is disabled anyway.
            self.register(out);
        }
        // Algorithm 1 line 22: record the input event for Pull-Up Broadcast.
        self.input_records.push(InputRecord {
            matrix: r.id,
            scheme: req,
            cost,
            partition_step: req.is_rc().then_some(step_idx),
        });
        Ok(out)
    }

    /// Ensure a node of the wanted handedness exists, transposing locally
    /// if needed (free).
    fn materialize_handedness(
        &mut self,
        n: NodeId,
        transposed: bool,
        phase: usize,
    ) -> Result<NodeId> {
        if self.plan.nodes[n].transposed == transposed {
            return Ok(n);
        }
        let node = self.plan.nodes[n].clone();
        let out = self
            .plan
            .add_node(node.matrix, transposed, node.scheme.flip(), false);
        self.plan
            .push_step(PlanStep::Transpose { src: n, out, phase }, 0);
        self.register(out);
        Ok(out)
    }

    /// Emit the steps realising a free path; returns the satisfying node.
    fn realize_free(
        &mut self,
        path: FreePath,
        r: &MatrixRef,
        req: PartitionScheme,
        phase: usize,
    ) -> NodeId {
        match path {
            FreePath::Exact(n) => n,
            FreePath::PinFlexible(n) => {
                self.plan.nodes[n].scheme = req;
                self.plan.nodes[n].flexible = false;
                n
            }
            FreePath::PinFlexibleTranspose(n) => {
                self.plan.nodes[n].scheme = req.flip();
                self.plan.nodes[n].flexible = false;
                let out = self.plan.add_node(r.id, r.transposed, req, false);
                self.plan
                    .push_step(PlanStep::Transpose { src: n, out, phase }, 0);
                self.register(out);
                out
            }
            FreePath::Transpose(n) => {
                let scheme = self.plan.nodes[n].scheme.flip();
                let out = self.plan.add_node(r.id, r.transposed, scheme, false);
                self.plan
                    .push_step(PlanStep::Transpose { src: n, out, phase }, 0);
                self.register(out);
                out
            }
            FreePath::Extract(n) => {
                let out = self.plan.add_node(r.id, r.transposed, req, false);
                self.plan
                    .push_step(PlanStep::Extract { src: n, out, phase }, 0);
                self.register(out);
                out
            }
            FreePath::TransposeExtract(n) => {
                let mid = self
                    .plan
                    .add_node(r.id, r.transposed, PartitionScheme::Broadcast, false);
                self.plan.push_step(
                    PlanStep::Transpose {
                        src: n,
                        out: mid,
                        phase,
                    },
                    0,
                );
                self.register(mid);
                let out = self.plan.add_node(r.id, r.transposed, req, false);
                self.plan.push_step(
                    PlanStep::Extract {
                        src: mid,
                        out,
                        phase,
                    },
                    0,
                );
                self.register(out);
                out
            }
        }
    }

    /// Heuristic 1: rewrite the recorded partition step into
    /// broadcast + extract of the same source, so the broadcast copy also
    /// serves the pending broadcast requirement.
    fn pull_up_broadcast(&mut self, rec_idx: usize) -> Result<()> {
        let step_idx = self.input_records[rec_idx]
            .partition_step
            .expect("checked by caller");
        let PlanStep::Partition { src, out, phase } = self.plan.steps[step_idx].clone() else {
            return Err(CoreError::Planner(
                "pull-up record does not point at a partition step".into(),
            ));
        };
        let src_node = self.plan.nodes[src].clone();
        let out_node = self.plan.nodes[out].clone();
        // Broadcast the partition's source, then extract what the original
        // consumer needed. Handedness of src and out is identical by
        // construction of `acquire`.
        debug_assert_eq!(src_node.transposed, out_node.transposed);
        let b = self.plan.add_node(
            src_node.matrix,
            src_node.transposed,
            PartitionScheme::Broadcast,
            false,
        );
        let size = self.bytes_of_matrix(src_node.matrix);
        let replacement = vec![
            PlanStep::Broadcast { src, out: b, phase },
            PlanStep::Extract { src: b, out, phase },
        ];
        let added = replacement.len() - 1;
        self.plan.steps.splice(step_idx..=step_idx, replacement);
        // Keep the per-step predictions in lockstep with the splice: the
        // |A| partition becomes an N·|A| broadcast plus a free extract.
        self.plan.predicted.resize(self.plan.steps.len() - added, 0);
        self.plan
            .predicted
            .splice(step_idx..=step_idx, vec![self.cost.workers * size, 0]);
        self.register(b);
        // Cost bookkeeping: the earlier |A| partition became an N·|A|
        // broadcast; the pending N·|A| broadcast becomes free.
        self.estimated_comm = self.estimated_comm.saturating_sub(size);
        self.estimated_comm += self.cost.workers * size;
        // Fix up stored step indices after the splice.
        for rec in &mut self.input_records {
            if let Some(s) = rec.partition_step {
                if s > step_idx {
                    rec.partition_step = Some(s + added);
                } else if s == step_idx {
                    rec.partition_step = None;
                }
            }
        }
        Ok(())
    }

    /// Which one-dimensional scheme would the next program-order consumer
    /// of `matrix` like it in? Used by the RMM-tie half of Heuristic 2: a
    /// multiplication consuming it on the left wants Row (RMM2/CPMM read
    /// the left operand row-ish), on the right wants Column; a transposed
    /// reference flips the preference. Non-multiplication consumers have
    /// no strong preference.
    fn next_consumer_preference(
        &self,
        after_op: usize,
        matrix: MatrixId,
    ) -> Option<PartitionScheme> {
        for op in self.program.ops().iter().filter(|o| o.index > after_op) {
            if let dmac_lang::OpKind::Binary { op: bin, lhs, rhs } = &op.kind {
                if !bin.is_matmul() {
                    if lhs.id == matrix || rhs.id == matrix {
                        return None;
                    }
                    continue;
                }
                if lhs.id == matrix {
                    return Some(if lhs.transposed {
                        PartitionScheme::Col
                    } else {
                        PartitionScheme::Row
                    });
                }
                if rhs.id == matrix {
                    return Some(if rhs.transposed {
                        PartitionScheme::Row
                    } else {
                        PartitionScheme::Col
                    });
                }
            } else if op.kind.inputs().iter().any(|r| r.id == matrix) {
                return None;
            }
        }
        None
    }

    /// Plan a single operator: price candidates, commit the argmin.
    fn plan_operator(&mut self, op_idx: usize) -> Result<()> {
        let op = &self.program.ops()[op_idx];
        let kind = op.kind.clone();
        let phase = op.phase;
        let inputs = kind.inputs();
        let cands = candidates(&kind, self.cfg.allow_cpmm);
        debug_assert!(!cands.is_empty());

        let out_bytes = op.out_matrix.map(|m| self.bytes_of_matrix(m)).unwrap_or(0);

        // Equation 1: argmin over candidates (or the forced choice).
        let mut priced: Vec<(u64, &Candidate)> = Vec::with_capacity(cands.len());
        for cand in &cands {
            let mut c = self.cost.output_cost(cand.strategy, out_bytes);
            for (r, req) in inputs.iter().zip(&cand.inputs) {
                c += self.probe_cost(r, *req);
            }
            priced.push((c, cand));
        }
        if let Some(&choice) = self.forced.get(&op_idx) {
            let cand = cands[choice.min(cands.len() - 1)].clone();
            self.estimated_comm += self.cost.output_cost(cand.strategy, out_bytes);
            return self.commit_operator(
                op_idx,
                cand,
                phase,
                &inputs,
                op.out_matrix,
                op.out_scalar,
            );
        }
        let best_cost = priced.iter().map(|(c, _)| *c).min().expect("non-empty");
        let mut cand = priced
            .iter()
            .find(|(c, _)| *c == best_cost)
            .map(|(_, cand)| (*cand).clone())
            .expect("non-empty candidates");

        // Heuristic 2 (Re-assignment), RMM-tie half: "when multiplying two
        // matrices with the same size, like B·Bᵀ, RMM1 and RMM2 can
        // generate [the] result with different partition scheme while
        // introducing the same amount of communication cost" — the output
        // event has multiple values {r|c}, so pick the one the next
        // consumer of this output wants for free.
        if self.cfg.re_assignment {
            let rmm1 = priced
                .iter()
                .find(|(_, c)| c.strategy == crate::strategy::Strategy::Rmm1);
            let rmm2 = priced
                .iter()
                .find(|(_, c)| c.strategy == crate::strategy::Strategy::Rmm2);
            if let (Some((c1, k1)), Some((c2, k2))) = (rmm1, rmm2) {
                if *c1 == best_cost && *c2 == best_cost {
                    if let Some(m) = op.out_matrix {
                        match self.next_consumer_preference(op_idx, m) {
                            Some(PartitionScheme::Row) => cand = (*k2).clone(),
                            Some(PartitionScheme::Col) => cand = (*k1).clone(),
                            _ => {}
                        }
                    }
                }
            }
        }
        self.estimated_comm += self.cost.output_cost(cand.strategy, out_bytes);
        self.commit_operator(op_idx, cand, phase, &inputs, op.out_matrix, op.out_scalar)
    }

    /// Acquire the chosen candidate's inputs, create its output node, and
    /// emit the compute step. (Output-event cost was already added.)
    fn commit_operator(
        &mut self,
        op_idx: usize,
        cand: Candidate,
        phase: usize,
        inputs: &[MatrixRef],
        out_matrix: Option<MatrixId>,
        out_scalar: Option<dmac_lang::ScalarId>,
    ) -> Result<()> {
        // Commit: acquire every input.
        let mut input_nodes = Vec::with_capacity(inputs.len());
        for (r, req) in inputs.iter().zip(&cand.inputs) {
            input_nodes.push(self.acquire(r, *req, phase)?);
        }

        // Create the output node.
        let out_node = match (&cand.output, out_matrix) {
            (OutScheme::Scalar, _) | (_, None) => None,
            (OutScheme::Fixed(s), Some(m)) => {
                let scheme = if self.cfg.exploit_dependencies {
                    *s
                } else {
                    // SystemML-S stores every operator result back into the
                    // hash-partitioned cache.
                    PartitionScheme::Hash
                };
                Some(self.plan.add_node(m, false, scheme, false))
            }
            (OutScheme::FlexibleRc, Some(m)) => {
                if !self.cfg.exploit_dependencies {
                    Some(self.plan.add_node(m, false, PartitionScheme::Hash, false))
                } else if self.cfg.re_assignment {
                    Some(self.plan.add_node(m, false, PartitionScheme::Row, true))
                } else {
                    Some(self.plan.add_node(m, false, PartitionScheme::Row, false))
                }
            }
            (OutScheme::SameAsInput, Some(m)) => {
                // The output *value* is the operator applied to the (possibly
                // transposed) view, so the node itself is never transposed;
                // it simply inherits the input node's placement.
                let scheme = self.plan.nodes[input_nodes[0]].scheme;
                Some(self.plan.add_node(m, false, scheme, false))
            }
        };
        if let Some(n) = out_node {
            self.register(n);
        }

        // The compute step's predicted bytes are its output event's cost
        // (N·|AB| for CPMM, 0 otherwise) — mirrors the `estimated_comm`
        // increment the caller already applied.
        let out_bytes = out_matrix.map(|m| self.bytes_of_matrix(m)).unwrap_or(0);
        let predicted = self.cost.output_cost(cand.strategy, out_bytes);
        self.plan.push_step(
            PlanStep::Compute {
                op: op_idx,
                strategy: cand.strategy,
                inputs: input_nodes,
                out: out_node,
                out_scalar,
                phase,
            },
            predicted,
        );
        Ok(())
    }

    /// Ensure every program output has an untransposed-or-declared node,
    /// and record the bindings.
    fn bind_outputs(&mut self) -> Result<()> {
        for (r, name) in self.program.outputs().to_vec() {
            let n = self.any_node(&r)?;
            let n = self.materialize_handedness(
                n,
                r.transposed,
                self.program.ops().last().map(|o| o.phase).unwrap_or(0),
            )?;
            self.plan.outputs.push((n, r.id, name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use dmac_lang::Program;

    fn schemes() -> HashMap<MatrixId, PartitionScheme> {
        HashMap::new()
    }

    /// One GNMF H-update (Code 1 line 9).
    fn gnmf_h() -> Program {
        let mut p = Program::new();
        let v = p.load("V", 1000, 800, 0.01);
        let w = p.random("W", 1000, 20);
        let h = p.random("H", 20, 800);
        let wt_v = p.matmul(w.t(), v).unwrap();
        let wt_w = p.matmul(w.t(), w).unwrap();
        let wt_w_h = p.matmul(wt_w, h).unwrap();
        let num = p.cell_mul(h, wt_v).unwrap();
        let h_new = p.cell_div(num, wt_w_h).unwrap();
        p.store(h_new, "H");
        p
    }

    #[test]
    fn dmac_plans_cost_no_more_than_systemml() {
        let p = gnmf_h();
        let dmac = plan_program(&p, &PlannerConfig::default(), 4, &schemes()).unwrap();
        let sysml = plan_program(&p, &PlannerConfig::systemml_s(), 4, &schemes()).unwrap();
        assert!(
            dmac.estimated_comm <= sysml.estimated_comm,
            "dmac {} > sysml {}",
            dmac.estimated_comm,
            sysml.estimated_comm
        );
        assert!(
            dmac.plan.comm_step_count() < sysml.plan.comm_step_count(),
            "dmac should need fewer communication steps"
        );
    }

    #[test]
    fn cellwise_chain_reuses_schemes_for_free() {
        // X = (A + B) * (A + B) pattern: the second op must reuse the
        // first's scheme with zero extra comm steps.
        let mut p = Program::new();
        let a = p.load("A", 100, 100, 0.5);
        let b = p.load("B", 100, 100, 0.5);
        let s = p.add(a, b).unwrap();
        let t = p.cell_mul(s, s).unwrap();
        let u = p.cell_div(t, s).unwrap();
        p.output(u);
        let planned = plan_program(&p, &PlannerConfig::default(), 4, &schemes()).unwrap();
        // exactly two partitions (A and B once each), nothing else.
        assert_eq!(
            planned.plan.comm_step_count(),
            2,
            "{}",
            planned.plan.explain(&p)
        );
    }

    #[test]
    fn transpose_dependency_is_free() {
        // B = A + A; C = Bᵀ * Bᵀ (cell-wise). The Bᵀ operands must come
        // from a local transpose of B, not a repartition.
        let mut p = Program::new();
        let a = p.load("A", 50, 40, 1.0);
        let b = p.add(a, a).unwrap();
        let c = p.cell_mul(b.t(), b.t()).unwrap();
        p.output(c);
        let planned = plan_program(&p, &PlannerConfig::default(), 4, &schemes()).unwrap();
        // one partition for A; everything downstream free.
        assert_eq!(
            planned.plan.comm_step_count(),
            1,
            "{}",
            planned.plan.explain(&p)
        );
        assert!(planned
            .plan
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::Transpose { .. })));
    }

    #[test]
    fn systemml_repartitions_every_use() {
        let mut p = Program::new();
        let a = p.load("A", 100, 100, 1.0);
        let b = p.add(a, a).unwrap();
        let c = p.cell_mul(b, b).unwrap();
        p.output(c);
        let planned = plan_program(&p, &PlannerConfig::systemml_s(), 4, &schemes()).unwrap();
        // op1: two partitions of A (same ref twice); op2: two partitions
        // of B. SystemML-S never reuses.
        assert_eq!(
            planned.plan.comm_step_count(),
            4,
            "{}",
            planned.plan.explain(&p)
        );
    }

    #[test]
    fn small_matmul_broadcasts_small_side() {
        // tiny W (20x20) times large H (20x10000): RMM1 broadcasting the
        // tiny left side must win.
        let mut p = Program::new();
        let w = p.load("W", 20, 20, 1.0);
        let h = p.load("H", 20, 10000, 1.0);
        let x = p.matmul(w, h).unwrap();
        p.output(x);
        let planned = plan_program(&p, &PlannerConfig::default(), 4, &schemes()).unwrap();
        let strategies: Vec<Strategy> = planned
            .plan
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Compute { strategy, .. } => Some(*strategy),
                _ => None,
            })
            .collect();
        assert_eq!(
            strategies,
            vec![Strategy::Rmm1],
            "{}",
            planned.plan.explain(&p)
        );
    }

    #[test]
    fn reassignment_pins_cpmm_output_to_consumer() {
        // X = Aᵀ %*% A (CPMM wins: both sides large, output tiny)…
        // then Y = X * X cell-wise. H2 should pin X's scheme so the
        // cell-wise op is free.
        let mut p = Program::new();
        let a = p.load("A", 5000, 30, 1.0);
        let x = p.matmul(a.t(), a).unwrap();
        let y = p.cell_mul(x, x).unwrap();
        p.output(y);
        let planned = plan_program(&p, &PlannerConfig::default(), 4, &schemes()).unwrap();
        // comm: one partition of A (the other side is free via transpose)
        // + the CPMM output shuffle. The cell-wise op adds nothing.
        let explain = planned.plan.explain(&p);
        assert!(
            planned.plan.steps.iter().any(|s| matches!(
                s,
                PlanStep::Compute {
                    strategy: Strategy::Cpmm,
                    ..
                }
            )),
            "{explain}"
        );
        assert_eq!(planned.plan.comm_step_count(), 2, "{explain}");
        assert!(planned.plan.nodes.iter().all(|n| !n.flexible));
    }

    #[test]
    fn pull_up_broadcast_rewrites_partition() {
        // op1 needs A(r) (cell-wise with B), op2 needs A(b) (it is the
        // small side of a multiplication with huge C). H1 must rewrite
        // op1's partition of A into broadcast+extract.
        let mut p = Program::new();
        let a = p.load("A", 40, 40, 1.0);
        let b = p.load("B", 40, 40, 1.0);
        let c = p.load("C", 40, 100_000, 1.0);
        let s = p.add(a, b).unwrap(); // A gets partitioned here
        let m = p.matmul(a, c).unwrap(); // A wants broadcast here
        let m2 = p.matmul(s, c).unwrap();
        p.output(m);
        p.output(m2);
        let cfg = PlannerConfig {
            multiplication_first: false, // keep program order so the add is planned first
            ..PlannerConfig::default()
        };
        let planned = plan_program(&p, &cfg, 4, &schemes()).unwrap();
        let explain = planned.plan.explain(&p);
        // A must be broadcast exactly once and never partitioned.
        let a_id = a.id;
        let partitions_of_a = planned
            .plan
            .steps
            .iter()
            .filter(|s| match s {
                PlanStep::Partition { out, .. } => planned.plan.nodes[*out].matrix == a_id,
                _ => false,
            })
            .count();
        let broadcasts_of_a = planned
            .plan
            .steps
            .iter()
            .filter(|s| match s {
                PlanStep::Broadcast { out, .. } => planned.plan.nodes[*out].matrix == a_id,
                _ => false,
            })
            .count();
        assert_eq!(partitions_of_a, 0, "{explain}");
        assert_eq!(broadcasts_of_a, 1, "{explain}");
        // and the extract that replaced the partition exists
        assert!(
            planned
                .plan
                .steps
                .iter()
                .any(|s| matches!(s, PlanStep::Extract { .. })),
            "{explain}"
        );

        // Without H1: A is partitioned once and broadcast once.
        let cfg_off = PlannerConfig {
            pull_up_broadcast: false,
            multiplication_first: false,
            ..PlannerConfig::default()
        };
        let planned_off = plan_program(&p, &cfg_off, 4, &schemes()).unwrap();
        let parts_off = planned_off
            .plan
            .steps
            .iter()
            .filter(|s| match s {
                PlanStep::Partition { out, .. } => planned_off.plan.nodes[*out].matrix == a_id,
                _ => false,
            })
            .count();
        assert_eq!(parts_off, 1);
        assert!(planned.estimated_comm <= planned_off.estimated_comm);
    }

    #[test]
    fn initial_schemes_are_honoured() {
        // If V is already Column-partitioned from a previous run, using it
        // under Column must be free.
        let mut p = Program::new();
        let v = p.load("V", 100, 100, 1.0);
        let w = p.load("W", 100, 100, 1.0);
        let x = p.cell_mul(v, w).unwrap();
        p.output(x);
        let mut init = HashMap::new();
        init.insert(v.id, PartitionScheme::Col);
        init.insert(w.id, PartitionScheme::Col);
        let planned = plan_program(&p, &PlannerConfig::default(), 4, &init).unwrap();
        assert_eq!(
            planned.plan.comm_step_count(),
            0,
            "{}",
            planned.plan.explain(&p)
        );
        assert_eq!(planned.estimated_comm, 0);
    }

    #[test]
    fn unary_and_reduce_are_free() {
        let mut p = Program::new();
        let a = p.load("A", 64, 64, 1.0);
        let s = p.scale_const(a, 0.5).unwrap();
        let total = p.sum(s).unwrap();
        let b = p.scale(s, total).unwrap();
        p.output(b);
        let planned = plan_program(&p, &PlannerConfig::default(), 4, &schemes()).unwrap();
        assert_eq!(
            planned.plan.comm_step_count(),
            0,
            "{}",
            planned.plan.explain(&p)
        );
    }

    #[test]
    fn per_step_predictions_sum_to_estimate() {
        // The flight recorder diffs per-step predictions against actuals;
        // the predictions must tile the planner's total estimate exactly,
        // under both configs and through the pull-up-broadcast rewrite.
        let progs: Vec<Program> = vec![gnmf_h(), {
            let mut p = Program::new();
            let a = p.load("A", 40, 40, 1.0);
            let b = p.load("B", 40, 40, 1.0);
            let c = p.load("C", 40, 100_000, 1.0);
            let s = p.add(a, b).unwrap();
            let m = p.matmul(a, c).unwrap();
            let m2 = p.matmul(s, c).unwrap();
            p.output(m);
            p.output(m2);
            p
        }];
        for p in &progs {
            for cfg in [
                PlannerConfig::default(),
                PlannerConfig::systemml_s(),
                PlannerConfig {
                    multiplication_first: false,
                    ..PlannerConfig::default()
                },
            ] {
                let planned = plan_program(p, &cfg, 4, &schemes()).unwrap();
                assert_eq!(planned.plan.predicted.len(), planned.plan.steps.len());
                assert_eq!(
                    planned.plan.predicted_total(),
                    planned.estimated_comm,
                    "{}",
                    planned.plan.explain(p)
                );
                for (i, step) in planned.plan.steps.iter().enumerate() {
                    if !step.is_comm() {
                        assert_eq!(planned.plan.predicted_bytes(i), 0, "step {i} is comm-free");
                    }
                }
            }
        }
    }

    #[test]
    fn outputs_bound_for_transposed_refs() {
        let mut p = Program::new();
        let a = p.load("A", 10, 20, 1.0);
        let b = p.add(a, a).unwrap();
        p.output(b.t());
        let planned = plan_program(&p, &PlannerConfig::default(), 2, &schemes()).unwrap();
        assert_eq!(planned.plan.outputs.len(), 1);
        let (node, mid, _) = &planned.plan.outputs[0];
        assert_eq!(*mid, b.id);
        assert!(planned.plan.nodes[*node].transposed);
    }
}
