//! The execution flight recorder: a per-step [`Trace`] merged from the
//! cluster's span buffer and diffed against the planner's predictions.
//!
//! Every executed plan step contributes a [`StepTrace`] carrying:
//!
//! * the planner's **predicted** cost-model bytes for the step (Table 2:
//!   `0` for non-communication dependencies, `|A|` for partition, `N·|A|`
//!   for broadcast, `N·|AB|` for a CPMM output event),
//! * the **actual** event bytes the cluster measured for the same step
//!   (steady-state only — recovery traffic is attributed separately),
//! * the physical **wire** bytes the simulated transport shipped, and
//! * the low-level [`OpSpan`]s (per-worker sent/received, blocks touched,
//!   buffer-pool activity) the step was assembled from.
//!
//! [`Trace::conformance`] returns the per-step `(predicted, actual)`
//! pairs; for dense workloads the two are equal byte-for-byte, which
//! `tests/cost_conformance.rs` enforces for every Table 2 dependency
//! type. `|A|` is a *worst-case* (dense) estimate, so sparse inputs may
//! deviate in either direction: fewer non-zeros than declared undershoot,
//! CSC index overhead can overshoot. [`Trace::overshoots`] lists steps
//! whose actual exceeds predicted — the conformance gate in
//! `scripts/verify.sh` runs a dense PageRank and requires it to be empty.
//!
//! [`Trace::to_chrome_json`] renders the trace in the Trace Event Format
//! understood by `chrome://tracing` / Perfetto: one complete (`"ph":"X"`)
//! event per step on a per-stage track, plus one event per span.

use std::fmt::Write as _;

use dmac_cluster::OpSpan;
use dmac_matrix::exec::PoolStats;

use crate::json::{escape as json_str, JsonObj};

/// Execution record of one plan step.
#[derive(Debug, Clone, Default)]
pub struct StepTrace {
    /// Index of the step in `Plan::steps`.
    pub step: usize,
    /// Stage the step executed in.
    pub stage: usize,
    /// Phase tag (iteration number).
    pub phase: usize,
    /// Step kind: `"partition"`, `"broadcast"`, `"transpose"`,
    /// `"extract"`, `"reference"`, or the compute strategy name.
    pub kind: String,
    /// Human-readable label (node labels, paper-style).
    pub label: String,
    /// The planner's predicted cost-model bytes for this step.
    pub predicted_bytes: u64,
    /// Measured steady-state event bytes (cost-model units).
    pub actual_bytes: u64,
    /// Measured steady-state wire bytes (what the transport shipped).
    pub wire_bytes: u64,
    /// Physical payload bytes the transport backend receipted for the
    /// step's steady-state spans. Conformance-asserted equal to the
    /// metered wire bytes of every mirrored primitive, so on a real
    /// backend this confirms each wire byte physically crossed a socket.
    pub transport_bytes: u64,
    /// Wire bytes attributed to recovery while this step was in flight
    /// (failed-attempt partial work, lineage replay, source refetch).
    pub recovery_wire_bytes: u64,
    /// The estimator's predicted non-zero count for the step's output
    /// matrix (0 for steps without a matrix output).
    pub predicted_nnz: u64,
    /// Observed non-zero count of the materialised output (0 for steps
    /// without a matrix output).
    pub observed_nnz: u64,
    /// Density class of the *predicted* output profile (`"empty"`,
    /// `"sparse"`, `"medium"`, `"dense"`; empty string when the step has
    /// no matrix output).
    pub density_class: &'static str,
    /// Logical bytes of all values resident after this step executed
    /// (each distributed value counted once across aliasing nodes).
    /// Verified against the plan's memory certificate: invariant V21
    /// requires `resident_bytes ≤ certificate.per_step[step]`.
    pub resident_bytes: u64,
    /// Simulated clock when the step started.
    pub sim_start_sec: f64,
    /// Simulated clock when the step completed.
    pub sim_end_sec: f64,
    /// The primitive spans this step was assembled from (includes
    /// recovery-flagged spans).
    pub spans: Vec<OpSpan>,
}

impl StepTrace {
    /// `actual - predicted` when positive: bytes the cost model failed to
    /// anticipate.
    pub fn overshoot_bytes(&self) -> u64 {
        self.actual_bytes.saturating_sub(self.predicted_bytes)
    }

    /// Total blocks touched across the step's steady-state spans.
    pub fn blocks(&self) -> usize {
        self.spans
            .iter()
            .filter(|s| !s.recovery)
            .map(|s| s.blocks)
            .sum()
    }
}

/// One `(predicted, actual)` byte pair from [`Trace::conformance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conformance {
    /// Step index.
    pub step: usize,
    /// Step kind (see [`StepTrace::kind`]).
    pub kind: String,
    /// Human-readable label.
    pub label: String,
    /// Planner-predicted cost-model bytes.
    pub predicted: u64,
    /// Measured steady-state event bytes.
    pub actual: u64,
}

impl Conformance {
    /// True when the measurement does not exceed the prediction (the cost
    /// model is an upper bound by construction for dense data).
    pub fn holds(&self) -> bool {
        self.actual <= self.predicted
    }

    /// Render the pair as a JSON object (service `Stats` responses, bench
    /// artifacts).
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .u64("step", self.step as u64)
            .str("kind", &self.kind)
            .str("label", &self.label)
            .u64("predicted", self.predicted)
            .u64("actual", self.actual)
            .bool("holds", self.holds())
            .build()
    }
}

/// The trace's third byte channel: traffic between the store's RAM tier
/// and its disk tier attributed to one run (checkpoint writes, spills
/// under memory pressure, and reloads of spilled inputs). Metered at the
/// run level rather than per step because spills happen while the session
/// resolves inputs and absorbs outputs, not inside the engine's stages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillTraffic {
    /// Resident→disk displacement events.
    pub spills: u64,
    /// Blob bytes physically written (content addressing makes rewrites
    /// of unchanged matrices free).
    pub spill_bytes: u64,
    /// Disk→resident reload events.
    pub loads: u64,
    /// Blob bytes read back.
    pub load_bytes: u64,
}

impl SpillTraffic {
    /// Bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.spill_bytes + self.load_bytes
    }

    /// Difference of two cumulative counter snapshots (`self - earlier`).
    pub fn since(&self, earlier: &SpillTraffic) -> SpillTraffic {
        SpillTraffic {
            spills: self.spills - earlier.spills,
            spill_bytes: self.spill_bytes - earlier.spill_bytes,
            loads: self.loads - earlier.loads,
            load_bytes: self.load_bytes - earlier.load_bytes,
        }
    }
}

/// Per-stage aggregate used by the golden snapshot tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageSummary {
    /// Stage index.
    pub stage: usize,
    /// Step kinds executed in the stage, in order.
    pub kinds: Vec<String>,
    /// Sum of predicted bytes over the stage's steps.
    pub predicted_bytes: u64,
    /// Sum of steady-state event bytes.
    pub actual_bytes: u64,
    /// Sum of steady-state wire bytes.
    pub wire_bytes: u64,
}

/// The merged flight-recorder trace attached to
/// [`crate::engine::ExecReport`].
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Number of logical workers the run used.
    pub workers: usize,
    /// Number of stages the plan executed as.
    pub stage_count: usize,
    /// One record per executed plan step, in execution order.
    pub steps: Vec<StepTrace>,
    /// Cumulative result-buffer-pool counters at the end of the run.
    pub pool: PoolStats,
    /// Store↔disk traffic attributed to this run (the third channel,
    /// next to steady-state and recovery bytes). All zero without a
    /// disk-backed store.
    pub spill: SpillTraffic,
}

impl Trace {
    /// Per-step `(predicted, actual)` cost-model byte pairs, in execution
    /// order. This is the paper's Table 2 made testable: for each step the
    /// planner's 0 / `|A|` / `N·|A|` (/ `N·|AB|`) prediction sits next to
    /// what the cluster measured.
    pub fn conformance(&self) -> Vec<Conformance> {
        self.steps
            .iter()
            .map(|s| Conformance {
                step: s.step,
                kind: s.kind.clone(),
                label: s.label.clone(),
                predicted: s.predicted_bytes,
                actual: s.actual_bytes,
            })
            .collect()
    }

    /// Steps whose measured bytes exceed the prediction (empty on a
    /// conforming run).
    pub fn overshoots(&self) -> Vec<&StepTrace> {
        self.steps
            .iter()
            .filter(|s| s.actual_bytes > s.predicted_bytes)
            .collect()
    }

    /// Total predicted bytes over all steps (equals the planner's
    /// `estimated_comm`).
    pub fn predicted_total(&self) -> u64 {
        self.steps.iter().map(|s| s.predicted_bytes).sum()
    }

    /// Total measured steady-state event bytes.
    pub fn actual_total(&self) -> u64 {
        self.steps.iter().map(|s| s.actual_bytes).sum()
    }

    /// Total steady-state wire bytes.
    pub fn wire_total(&self) -> u64 {
        self.steps.iter().map(|s| s.wire_bytes).sum()
    }

    /// Total wire bytes attributed to recovery.
    pub fn recovery_wire_total(&self) -> u64 {
        self.steps.iter().map(|s| s.recovery_wire_bytes).sum()
    }

    /// Total physical transport payload bytes (steady state).
    pub fn transport_total(&self) -> u64 {
        self.steps.iter().map(|s| s.transport_bytes).sum()
    }

    /// Bytes sent per worker, summed over steady-state spans.
    pub fn sent_per_worker(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.workers];
        for step in &self.steps {
            for span in step.spans.iter().filter(|s| !s.recovery) {
                for (w, &b) in span.sent.iter().enumerate() {
                    if w < v.len() {
                        v[w] += b;
                    }
                }
            }
        }
        v
    }

    /// Bytes received per worker, summed over steady-state spans.
    pub fn received_per_worker(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.workers];
        for step in &self.steps {
            for span in step.spans.iter().filter(|s| !s.recovery) {
                for (w, &b) in span.received.iter().enumerate() {
                    if w < v.len() {
                        v[w] += b;
                    }
                }
            }
        }
        v
    }

    /// Aggregate the trace per stage (kinds in order, byte totals).
    pub fn per_stage(&self) -> Vec<StageSummary> {
        let mut out: Vec<StageSummary> = Vec::with_capacity(self.stage_count);
        for step in &self.steps {
            if out.last().map(|s| s.stage) != Some(step.stage) {
                out.push(StageSummary {
                    stage: step.stage,
                    ..StageSummary::default()
                });
            }
            let cur = out.last_mut().expect("just pushed");
            cur.kinds.push(step.kind.clone());
            cur.predicted_bytes += step.predicted_bytes;
            cur.actual_bytes += step.actual_bytes;
            cur.wire_bytes += step.wire_bytes;
        }
        out
    }

    /// Deterministic textual rendering of the trace's structure: workers,
    /// stage count, and per stage the step kinds plus predicted / actual /
    /// wire byte totals. Timing and pool counters are deliberately
    /// excluded (they vary run to run); everything else is bit-stable for
    /// a fixed seed, which makes this the golden-snapshot format.
    pub fn golden_summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "workers={} stages={} steps={}",
            self.workers,
            self.stage_count,
            self.steps.len()
        );
        for st in self.per_stage() {
            let _ = writeln!(
                s,
                "stage {:>2}: pred={} actual={} wire={} [{}]",
                st.stage,
                st.predicted_bytes,
                st.actual_bytes,
                st.wire_bytes,
                st.kinds.join(",")
            );
        }
        let _ = writeln!(
            s,
            "spill: spills={} spill_bytes={} loads={} load_bytes={}",
            self.spill.spills, self.spill.spill_bytes, self.spill.loads, self.spill.load_bytes
        );
        s
    }

    /// Total predicted output non-zeros over all steps.
    pub fn predicted_nnz_total(&self) -> u64 {
        self.steps.iter().map(|s| s.predicted_nnz).sum()
    }

    /// Total observed output non-zeros over all steps.
    pub fn observed_nnz_total(&self) -> u64 {
        self.steps.iter().map(|s| s.observed_nnz).sum()
    }

    /// Peak of the per-step resident-byte meter (0 for empty traces).
    pub fn peak_resident(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.resident_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Human-readable conformance table (bench bins, debugging).
    pub fn conformance_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:>4} {:>5} {:<12} {:>14} {:>14} {:>14} {:>12} {:>12} {:<7} label",
            "step", "stage", "kind", "predicted", "actual", "wire", "pred_nnz", "obs_nnz", "class"
        );
        for t in &self.steps {
            let mark = if t.actual_bytes > t.predicted_bytes {
                " OVER"
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "{:>4} {:>5} {:<12} {:>14} {:>14} {:>14} {:>12} {:>12} {:<7} {}{}",
                t.step,
                t.stage,
                t.kind,
                t.predicted_bytes,
                t.actual_bytes,
                t.wire_bytes,
                t.predicted_nnz,
                t.observed_nnz,
                if t.density_class.is_empty() {
                    "-"
                } else {
                    t.density_class
                },
                t.label,
                mark
            );
        }
        let _ = writeln!(
            s,
            "total predicted={} actual={} wire={} recovery_wire={} spill={} load={}",
            self.predicted_total(),
            self.actual_total(),
            self.wire_total(),
            self.recovery_wire_total(),
            self.spill.spill_bytes,
            self.spill.load_bytes
        );
        s
    }

    /// Render the trace in the Trace Event Format consumed by
    /// `chrome://tracing` and Perfetto (`"traceEvents"` array of complete
    /// `"ph":"X"` events). Timestamps are the *simulated* clock in
    /// microseconds; each stage gets its own track (`tid`), steps are
    /// pid 1, their constituent spans pid 2.
    pub fn to_chrome_json(&self) -> String {
        let mut s = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: &mut String, ev: String| {
            if !first {
                s.push(',');
            }
            first = false;
            s.push('\n');
            s.push_str(&ev);
        };
        for t in &self.steps {
            let ts = t.sim_start_sec * 1e6;
            let dur = ((t.sim_end_sec - t.sim_start_sec) * 1e6).max(0.01);
            push(
                &mut s,
                format!(
                    "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                     \"pid\":1,\"tid\":{},\"args\":{{\"step\":{},\"phase\":{},\
                     \"predicted_bytes\":{},\"actual_bytes\":{},\"wire_bytes\":{},\
                     \"recovery_wire_bytes\":{},\"predicted_nnz\":{},\"observed_nnz\":{},\
                     \"density_class\":{},\"resident_bytes\":{}}}}}",
                    json_str(&format!("{} {}", t.kind, t.label)),
                    json_str(&t.kind),
                    ts,
                    dur,
                    t.stage,
                    t.step,
                    t.phase,
                    t.predicted_bytes,
                    t.actual_bytes,
                    t.wire_bytes,
                    t.recovery_wire_bytes,
                    t.predicted_nnz,
                    t.observed_nnz,
                    json_str(t.density_class),
                    t.resident_bytes,
                ),
            );
            for span in &t.spans {
                let ts = span.start_sec * 1e6;
                let dur = (span.sim_dur_sec() * 1e6).max(0.01);
                push(
                    &mut s,
                    format!(
                        "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                         \"pid\":2,\"tid\":{},\"args\":{{\"wire_bytes\":{},\"event_bytes\":{},\
                         \"blocks\":{},\"pool_reused\":{},\"pool_allocated\":{},\
                         \"recovery\":{},\"wall_sec\":{:.9}}}}}",
                        json_str(&if span.label.is_empty() {
                            span.op.to_string()
                        } else {
                            format!("{} {}", span.op, span.label)
                        }),
                        json_str(span.op),
                        ts,
                        dur,
                        t.stage,
                        span.wire_bytes,
                        span.event_bytes,
                        span.blocks,
                        span.pool_reused,
                        span.pool_allocated,
                        span.recovery,
                        span.wall_sec,
                    ),
                );
            }
        }
        let _ = write!(
            s,
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"workers\":{},\"stages\":{},\
             \"pool_reused\":{},\"pool_allocated\":{},\"pool_returned\":{},\"pool_dropped\":{},\
             \"spills\":{},\"spill_bytes\":{},\"loads\":{},\"load_bytes\":{}}}}}",
            self.workers,
            self.stage_count,
            self.pool.reused,
            self.pool.allocated,
            self.pool.returned,
            self.pool.dropped,
            self.spill.spills,
            self.spill.spill_bytes,
            self.spill.loads,
            self.spill.load_bytes
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(stage: usize, kind: &str, pred: u64, actual: u64, wire: u64) -> StepTrace {
        StepTrace {
            step: 0,
            stage,
            kind: kind.to_string(),
            label: format!("{kind}-label"),
            predicted_bytes: pred,
            actual_bytes: actual,
            wire_bytes: wire,
            ..StepTrace::default()
        }
    }

    fn sample() -> Trace {
        Trace {
            workers: 4,
            stage_count: 2,
            steps: vec![
                step(0, "partition", 100, 100, 75),
                step(0, "RMM1", 0, 0, 0),
                step(1, "broadcast", 400, 400, 300),
            ],
            pool: PoolStats::default(),
            spill: SpillTraffic::default(),
        }
    }

    #[test]
    fn conformance_pairs_match_steps() {
        let t = sample();
        let c = t.conformance();
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(Conformance::holds));
        assert_eq!(c[0].predicted, 100);
        assert_eq!(c[2].actual, 400);
        assert_eq!(t.predicted_total(), 500);
        assert_eq!(t.actual_total(), 500);
        assert_eq!(t.wire_total(), 375);
        assert!(t.overshoots().is_empty());
    }

    #[test]
    fn overshoot_detection() {
        let mut t = sample();
        t.steps[0].actual_bytes = 150;
        let over = t.overshoots();
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].overshoot_bytes(), 50);
        assert!(!t.conformance()[0].holds());
    }

    #[test]
    fn per_stage_aggregates_in_order() {
        let t = sample();
        let stages = t.per_stage();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].kinds, vec!["partition", "RMM1"]);
        assert_eq!(stages[0].predicted_bytes, 100);
        assert_eq!(stages[1].wire_bytes, 300);
    }

    #[test]
    fn golden_summary_is_stable_text() {
        let t = sample();
        let s = t.golden_summary();
        assert!(s.starts_with("workers=4 stages=2 steps=3\n"), "{s}");
        assert!(s.contains("stage  0: pred=100 actual=100 wire=75 [partition,RMM1]"));
        assert!(s.contains("stage  1: pred=400 actual=400 wire=300 [broadcast]"));
        assert!(
            s.ends_with("spill: spills=0 spill_bytes=0 loads=0 load_bytes=0\n"),
            "{s}"
        );
    }

    #[test]
    fn spill_channel_is_summarised_and_diffable() {
        let mut t = sample();
        t.spill = SpillTraffic {
            spills: 2,
            spill_bytes: 1000,
            loads: 1,
            load_bytes: 400,
        };
        assert!(t
            .golden_summary()
            .contains("spill: spills=2 spill_bytes=1000 loads=1 load_bytes=400"));
        assert!(t.to_chrome_json().contains("\"spill_bytes\":1000"));
        let earlier = SpillTraffic {
            spills: 1,
            spill_bytes: 600,
            loads: 0,
            load_bytes: 0,
        };
        let delta = t.spill.since(&earlier);
        assert_eq!(delta.spills, 1);
        assert_eq!(delta.total_bytes(), 800);
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = sample();
        t.steps[0].spans.push(OpSpan {
            op: "partition",
            label: "A \"quoted\"".into(),
            wire_bytes: 75,
            event_bytes: 100,
            ..OpSpan::default()
        });
        let j = t.to_chrome_json();
        assert!(j.starts_with("{\"traceEvents\":["), "{j}");
        assert!(j.trim_end().ends_with('}'), "{j}");
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\\\"quoted\\\""), "escaping: {j}");
        assert!(j.contains("\"workers\":4"));
        // one step event per step + one span event
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 4);
    }

    #[test]
    fn nnz_channel_totals_and_rendering() {
        let mut t = sample();
        t.steps[0].predicted_nnz = 120;
        t.steps[0].observed_nnz = 100;
        t.steps[0].density_class = "sparse";
        t.steps[2].predicted_nnz = 50;
        t.steps[2].observed_nnz = 50;
        t.steps[2].density_class = "dense";
        assert_eq!(t.predicted_nnz_total(), 170);
        assert_eq!(t.observed_nnz_total(), 150);
        let table = t.conformance_table();
        assert!(table.contains("pred_nnz"), "{table}");
        assert!(table.contains("sparse"), "{table}");
        let j = t.to_chrome_json();
        assert!(j.contains("\"predicted_nnz\":120"), "{j}");
        assert!(j.contains("\"observed_nnz\":100"), "{j}");
        assert!(j.contains("\"density_class\":\"dense\""), "{j}");
        // golden_summary format must not change with the nnz channel.
        assert!(t
            .golden_summary()
            .starts_with("workers=4 stages=2 steps=3\n"));
        assert!(!t.golden_summary().contains("nnz"));
    }

    #[test]
    fn json_escaping_covers_controls() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
