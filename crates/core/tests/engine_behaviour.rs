//! Engine-level behaviour tests: phase attribution, liveness of outputs,
//! report consistency, and the SystemML-S hash-cache reconciliation.

use dmac_core::baselines::SystemKind;
use dmac_core::Session;
use dmac_lang::Program;
use dmac_matrix::BlockedMatrix;

fn ramp(rows: usize, cols: usize) -> BlockedMatrix {
    BlockedMatrix::from_fn(rows, cols, 8, |i, j| ((i * cols + j) % 9) as f64 - 4.0).unwrap()
}

/// Per-phase statistics must partition the run's totals exactly.
#[test]
fn phase_stats_partition_totals() {
    let mut s = Session::builder()
        .workers(3)
        .local_threads(2)
        .block_size(8)
        .build();
    s.bind("A", ramp(48, 48)).unwrap();
    let mut p = Program::new();
    let a = p.load("A", 48, 48, 1.0);
    let mut x = a;
    for i in 0..4 {
        p.set_phase(i);
        let y = p.matmul(x, a).unwrap();
        x = p.cell_mul(y, y).unwrap();
    }
    p.output(x);
    let report = s.run(&p).unwrap();
    assert_eq!(report.per_phase.len(), 4);
    let phase_bytes: u64 = report.per_phase.iter().map(|ph| ph.total_bytes()).sum();
    assert_eq!(phase_bytes, report.comm.total_bytes());
    let phase_time: f64 = report.per_phase.iter().map(|ph| ph.total_sec()).sum();
    assert!((phase_time - report.sim.total_sec()).abs() < 1e-9);
    assert!(report.wall_sec > 0.0);
    assert!(report.stage_count >= 2);
}

/// Liveness release must never drop a value that is a program output,
/// even when that output is produced early and unused afterwards.
#[test]
fn early_outputs_survive_liveness_release() {
    let mut s = Session::builder().workers(2).block_size(8).build();
    s.bind("A", ramp(16, 16)).unwrap();
    let mut p = Program::new();
    let a = p.load("A", 16, 16, 1.0);
    let early = p.add(a, a).unwrap(); // output, but consumed below too
    let mid = p.matmul(early, a).unwrap();
    let late = p.cell_mul(mid, mid).unwrap();
    p.output(early);
    p.output(late);
    s.run(&p).unwrap();
    let got_early = s.value(early).unwrap();
    assert_eq!(got_early.to_dense(), ramp(16, 16).scale(2.0).to_dense());
    assert_eq!(s.value(late).unwrap().rows(), 16);
}

/// SystemML-S physically stores operator results hash-partitioned; its
/// numerics must still match DMac's exactly.
#[test]
fn systemml_hash_cache_is_numerically_transparent() {
    let run = |system| {
        let mut s = Session::builder()
            .system(system)
            .workers(4)
            .local_threads(2)
            .block_size(8)
            .build();
        s.bind("A", ramp(24, 24)).unwrap();
        let mut p = Program::new();
        let a = p.load("A", 24, 24, 1.0);
        let b = p.matmul(a, a.t()).unwrap();
        let c = p.sub(b, a).unwrap();
        let d = p.matmul(c.t(), b).unwrap();
        p.output(d);
        s.run(&p).unwrap();
        s.value(d).unwrap().to_dense()
    };
    let dmac = run(SystemKind::Dmac);
    let sysml = run(SystemKind::SystemMlS);
    assert!(dmac_matrix::approx_eq_slice(dmac.data(), sysml.data(), 1e-9).is_none());
}

/// The planner's estimate is a worst-case bound scaled for the cost model:
/// it must be present and at least the metered bytes for programs whose
/// sparsity estimates are exact (dense inputs).
#[test]
fn planner_estimate_bounds_metered_bytes_on_dense_programs() {
    let mut s = Session::builder()
        .workers(4)
        .local_threads(1)
        .block_size(8)
        .build();
    s.bind("A", ramp(32, 32)).unwrap();
    let mut p = Program::new();
    let a = p.load("A", 32, 32, 1.0);
    let b = p.matmul(a, a).unwrap();
    let c = p.add(b, a).unwrap();
    p.output(c);
    let report = s.run(&p).unwrap();
    assert!(report.planner_estimate > 0);
    // The model charges |A| per repartition regardless of which fraction
    // physically moves, so estimate >= metered (minus the 8N-byte reduce
    // noise, absent here).
    assert!(
        report.planner_estimate >= report.comm.total_bytes(),
        "estimate {} < metered {}",
        report.planner_estimate,
        report.comm.total_bytes()
    );
}

/// Random matrices regenerate identically inside one session across runs
/// (same seed, same ids), so repeated runs are reproducible.
#[test]
fn repeated_runs_are_deterministic() {
    let build = || {
        let mut p = Program::new();
        let w = p.random("W", 12, 12);
        let x = p.matmul(w, w.t()).unwrap();
        p.output(x);
        (p, x)
    };
    let mut s = Session::builder().workers(2).block_size(4).seed(9).build();
    let (p1, x1) = build();
    s.run(&p1).unwrap();
    let first = s.value(x1).unwrap().to_dense();
    let (p2, x2) = build();
    s.run(&p2).unwrap();
    let second = s.value(x2).unwrap().to_dense();
    assert_eq!(first, second);
}

/// Empty phase tags (a program whose ops are all phase 0) produce exactly
/// one phase entry.
#[test]
fn single_phase_report() {
    let mut s = Session::builder().workers(2).block_size(8).build();
    s.bind("A", ramp(16, 16)).unwrap();
    let mut p = Program::new();
    let a = p.load("A", 16, 16, 1.0);
    let b = p.scale_const(a, 3.0).unwrap();
    p.output(b);
    let report = s.run(&p).unwrap();
    assert_eq!(report.per_phase.len(), 1);
}

/// Prepared plans: plan once, run repeatedly; stale plans are rejected
/// after the environment's placements change.
#[test]
fn prepared_plans_run_and_detect_staleness() {
    let mut s = Session::builder()
        .workers(2)
        .local_threads(1)
        .block_size(8)
        .build();
    s.bind("A", ramp(16, 16)).unwrap();

    let mut p = Program::new();
    let a = p.load("A", 16, 16, 1.0);
    let b = p.matmul(a, a).unwrap();
    p.output(b);

    let prep = s.prepare(&p).unwrap();
    assert!(prep.plan().steps.len() > 1);
    assert!(prep.estimated_comm() > 0);
    s.run_prepared(&prep).unwrap();
    let first = s.value(b).unwrap();
    let m = ramp(16, 16);
    assert_eq!(first.to_dense(), m.matmul_reference(&m).unwrap().to_dense());

    // The first run repartitioned A and cached the placement, so the
    // prepared (hash-based) plan is now stale and must be rejected.
    let err = s.run_prepared(&prep).unwrap_err();
    assert!(
        err.to_string().contains("stale"),
        "expected staleness error, got: {err}"
    );

    // Re-preparing against the cached placement works, repeatedly, and is
    // cheaper (A is already partitioned).
    let prep2 = s.prepare(&p).unwrap();
    let r2 = s.run_prepared(&prep2).unwrap();
    let r3 = s.run_prepared(&prep2).unwrap();
    assert_eq!(r2.comm.total_bytes(), r3.comm.total_bytes());
    assert!(prep2.estimated_comm() <= prep.estimated_comm());
}
