//! Conjugate-gradient linear regression (paper Code 4).
//!
//! Solves `(VᵀV + λI) w = Vᵀy` by CG. The loop body's heavy operators are
//! `V %*% p` and `Vᵀ %*% (V p)`; DMac partitions `V` once for the whole
//! computation (the Figure 9(b)/10(b) claim), while SystemML-S
//! repartitions it every iteration. The α/β scalars are driver-side
//! [`dmac_lang::ScalarExpr`] arithmetic over reduction results.

use dmac_core::engine::ExecReport;
use dmac_core::{Result, Session};
use dmac_lang::{Expr, Program};
use dmac_matrix::BlockedMatrix;

/// Linear-regression configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinearRegression {
    /// Training points (rows of `V`).
    pub rows: usize,
    /// Feature dimension (columns of `V`).
    pub features: usize,
    /// Sparsity of `V`.
    pub sparsity: f64,
    /// Ridge term λ.
    pub lambda: f64,
    /// CG iterations.
    pub iterations: usize,
}

/// Handles into the built program.
#[derive(Debug, Clone, Copy)]
pub struct LinRegProgram {
    /// The design matrix `V`.
    pub v: Expr,
    /// The label vector `y`.
    pub y: Expr,
    /// The learned weight vector.
    pub w: Expr,
}

impl LinearRegression {
    /// Build the unrolled CG program; `V` and `y` must be bound.
    ///
    /// Mirrors Code 4 exactly, except the initial `w` is zero (the paper's
    /// `RandomMatrix` start changes nothing about convergence or cost — CG
    /// iterates on the residual, and a zero start keeps the reference
    /// oracle simple).
    pub fn build(&self, p: &mut Program) -> Result<LinRegProgram> {
        let v = p.load("V", self.rows, self.features, self.sparsity);
        let y = p.load("y", self.rows, 1, 1.0);

        // r = (Vᵀ y) * -1 ; p0 = r * -1 ; norm_r2 = (r*r).sum
        let vt_y = p.matmul(v.t(), y)?;
        let mut r = p.scale_const(vt_y, -1.0)?;
        let mut dir = p.scale_const(r, -1.0)?;
        let rr = p.cell_mul(r, r)?;
        let mut norm_r2 = p.sum(rr)?;

        // w starts at zero: 0 * r.
        let mut w = p.scale_const(r, 0.0)?;

        for i in 0..self.iterations {
            p.set_phase(i);
            // q = Vᵀ (V p) + p λ
            let vp = p.matmul(v, dir)?;
            let vtvp = p.matmul(v.t(), vp)?;
            let pl = p.scale_const(dir, self.lambda)?;
            let q = p.add(vtvp, pl)?;
            // α = norm_r2 / (pᵀ q)
            let ptq_m = p.matmul(dir.t(), q)?;
            let ptq = p.value(ptq_m)?;
            let alpha = norm_r2.clone() / ptq;
            // w = w + p α
            let step = p.scale(dir, alpha.clone())?;
            w = p.add(w, step)?;
            // r = r + q α ; norm_r2' = (r*r).sum ; β = norm_r2'/norm_r2
            let qa = p.scale(q, alpha)?;
            r = p.add(r, qa)?;
            let rr = p.cell_mul(r, r)?;
            let new_norm = p.sum(rr)?;
            let beta = new_norm.clone() / norm_r2;
            norm_r2 = new_norm;
            // p = -r + p β
            let neg_r = p.scale_const(r, -1.0)?;
            let pb = p.scale(dir, beta)?;
            dir = p.add(neg_r, pb)?;
        }
        p.store(w, "w");
        Ok(LinRegProgram { v, y, w })
    }

    /// Run on a session.
    pub fn run(
        &self,
        session: &mut Session,
        v: BlockedMatrix,
        y: BlockedMatrix,
    ) -> Result<(ExecReport, LinRegProgram)> {
        session.bind("V", v)?;
        session.bind("y", y)?;
        let mut p = Program::new();
        let handles = self.build(&mut p)?;
        let report = session.run(&p)?;
        Ok((report, handles))
    }

    /// Plain local CG reference.
    pub fn reference(&self, v: &BlockedMatrix, y: &BlockedMatrix) -> Result<BlockedMatrix> {
        let vt = v.transpose();
        let vt_y = vt.matmul_reference(y)?;
        let mut r = vt_y.scale(-1.0);
        let mut dir = r.scale(-1.0);
        let mut norm_r2 = r.cell_mul(&r)?.sum();
        let mut w = r.scale(0.0);
        for _ in 0..self.iterations {
            let vp = v.matmul_reference(&dir)?;
            let q = vt.matmul_reference(&vp)?.add(&dir.scale(self.lambda))?;
            let ptq = dir.transpose().matmul_reference(&q)?.sum();
            let alpha = norm_r2 / ptq;
            w = w.add(&dir.scale(alpha))?;
            r = r.add(&q.scale(alpha))?;
            let new_norm = r.cell_mul(&r)?.sum();
            let beta = new_norm / norm_r2;
            norm_r2 = new_norm;
            dir = r.scale(-1.0).add(&dir.scale(beta))?;
        }
        Ok(w)
    }

    /// Residual `‖Vw − y‖` of a weight vector.
    pub fn residual(v: &BlockedMatrix, y: &BlockedMatrix, w: &BlockedMatrix) -> Result<f64> {
        Ok(v.matmul_reference(w)?.sub(y)?.norm2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LinearRegression {
        LinearRegression {
            rows: 60,
            features: 12,
            sparsity: 0.4,
            lambda: 1e-6,
            iterations: 5,
        }
    }

    #[test]
    fn engine_matches_reference() {
        let cfg = tiny();
        let v = dmac_data::uniform_sparse(cfg.rows, cfg.features, cfg.sparsity, 8, 2);
        let y = dmac_data::dense_random(cfg.rows, 1, 8, 3);
        let mut session = Session::builder()
            .workers(3)
            .local_threads(2)
            .block_size(8)
            .build();
        let (_, handles) = cfg.run(&mut session, v.clone(), y.clone()).unwrap();
        let got = session.value(handles.w).unwrap();
        let expect = cfg.reference(&v, &y).unwrap();
        assert!(dmac_matrix::approx_eq_slice(
            got.to_dense().data(),
            expect.to_dense().data(),
            1e-6
        )
        .is_none());
    }

    #[test]
    fn cg_reduces_the_residual() {
        let cfg = LinearRegression {
            iterations: 10,
            ..tiny()
        };
        let v = dmac_data::uniform_sparse(cfg.rows, cfg.features, cfg.sparsity, 8, 2);
        let y = dmac_data::dense_random(cfg.rows, 1, 8, 3);
        let zero = BlockedMatrix::zeros(cfg.features, 1, 8).unwrap();
        let base = LinearRegression::residual(&v, &y, &zero).unwrap();
        let w = cfg.reference(&v, &y).unwrap();
        let res = LinearRegression::residual(&v, &y, &w).unwrap();
        assert!(res < base, "CG must reduce the residual: {base} -> {res}");
    }

    #[test]
    fn program_phases_cover_iterations() {
        let mut p = Program::new();
        tiny().build(&mut p).unwrap();
        let max_phase = p.ops().iter().map(|o| o.phase).max().unwrap();
        assert_eq!(max_phase, 4);
        p.validate().unwrap();
    }
}
