//! Shared plumbing for the checkpointed iterative drivers.
//!
//! The unrolled programs in [`crate::gnmf`] and [`crate::pagerank`] run a
//! whole algorithm as one plan. Their checkpointed siblings instead run
//! *one iteration per program*, store the evolving state under stable
//! names, and publish a durable snapshot of the store at every phase
//! boundary ([`dmac_core::Session::checkpoint`]). When the process dies —
//! or a deterministic crash is injected through
//! [`dmac_cluster::CrashPoint`] — a restarted driver recovers the latest
//! valid snapshot from disk and resumes from the phase it recorded,
//! instead of replaying the full lineage from iteration 0.
//!
//! The contract both drivers uphold: a crashed-and-resumed run produces
//! **bit-for-bit** the same final state as an uninterrupted run, because
//! the on-disk codec preserves values and per-worker placement exactly
//! and the engine is deterministic given identical inputs and schemes.

/// Outcome of a checkpointed driver run (see `Gnmf::run_checkpointed`
/// and `PageRank::run_checkpointed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointedRun {
    /// Completed iterations found in the recovered snapshot; `0` means
    /// the driver started (or restarted) from scratch.
    pub resumed_from: usize,
    /// Iterations this process actually executed
    /// (`total - resumed_from`).
    pub ran_iterations: usize,
    /// Snapshot sequence number of the final published checkpoint.
    pub final_snapshot: u64,
}

impl CheckpointedRun {
    /// Did this run skip work thanks to a recovered snapshot?
    pub fn resumed(&self) -> bool {
        self.resumed_from > 0
    }
}
