//! # dmac-apps — the matrix applications of the paper's evaluation
//!
//! The five programs of §6 / Appendix A, each expressed in the DMac DSL
//! with its loop unrolled (one phase tag per iteration) and accompanied by
//! a plain single-threaded reference implementation used as the
//! correctness oracle in the integration tests:
//!
//! * [`gnmf`] — Gaussian non-negative matrix factorisation (Code 1), the
//!   paper's running example and the Figure 6 / Figure 10 workload.
//! * [`pagerank`] — PageRank (Code 2), the Figure 9(a) workload.
//! * [`cf`] — item-based collaborative filtering (Code 3).
//! * [`linreg`] — conjugate-gradient linear regression (Code 4).
//! * [`svd`] — Lanczos SVD (Code 5), including a symmetric tridiagonal
//!   eigensolver for the final driver-side step.
//! * [`triangles`] — triangle counting, a §1-style graph-mining workload
//!   in pure matrix form (extra, not in the paper's evaluation).

#![forbid(unsafe_code)]

pub mod cf;
pub mod checkpoint;
pub mod gnmf;
pub mod linreg;
pub mod pagerank;
pub mod svd;
pub mod triangles;
pub mod tridiag;

pub use cf::CollaborativeFiltering;
pub use checkpoint::CheckpointedRun;
pub use gnmf::Gnmf;
pub use linreg::LinearRegression;
pub use pagerank::PageRank;
pub use svd::SvdLanczos;
pub use triangles::TriangleCount;
