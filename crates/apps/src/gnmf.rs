//! Gaussian Non-Negative Matrix Factorisation (paper Code 1).
//!
//! Finds `W (d×k)` and `H (k×w)` with `V ≈ W·H` by the multiplicative
//! updates
//!
//! ```text
//! H ← H * (Wᵀ V) / (Wᵀ W H)
//! W ← W * (V Hᵀ) / (W H Hᵀ)
//! ```
//!
//! The program is unrolled over `iterations`, each iteration tagged as a
//! phase so the engine reports the per-iteration accumulated curves of
//! Figure 6.

use dmac_core::engine::{random_cell, ExecReport};
use dmac_core::{Result, Session};
use dmac_lang::{Expr, Program};
use dmac_matrix::BlockedMatrix;

use crate::checkpoint::CheckpointedRun;

/// Store names the checkpointed GNMF driver snapshots at every phase
/// boundary. `V` rides along so its cached partition scheme (and the
/// free re-checkpoint content addressing grants unchanged matrices)
/// survives a restart.
pub const GNMF_CHECKPOINT_NAMES: [&str; 3] = ["V", "W", "H"];

/// GNMF configuration.
#[derive(Debug, Clone, Copy)]
pub struct Gnmf {
    /// Rows of `V` (users in the Netflix workload).
    pub rows: usize,
    /// Columns of `V` (movies).
    pub cols: usize,
    /// Sparsity of `V`.
    pub sparsity: f64,
    /// Factor rank `k` (the paper uses 200 for Netflix).
    pub rank: usize,
    /// Number of multiplicative-update iterations.
    pub iterations: usize,
}

/// Handles into the built program.
#[derive(Debug, Clone, Copy)]
pub struct GnmfProgram {
    /// The `V` input expression.
    pub v: Expr,
    /// Initial `W`.
    pub w0: Expr,
    /// Initial `H`.
    pub h0: Expr,
    /// Final `W`.
    pub w: Expr,
    /// Final `H`.
    pub h: Expr,
}

impl Gnmf {
    /// Build the unrolled GNMF program. `V` must be bound as `"V"`.
    pub fn build(&self, p: &mut Program) -> Result<GnmfProgram> {
        let v = p.load("V", self.rows, self.cols, self.sparsity);
        let w0 = p.random("W0", self.rows, self.rank);
        let h0 = p.random("H0", self.rank, self.cols);
        let (mut w, mut h) = (w0, h0);
        for i in 0..self.iterations {
            p.set_phase(i);
            // H = H * (Wt %*% V) / (Wt %*% W %*% H)
            let wt_v = p.matmul(w.t(), v)?;
            let wt_w = p.matmul(w.t(), w)?;
            let wt_w_h = p.matmul(wt_w, h)?;
            let h_num = p.cell_mul(h, wt_v)?;
            h = p.cell_div(h_num, wt_w_h)?;
            // W = W * (V %*% Ht) / (W %*% H %*% Ht)
            let v_ht = p.matmul(v, h.t())?;
            let h_ht = p.matmul(h, h.t())?;
            let w_h_ht = p.matmul(w, h_ht)?;
            let w_num = p.cell_mul(w, v_ht)?;
            w = p.cell_div(w_num, w_h_ht)?;
        }
        p.store(w, "W");
        p.store(h, "H");
        Ok(GnmfProgram { v, w0, h0, w, h })
    }

    /// Build the init program of the checkpointed driver: generate the
    /// random factors and store them under `"W"` / `"H"`. The identity
    /// scale keeps the stored outputs op-produced; multiplying by `1.0`
    /// is bit-exact, so the factors match [`Gnmf::initial_factors`] for
    /// the same seed and matrix ids.
    pub fn build_init(&self, p: &mut Program) -> Result<(Expr, Expr)> {
        let w0 = p.random("W0", self.rows, self.rank);
        let h0 = p.random("H0", self.rank, self.cols);
        let w = p.scale_const(w0, 1.0)?;
        let h = p.scale_const(h0, 1.0)?;
        p.store(w, "W");
        p.store(h, "H");
        Ok((w0, h0))
    }

    /// Build the per-iteration program of the checkpointed driver: load
    /// `V`, `W`, `H` from the store, apply one multiplicative update
    /// (same operator order as the unrolled [`Gnmf::build`]), and store
    /// the new factors back under the same names.
    pub fn build_step(&self, p: &mut Program) -> Result<()> {
        let v = p.load("V", self.rows, self.cols, self.sparsity);
        let w = p.load("W", self.rows, self.rank, 1.0);
        let h = p.load("H", self.rank, self.cols, 1.0);
        // H = H * (Wt %*% V) / (Wt %*% W %*% H)
        let wt_v = p.matmul(w.t(), v)?;
        let wt_w = p.matmul(w.t(), w)?;
        let wt_w_h = p.matmul(wt_w, h)?;
        let h_num = p.cell_mul(h, wt_v)?;
        let h_new = p.cell_div(h_num, wt_w_h)?;
        // W = W * (V %*% Ht) / (W %*% H %*% Ht)
        let v_ht = p.matmul(v, h_new.t())?;
        let h_ht = p.matmul(h_new, h_new.t())?;
        let w_h_ht = p.matmul(w, h_ht)?;
        let w_num = p.cell_mul(w, v_ht)?;
        let w_new = p.cell_div(w_num, w_h_ht)?;
        p.store(w_new, "W");
        p.store(h_new, "H");
        Ok(())
    }

    /// Run GNMF one iteration at a time, checkpointing `V`/`W`/`H` at
    /// every phase boundary. If the session's store holds a recovered
    /// snapshot (the caller ran [`dmac_core::SharedStore::recover`] on a
    /// disk-backed store before building the session), the driver resumes
    /// from the recorded phase instead of replaying from iteration 0; a
    /// missing or invalid snapshot degrades to a full fresh run. `v` is
    /// only bound on a fresh start — a resumed run reads it back from the
    /// snapshot. Final factors are read with `session.env_value("W")` /
    /// `env_value("H")` (a fully-recovered run may execute no program at
    /// all, so `Session::value` handles would dangle).
    pub fn run_checkpointed(
        &self,
        session: &mut Session,
        v: &BlockedMatrix,
    ) -> Result<CheckpointedRun> {
        let names: Vec<String> = GNMF_CHECKPOINT_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect();
        let store = session.shared_store().clone();
        let start = match store.latest_snapshot() {
            Some((_, phase))
                if phase as usize <= self.iterations && names.iter().all(|n| store.contains(n)) =>
            {
                phase as usize
            }
            _ => {
                session.bind("V", v.clone())?;
                let mut init = Program::new();
                self.build_init(&mut init)?;
                session.run(&init)?;
                session.checkpoint(&names, 0)?;
                0
            }
        };
        let mut step = Program::new();
        self.build_step(&mut step)?;
        for i in start..self.iterations {
            session.run(&step)?;
            session.checkpoint(&names, (i + 1) as u64)?;
        }
        let (final_snapshot, _) = store.latest_snapshot().unwrap_or((0, 0));
        Ok(CheckpointedRun {
            resumed_from: start,
            ran_iterations: self.iterations - start,
            final_snapshot,
        })
    }

    /// Run GNMF on a session; `v` is bound and the program executed.
    pub fn run(
        &self,
        session: &mut Session,
        v: BlockedMatrix,
    ) -> Result<(ExecReport, GnmfProgram)> {
        session.bind("V", v)?;
        let mut p = Program::new();
        let handles = self.build(&mut p)?;
        let report = session.run(&p)?;
        Ok((report, handles))
    }

    /// The deterministic initial factor matrices the engine will generate
    /// for a given seed (used by the reference implementation).
    pub fn initial_factors(
        &self,
        handles: &GnmfProgram,
        block: usize,
        seed: u64,
    ) -> Result<(BlockedMatrix, BlockedMatrix)> {
        let w = BlockedMatrix::from_fn(self.rows, self.rank, block, |i, j| {
            random_cell(seed, handles.w0.id, i, j)
        })?;
        let h = BlockedMatrix::from_fn(self.rank, self.cols, block, |i, j| {
            random_cell(seed, handles.h0.id, i, j)
        })?;
        Ok((w, h))
    }

    /// Plain local reference: the same updates with sequential kernels.
    pub fn reference(
        &self,
        v: &BlockedMatrix,
        mut w: BlockedMatrix,
        mut h: BlockedMatrix,
    ) -> Result<(BlockedMatrix, BlockedMatrix)> {
        for _ in 0..self.iterations {
            let wt = w.transpose();
            let wt_v = wt.matmul_reference(v)?;
            let wt_w = wt.matmul_reference(&w)?;
            let wt_w_h = wt_w.matmul_reference(&h)?;
            h = h.cell_mul(&wt_v)?.cell_div(&wt_w_h)?;
            let ht = h.transpose();
            let v_ht = v.matmul_reference(&ht)?;
            let h_ht = h.matmul_reference(&ht)?;
            let w_h_ht = w.matmul_reference(&h_ht)?;
            w = w.cell_mul(&v_ht)?.cell_div(&w_h_ht)?;
        }
        Ok((w, h))
    }

    /// Frobenius reconstruction error `‖V − W·H‖`.
    pub fn reconstruction_error(
        v: &BlockedMatrix,
        w: &BlockedMatrix,
        h: &BlockedMatrix,
    ) -> Result<f64> {
        let wh = w.matmul_reference(h)?;
        Ok(v.sub(&wh)?.norm2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Gnmf {
        Gnmf {
            rows: 30,
            cols: 24,
            sparsity: 0.3,
            rank: 4,
            iterations: 2,
        }
    }

    #[test]
    fn program_has_ten_ops_per_iteration() {
        let mut p = Program::new();
        tiny().build(&mut p).unwrap();
        assert_eq!(p.ops().len(), 2 * 10);
        assert_eq!(p.ops()[0].phase, 0);
        assert_eq!(p.ops()[10].phase, 1);
        p.validate().unwrap();
    }

    #[test]
    fn engine_matches_reference() {
        let cfg = tiny();
        let mut session = Session::builder()
            .workers(3)
            .local_threads(2)
            .block_size(8)
            .seed(77)
            .build();
        let v = dmac_data::uniform_sparse(cfg.rows, cfg.cols, cfg.sparsity, 8, 5);
        let (_, handles) = cfg.run(&mut session, v.clone()).unwrap();
        let got_w = session.value(handles.w).unwrap();
        let got_h = session.value(handles.h).unwrap();

        let (w0, h0) = cfg.initial_factors(&handles, 8, 77).unwrap();
        let (ref_w, ref_h) = cfg.reference(&v, w0, h0).unwrap();
        assert!(
            dmac_matrix::approx_eq_slice(got_w.to_dense().data(), ref_w.to_dense().data(), 1e-6)
                .is_none(),
            "W mismatch"
        );
        assert!(
            dmac_matrix::approx_eq_slice(got_h.to_dense().data(), ref_h.to_dense().data(), 1e-6)
                .is_none(),
            "H mismatch"
        );
    }

    /// GNMF's plan exercises every primitive the flight recorder knows:
    /// partitions, broadcasts, CPMM, the RMM variants, and cell-wise
    /// work. The sparse input makes `|A|` a worst-case bound rather than
    /// exact, but the model must never *undershoot* on the dense
    /// intermediates, and the trace totals must stay internally
    /// consistent with the planner's estimate.
    #[test]
    fn trace_covers_all_primitives_and_predictions_sum() {
        let cfg = tiny();
        let mut session = Session::builder()
            .workers(4)
            .local_threads(1)
            .block_size(8)
            .seed(77)
            .build();
        let v = dmac_data::uniform_sparse(cfg.rows, cfg.cols, cfg.sparsity, 8, 5);
        let (report, _) = cfg.run(&mut session, v).unwrap();
        let trace = &report.trace;
        assert_eq!(trace.predicted_total(), report.planner_estimate);
        assert_eq!(trace.stage_count, report.stage_count);
        assert_eq!(trace.workers, 4);
        let kinds: std::collections::HashSet<&str> =
            trace.steps.iter().map(|s| s.kind.as_str()).collect();
        for expected in ["partition", "broadcast", "transpose", "CPMM"] {
            assert!(
                kinds.contains(expected),
                "trace missing {expected}: {kinds:?}"
            );
        }
        // Dense intermediates (the factors and their products) conform
        // exactly; only the sparse V load may deviate from worst case,
        // and CPMM sits at or below its N·|AB| bound (here the shared
        // dimension splits into fewer blocks than workers, so fewer than
        // N partials actually ship).
        for t in &trace.steps {
            if t.label.starts_with("V(") {
                continue;
            }
            if t.kind == "CPMM" {
                assert!(
                    t.actual_bytes <= t.predicted_bytes,
                    "step {} (CPMM {}): {} exceeds the N·|AB| bound {}",
                    t.step,
                    t.label,
                    t.actual_bytes,
                    t.predicted_bytes
                );
            } else {
                assert_eq!(
                    t.predicted_bytes, t.actual_bytes,
                    "step {} ({} {}) on dense data must conform",
                    t.step, t.kind, t.label
                );
            }
        }
        // Per-worker traffic is recorded and sums to the wire total.
        let sent: u64 = trace.sent_per_worker().iter().sum();
        assert_eq!(sent, trace.wire_total());
    }

    #[test]
    fn iterations_reduce_reconstruction_error() {
        let cfg = Gnmf {
            iterations: 6,
            ..tiny()
        };
        let v = dmac_data::uniform_sparse(cfg.rows, cfg.cols, cfg.sparsity, 8, 5);
        let mut p = Program::new();
        let handles = cfg.build(&mut p).unwrap();
        let (w0, h0) = cfg.initial_factors(&handles, 8, 0xD11AC).unwrap();
        let e0 = Gnmf::reconstruction_error(&v, &w0, &h0).unwrap();
        let (w, h) = cfg.reference(&v, w0, h0).unwrap();
        let e1 = Gnmf::reconstruction_error(&v, &w, &h).unwrap();
        assert!(e1 < e0, "GNMF must reduce error: {e0} -> {e1}");
    }
}
