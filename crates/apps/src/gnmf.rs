//! Gaussian Non-Negative Matrix Factorisation (paper Code 1).
//!
//! Finds `W (d×k)` and `H (k×w)` with `V ≈ W·H` by the multiplicative
//! updates
//!
//! ```text
//! H ← H * (Wᵀ V) / (Wᵀ W H)
//! W ← W * (V Hᵀ) / (W H Hᵀ)
//! ```
//!
//! The program is unrolled over `iterations`, each iteration tagged as a
//! phase so the engine reports the per-iteration accumulated curves of
//! Figure 6.

use dmac_core::engine::{random_cell, ExecReport};
use dmac_core::{Result, Session};
use dmac_lang::{Expr, Program};
use dmac_matrix::BlockedMatrix;

/// GNMF configuration.
#[derive(Debug, Clone, Copy)]
pub struct Gnmf {
    /// Rows of `V` (users in the Netflix workload).
    pub rows: usize,
    /// Columns of `V` (movies).
    pub cols: usize,
    /// Sparsity of `V`.
    pub sparsity: f64,
    /// Factor rank `k` (the paper uses 200 for Netflix).
    pub rank: usize,
    /// Number of multiplicative-update iterations.
    pub iterations: usize,
}

/// Handles into the built program.
#[derive(Debug, Clone, Copy)]
pub struct GnmfProgram {
    /// The `V` input expression.
    pub v: Expr,
    /// Initial `W`.
    pub w0: Expr,
    /// Initial `H`.
    pub h0: Expr,
    /// Final `W`.
    pub w: Expr,
    /// Final `H`.
    pub h: Expr,
}

impl Gnmf {
    /// Build the unrolled GNMF program. `V` must be bound as `"V"`.
    pub fn build(&self, p: &mut Program) -> Result<GnmfProgram> {
        let v = p.load("V", self.rows, self.cols, self.sparsity);
        let w0 = p.random("W0", self.rows, self.rank);
        let h0 = p.random("H0", self.rank, self.cols);
        let (mut w, mut h) = (w0, h0);
        for i in 0..self.iterations {
            p.set_phase(i);
            // H = H * (Wt %*% V) / (Wt %*% W %*% H)
            let wt_v = p.matmul(w.t(), v)?;
            let wt_w = p.matmul(w.t(), w)?;
            let wt_w_h = p.matmul(wt_w, h)?;
            let h_num = p.cell_mul(h, wt_v)?;
            h = p.cell_div(h_num, wt_w_h)?;
            // W = W * (V %*% Ht) / (W %*% H %*% Ht)
            let v_ht = p.matmul(v, h.t())?;
            let h_ht = p.matmul(h, h.t())?;
            let w_h_ht = p.matmul(w, h_ht)?;
            let w_num = p.cell_mul(w, v_ht)?;
            w = p.cell_div(w_num, w_h_ht)?;
        }
        p.store(w, "W");
        p.store(h, "H");
        Ok(GnmfProgram { v, w0, h0, w, h })
    }

    /// Run GNMF on a session; `v` is bound and the program executed.
    pub fn run(
        &self,
        session: &mut Session,
        v: BlockedMatrix,
    ) -> Result<(ExecReport, GnmfProgram)> {
        session.bind("V", v)?;
        let mut p = Program::new();
        let handles = self.build(&mut p)?;
        let report = session.run(&p)?;
        Ok((report, handles))
    }

    /// The deterministic initial factor matrices the engine will generate
    /// for a given seed (used by the reference implementation).
    pub fn initial_factors(
        &self,
        handles: &GnmfProgram,
        block: usize,
        seed: u64,
    ) -> Result<(BlockedMatrix, BlockedMatrix)> {
        let w = BlockedMatrix::from_fn(self.rows, self.rank, block, |i, j| {
            random_cell(seed, handles.w0.id, i, j)
        })?;
        let h = BlockedMatrix::from_fn(self.rank, self.cols, block, |i, j| {
            random_cell(seed, handles.h0.id, i, j)
        })?;
        Ok((w, h))
    }

    /// Plain local reference: the same updates with sequential kernels.
    pub fn reference(
        &self,
        v: &BlockedMatrix,
        mut w: BlockedMatrix,
        mut h: BlockedMatrix,
    ) -> Result<(BlockedMatrix, BlockedMatrix)> {
        for _ in 0..self.iterations {
            let wt = w.transpose();
            let wt_v = wt.matmul_reference(v)?;
            let wt_w = wt.matmul_reference(&w)?;
            let wt_w_h = wt_w.matmul_reference(&h)?;
            h = h.cell_mul(&wt_v)?.cell_div(&wt_w_h)?;
            let ht = h.transpose();
            let v_ht = v.matmul_reference(&ht)?;
            let h_ht = h.matmul_reference(&ht)?;
            let w_h_ht = w.matmul_reference(&h_ht)?;
            w = w.cell_mul(&v_ht)?.cell_div(&w_h_ht)?;
        }
        Ok((w, h))
    }

    /// Frobenius reconstruction error `‖V − W·H‖`.
    pub fn reconstruction_error(
        v: &BlockedMatrix,
        w: &BlockedMatrix,
        h: &BlockedMatrix,
    ) -> Result<f64> {
        let wh = w.matmul_reference(h)?;
        Ok(v.sub(&wh)?.norm2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Gnmf {
        Gnmf {
            rows: 30,
            cols: 24,
            sparsity: 0.3,
            rank: 4,
            iterations: 2,
        }
    }

    #[test]
    fn program_has_ten_ops_per_iteration() {
        let mut p = Program::new();
        tiny().build(&mut p).unwrap();
        assert_eq!(p.ops().len(), 2 * 10);
        assert_eq!(p.ops()[0].phase, 0);
        assert_eq!(p.ops()[10].phase, 1);
        p.validate().unwrap();
    }

    #[test]
    fn engine_matches_reference() {
        let cfg = tiny();
        let mut session = Session::builder()
            .workers(3)
            .local_threads(2)
            .block_size(8)
            .seed(77)
            .build();
        let v = dmac_data::uniform_sparse(cfg.rows, cfg.cols, cfg.sparsity, 8, 5);
        let (_, handles) = cfg.run(&mut session, v.clone()).unwrap();
        let got_w = session.value(handles.w).unwrap();
        let got_h = session.value(handles.h).unwrap();

        let (w0, h0) = cfg.initial_factors(&handles, 8, 77).unwrap();
        let (ref_w, ref_h) = cfg.reference(&v, w0, h0).unwrap();
        assert!(
            dmac_matrix::approx_eq_slice(got_w.to_dense().data(), ref_w.to_dense().data(), 1e-6)
                .is_none(),
            "W mismatch"
        );
        assert!(
            dmac_matrix::approx_eq_slice(got_h.to_dense().data(), ref_h.to_dense().data(), 1e-6)
                .is_none(),
            "H mismatch"
        );
    }

    /// GNMF's plan exercises every primitive the flight recorder knows:
    /// partitions, broadcasts, CPMM, the RMM variants, and cell-wise
    /// work. The sparse input makes `|A|` a worst-case bound rather than
    /// exact, but the model must never *undershoot* on the dense
    /// intermediates, and the trace totals must stay internally
    /// consistent with the planner's estimate.
    #[test]
    fn trace_covers_all_primitives_and_predictions_sum() {
        let cfg = tiny();
        let mut session = Session::builder()
            .workers(4)
            .local_threads(1)
            .block_size(8)
            .seed(77)
            .build();
        let v = dmac_data::uniform_sparse(cfg.rows, cfg.cols, cfg.sparsity, 8, 5);
        let (report, _) = cfg.run(&mut session, v).unwrap();
        let trace = &report.trace;
        assert_eq!(trace.predicted_total(), report.planner_estimate);
        assert_eq!(trace.stage_count, report.stage_count);
        assert_eq!(trace.workers, 4);
        let kinds: std::collections::HashSet<&str> =
            trace.steps.iter().map(|s| s.kind.as_str()).collect();
        for expected in ["partition", "broadcast", "transpose", "CPMM"] {
            assert!(
                kinds.contains(expected),
                "trace missing {expected}: {kinds:?}"
            );
        }
        // Dense intermediates (the factors and their products) conform
        // exactly; only the sparse V load may deviate from worst case,
        // and CPMM sits at or below its N·|AB| bound (here the shared
        // dimension splits into fewer blocks than workers, so fewer than
        // N partials actually ship).
        for t in &trace.steps {
            if t.label.starts_with("V(") {
                continue;
            }
            if t.kind == "CPMM" {
                assert!(
                    t.actual_bytes <= t.predicted_bytes,
                    "step {} (CPMM {}): {} exceeds the N·|AB| bound {}",
                    t.step,
                    t.label,
                    t.actual_bytes,
                    t.predicted_bytes
                );
            } else {
                assert_eq!(
                    t.predicted_bytes, t.actual_bytes,
                    "step {} ({} {}) on dense data must conform",
                    t.step, t.kind, t.label
                );
            }
        }
        // Per-worker traffic is recorded and sums to the wire total.
        let sent: u64 = trace.sent_per_worker().iter().sum();
        assert_eq!(sent, trace.wire_total());
    }

    #[test]
    fn iterations_reduce_reconstruction_error() {
        let cfg = Gnmf {
            iterations: 6,
            ..tiny()
        };
        let v = dmac_data::uniform_sparse(cfg.rows, cfg.cols, cfg.sparsity, 8, 5);
        let mut p = Program::new();
        let handles = cfg.build(&mut p).unwrap();
        let (w0, h0) = cfg.initial_factors(&handles, 8, 0xD11AC).unwrap();
        let e0 = Gnmf::reconstruction_error(&v, &w0, &h0).unwrap();
        let (w, h) = cfg.reference(&v, w0, h0).unwrap();
        let e1 = Gnmf::reconstruction_error(&v, &w, &h).unwrap();
        assert!(e1 < e0, "GNMF must reduce error: {e0} -> {e1}");
    }
}
