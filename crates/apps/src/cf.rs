//! Item-based collaborative filtering (paper Code 3).
//!
//! `result = R %*% Rᵀ %*% R` — the item-similarity matrix `R·Rᵀ` applied
//! back to the ratings — followed by a normalisation. The paper leaves the
//! normalisation unspecified ("a normalization step is needed at last");
//! we normalise by the global maximum-magnitude proxy `1/‖result‖_F` so
//! predictions land in a stable range, and document the choice here.

use dmac_core::engine::ExecReport;
use dmac_core::{Result, Session};
use dmac_lang::{Expr, Program};
use dmac_matrix::BlockedMatrix;

/// Collaborative-filtering configuration.
#[derive(Debug, Clone, Copy)]
pub struct CollaborativeFiltering {
    /// Items (rows of `R` — `R[i, j]` is the rating of item `i` by user `j`).
    pub items: usize,
    /// Users (columns of `R`).
    pub users: usize,
    /// Sparsity of `R`.
    pub sparsity: f64,
}

/// Handles into the built program.
#[derive(Debug, Clone, Copy)]
pub struct CfProgram {
    /// The ratings matrix.
    pub r: Expr,
    /// The normalised prediction matrix.
    pub predict: Expr,
}

impl CollaborativeFiltering {
    /// Build the program; `R` must be bound.
    pub fn build(&self, p: &mut Program) -> Result<CfProgram> {
        let r = p.load("R", self.items, self.users, self.sparsity);
        let sim = p.matmul(r, r.t())?;
        let result = p.matmul(sim, r)?;
        let norm = p.norm2(result)?;
        let predict = p.scale(result, dmac_lang::ScalarExpr::c(1.0) / norm)?;
        p.store(predict, "predict");
        Ok(CfProgram { r, predict })
    }

    /// Run on a session.
    pub fn run(
        &self,
        session: &mut Session,
        ratings: BlockedMatrix,
    ) -> Result<(ExecReport, CfProgram)> {
        session.bind("R", ratings)?;
        let mut p = Program::new();
        let handles = self.build(&mut p)?;
        let report = session.run(&p)?;
        Ok((report, handles))
    }

    /// Plain local reference.
    pub fn reference(&self, r: &BlockedMatrix) -> Result<BlockedMatrix> {
        let sim = r.matmul_reference(&r.transpose())?;
        let result = sim.matmul_reference(r)?;
        let n = result.norm2();
        Ok(result.scale(1.0 / n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CollaborativeFiltering {
        CollaborativeFiltering {
            items: 24,
            users: 40,
            sparsity: 0.2,
        }
    }

    #[test]
    fn engine_matches_reference() {
        let cfg = tiny();
        let r = dmac_data::uniform_sparse(cfg.items, cfg.users, cfg.sparsity, 8, 9);
        let mut session = Session::builder()
            .workers(2)
            .local_threads(2)
            .block_size(8)
            .build();
        let (_, handles) = cfg.run(&mut session, r.clone()).unwrap();
        let got = session.value(handles.predict).unwrap();
        let expect = cfg.reference(&r).unwrap();
        assert!(dmac_matrix::approx_eq_slice(
            got.to_dense().data(),
            expect.to_dense().data(),
            1e-9
        )
        .is_none());
    }

    #[test]
    fn predictions_are_unit_norm() {
        let cfg = tiny();
        let r = dmac_data::uniform_sparse(cfg.items, cfg.users, cfg.sparsity, 8, 9);
        let p = cfg.reference(&r).unwrap();
        assert!((p.norm2() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_matmuls_one_reduce_one_scale() {
        let mut p = Program::new();
        tiny().build(&mut p).unwrap();
        assert_eq!(p.ops().len(), 4);
    }
}
