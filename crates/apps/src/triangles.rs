//! Triangle counting — one of the graph-mining workloads the paper's
//! introduction motivates ("many data mining algorithms, like Betweenness
//! Centrality and PageRank", §1) expressed in pure matrix form:
//!
//! for an undirected simple graph with adjacency matrix `A`,
//! `triangles = Σ (A² ∘ A) / 6` — paths of length two that close into an
//! edge, each triangle counted once per vertex per orientation.
//!
//! The program is two operators (`A %*% A`, then a cell-wise multiply)
//! plus a reduction: a compact end-to-end exercise of CPMM/RMM planning on
//! symmetric sparse inputs.

use dmac_core::engine::ExecReport;
use dmac_core::{Result, Session};
use dmac_lang::Program;
use dmac_matrix::BlockedMatrix;

/// Triangle-counting configuration.
#[derive(Debug, Clone, Copy)]
pub struct TriangleCount {
    /// Node count (adjacency matrix is `nodes × nodes`).
    pub nodes: usize,
    /// Sparsity of the adjacency matrix.
    pub sparsity: f64,
}

impl TriangleCount {
    /// Build the program; the symmetrised adjacency must be bound as `"A"`.
    pub fn build(&self, p: &mut Program) -> Result<dmac_lang::ScalarExpr> {
        let a = p.load("A", self.nodes, self.nodes, self.sparsity);
        let paths2 = p.matmul(a, a)?;
        let closed = p.cell_mul(paths2, a)?;
        let total = p.sum(closed)?;
        // keep a matrix output so the program is non-empty on the matrix
        // side as well (closed is also useful: per-edge triangle counts)
        p.store(closed, "closed");
        Ok(total / dmac_lang::ScalarExpr::c(6.0))
    }

    /// Symmetrise a directed adjacency matrix and clear the diagonal
    /// (simple undirected graph).
    pub fn symmetrise(adj: &BlockedMatrix) -> Result<BlockedMatrix> {
        let mut set = std::collections::HashSet::new();
        for (i, j, _) in adj.to_triplets() {
            if i != j {
                set.insert((i.min(j), i.max(j)));
            }
        }
        let mut trips = Vec::with_capacity(set.len() * 2);
        for (i, j) in set {
            trips.push((i, j, 1.0));
            trips.push((j, i, 1.0));
        }
        Ok(BlockedMatrix::from_triplets(
            adj.rows(),
            adj.cols(),
            adj.block_size(),
            trips,
        )?)
    }

    /// Run on a session; returns the triangle count.
    pub fn run(&self, session: &mut Session, adj: &BlockedMatrix) -> Result<(ExecReport, f64)> {
        let sym = Self::symmetrise(adj)?;
        session.bind("A", sym)?;
        let mut p = Program::new();
        let total = self.build(&mut p)?;
        let report = session.run(&p)?;
        let count = session.scalar_value(&total)?;
        Ok((report, count))
    }

    /// Exact reference count by enumeration over the symmetrised graph.
    pub fn reference(adj: &BlockedMatrix) -> Result<usize> {
        let sym = Self::symmetrise(adj)?;
        let n = sym.rows();
        let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, j, _) in sym.to_triplets() {
            neighbors[i].push(j);
        }
        for nb in &mut neighbors {
            nb.sort_unstable();
        }
        let mut count = 0usize;
        for u in 0..n {
            for &v in &neighbors[u] {
                if v <= u {
                    continue;
                }
                // count common neighbours w > v
                let (mut a, mut b) = (0, 0);
                let (nu, nv) = (&neighbors[u], &neighbors[v]);
                while a < nu.len() && b < nv.len() {
                    match nu[a].cmp(&nv[b]) {
                        std::cmp::Ordering::Less => a += 1,
                        std::cmp::Ordering::Greater => b += 1,
                        std::cmp::Ordering::Equal => {
                            if nu[a] > v {
                                count += 1;
                            }
                            a += 1;
                            b += 1;
                        }
                    }
                }
            }
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_a_known_triangle() {
        // K3 plus a dangling edge: exactly one triangle.
        let adj = BlockedMatrix::from_triplets(
            4,
            4,
            2,
            vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0)],
        )
        .unwrap();
        assert_eq!(TriangleCount::reference(&adj).unwrap(), 1);
        let mut session = Session::builder()
            .workers(2)
            .local_threads(1)
            .block_size(2)
            .build();
        let cfg = TriangleCount {
            nodes: 4,
            sparsity: 0.5,
        };
        let (_, count) = cfg.run(&mut session, &adj).unwrap();
        assert!((count - 1.0).abs() < 1e-9, "count {count}");
    }

    #[test]
    fn complete_graph_k5_has_ten_triangles() {
        let mut trips = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    trips.push((i, j, 1.0));
                }
            }
        }
        let adj = BlockedMatrix::from_triplets(5, 5, 2, trips).unwrap();
        assert_eq!(TriangleCount::reference(&adj).unwrap(), 10);
        let mut session = Session::builder()
            .workers(3)
            .local_threads(1)
            .block_size(2)
            .build();
        let (_, count) = TriangleCount {
            nodes: 5,
            sparsity: 1.0,
        }
        .run(&mut session, &adj)
        .unwrap();
        assert!((count - 10.0).abs() < 1e-9);
    }

    #[test]
    fn matches_reference_on_random_graph() {
        let adj = dmac_data::powerlaw_graph(60, 400, 8, 77);
        let expect = TriangleCount::reference(&adj).unwrap() as f64;
        let mut session = Session::builder()
            .workers(4)
            .local_threads(2)
            .block_size(8)
            .build();
        let (_, count) = TriangleCount {
            nodes: 60,
            sparsity: 0.2,
        }
        .run(&mut session, &adj)
        .unwrap();
        assert!(
            (count - expect).abs() < 1e-6,
            "got {count}, expect {expect}"
        );
    }

    #[test]
    fn symmetrise_is_symmetric_and_hollow() {
        let adj = dmac_data::powerlaw_graph(30, 120, 8, 3);
        let sym = TriangleCount::symmetrise(&adj).unwrap();
        let d = sym.to_dense();
        for i in 0..30 {
            assert_eq!(d.at(i, i), 0.0, "diagonal must be clear");
            for j in 0..30 {
                assert_eq!(d.at(i, j), d.at(j, i), "must be symmetric");
            }
        }
    }
}
