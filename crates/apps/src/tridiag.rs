//! Symmetric tridiagonal eigensolver (the driver-side final step of the
//! Lanczos SVD, paper Code 5: `triDiag.computeSingularValue()`).
//!
//! Implements the implicit-shift QL algorithm (the classic `tql2` routine)
//! on the diagonal/off-diagonal representation. Eigenvalues of the Lanczos
//! tridiagonal matrix of `VᵀV` are the squared singular values of `V`.

/// Eigenvalues of the symmetric tridiagonal matrix with diagonal `d` and
/// off-diagonal `e` (`e[i]` couples rows `i` and `i+1`; `e.len() ==
/// d.len() - 1`). Returned in descending order.
///
/// # Panics
/// Panics if `e.len() + 1 != d.len()` or the QL iteration fails to
/// converge within 50 sweeps per eigenvalue (does not happen for
/// well-formed symmetric input).
pub fn tridiagonal_eigenvalues(d: &[f64], e: &[f64]) -> Vec<f64> {
    let n = d.len();
    assert!(n > 0, "empty matrix");
    assert_eq!(e.len() + 1, n, "off-diagonal length must be n-1");
    let mut d = d.to_vec();
    // working copy of the off-diagonal, shifted like tql2 expects
    let mut e: Vec<f64> = e.iter().copied().chain(std::iter::once(0.0)).collect();

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "QL failed to converge");
            // Implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                f = 0.0;
                let _ = f;
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(|a, b| b.partial_cmp(a).unwrap());
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_eig_2x2(a: f64, b: f64, c: f64) -> (f64, f64) {
        // eigenvalues of [[a, b], [b, c]]
        let t = (a + c) / 2.0;
        let disc = (((a - c) / 2.0).powi(2) + b * b).sqrt();
        (t + disc, t - disc)
    }

    #[test]
    fn one_by_one() {
        assert_eq!(tridiagonal_eigenvalues(&[3.5], &[]), vec![3.5]);
    }

    #[test]
    fn two_by_two_matches_closed_form() {
        let (hi, lo) = dense_eig_2x2(2.0, 1.0, -1.0);
        let got = tridiagonal_eigenvalues(&[2.0, -1.0], &[1.0]);
        assert!((got[0] - hi).abs() < 1e-12, "{got:?}");
        assert!((got[1] - lo).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_returns_sorted_diagonal() {
        let got = tridiagonal_eigenvalues(&[1.0, 5.0, 3.0], &[0.0, 0.0]);
        assert_eq!(got, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn toeplitz_tridiagonal_known_spectrum() {
        // The n×n tridiagonal with diagonal a and off-diagonal b has
        // eigenvalues a + 2b·cos(kπ/(n+1)).
        let n = 8;
        let (a, b) = (2.0, -1.0);
        let d = vec![a; n];
        let e = vec![b; n - 1];
        let got = tridiagonal_eigenvalues(&d, &e);
        let mut expect: Vec<f64> = (1..=n)
            .map(|k| a + 2.0 * b * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        expect.sort_by(|x, y| y.partial_cmp(x).unwrap());
        for (g, x) in got.iter().zip(expect.iter()) {
            assert!((g - x).abs() < 1e-10, "{got:?} vs {expect:?}");
        }
    }

    #[test]
    fn trace_and_frobenius_are_preserved() {
        let d = [1.0, -2.0, 0.5, 4.0, 3.0];
        let e = [0.7, 1.3, -0.2, 2.1];
        let eig = tridiagonal_eigenvalues(&d, &e);
        let trace: f64 = d.iter().sum();
        let eig_sum: f64 = eig.iter().sum();
        assert!((trace - eig_sum).abs() < 1e-9);
        let frob2: f64 =
            d.iter().map(|x| x * x).sum::<f64>() + 2.0 * e.iter().map(|x| x * x).sum::<f64>();
        let eig2: f64 = eig.iter().map(|x| x * x).sum();
        assert!((frob2 - eig2).abs() < 1e-8);
    }
}
