//! Lanczos SVD (paper Code 5).
//!
//! Runs the Lanczos iteration on the Gram matrix `VᵀV`: the distributed
//! work per step is `w = Vᵀ (V v)` — the same double multiplication as
//! linear regression, which is why the paper groups them ("The core
//! computation of SVD is two multiply operators"). The α/β recurrence
//! builds a `rank × rank` tridiagonal matrix on the driver whose
//! eigenvalues are the squared singular values of `V`
//! ([`crate::tridiag::tridiagonal_eigenvalues`]).
//!
//! The paper's Code 5 carries two transcription slips (`beta = v.norm(2)`
//! for `w.norm(2)`, and `vp = w; vc = vp` for `vp = vc; vc = w/β`); we
//! implement the textbook recurrence, which is unambiguous.

use dmac_core::engine::ExecReport;
use dmac_core::{Result, Session};
use dmac_lang::{Expr, Program, ScalarExpr};
use dmac_matrix::BlockedMatrix;

use crate::tridiag::tridiagonal_eigenvalues;

/// Lanczos SVD configuration.
#[derive(Debug, Clone, Copy)]
pub struct SvdLanczos {
    /// Rows of `V`.
    pub rows: usize,
    /// Columns of `V` (the Lanczos vectors live in this dimension).
    pub cols: usize,
    /// Sparsity of `V`.
    pub sparsity: f64,
    /// Number of Lanczos steps = rank of the approximation.
    pub rank: usize,
}

/// Handles into the built program.
#[derive(Debug, Clone)]
pub struct SvdProgram {
    /// The input matrix.
    pub v: Expr,
    /// Final Lanczos vector (program output anchor).
    pub last_vec: Expr,
    /// α scalar of each step.
    pub alphas: Vec<ScalarExpr>,
    /// β scalar of each step.
    pub betas: Vec<ScalarExpr>,
}

impl SvdLanczos {
    /// Build the unrolled Lanczos program; `V` must be bound.
    pub fn build(&self, p: &mut Program) -> Result<SvdProgram> {
        let v = p.load("V", self.rows, self.cols, self.sparsity);
        let v0 = p.random("lanczos0", self.cols, 1);
        let n0 = p.norm2(v0)?;
        let mut vc = p.scale(v0, ScalarExpr::c(1.0) / n0)?;
        let mut vp: Option<(Expr, ScalarExpr)> = None; // (v_{i-1}, β_{i-1})

        let mut alphas = Vec::with_capacity(self.rank);
        let mut betas = Vec::with_capacity(self.rank);

        for i in 0..self.rank {
            p.set_phase(i);
            // w = Vᵀ (V vc)
            let vvc = p.matmul(v, vc)?;
            let w = p.matmul(v.t(), vvc)?;
            // α = vcᵀ w
            let a_m = p.matmul(vc.t(), w)?;
            let alpha = p.value(a_m)?;
            // w ← w − α vc − β_{i-1} v_{i-1}
            let a_vc = p.scale(vc, alpha.clone())?;
            let mut w2 = p.sub(w, a_vc)?;
            if let Some((prev, beta_prev)) = vp.clone() {
                let b_vp = p.scale(prev, beta_prev)?;
                w2 = p.sub(w2, b_vp)?;
            }
            // β = ‖w‖ ; v_{i+1} = w / β
            let beta = p.norm2(w2)?;
            let vnext = p.scale(w2, ScalarExpr::c(1.0) / beta.clone())?;
            alphas.push(alpha);
            betas.push(beta.clone());
            vp = Some((vc, beta));
            vc = vnext;
        }
        p.store(vc, "lanczos_last");
        Ok(SvdProgram {
            v,
            last_vec: vc,
            alphas,
            betas,
        })
    }

    /// Run on a session and return the approximated singular values
    /// (descending).
    pub fn run(&self, session: &mut Session, v: BlockedMatrix) -> Result<(ExecReport, Vec<f64>)> {
        session.bind("V", v)?;
        let mut p = Program::new();
        let handles = self.build(&mut p)?;
        let report = session.run(&p)?;
        let alphas: Vec<f64> = handles
            .alphas
            .iter()
            .map(|a| session.scalar_value(a))
            .collect::<Result<_>>()?;
        let betas: Vec<f64> = handles
            .betas
            .iter()
            .map(|b| session.scalar_value(b))
            .collect::<Result<_>>()?;
        Ok((report, Self::singular_values(&alphas, &betas)))
    }

    /// Singular values from the Lanczos α/β recurrence: square roots of
    /// the tridiagonal eigenvalues (clamped at zero — tiny negatives are
    /// floating-point noise).
    pub fn singular_values(alphas: &[f64], betas: &[f64]) -> Vec<f64> {
        let n = alphas.len();
        if n == 0 {
            return Vec::new();
        }
        let off: Vec<f64> = betas[..n - 1].to_vec();
        tridiagonal_eigenvalues(alphas, &off)
            .into_iter()
            .map(|l| l.max(0.0).sqrt())
            .collect()
    }

    /// Plain local Lanczos reference returning (alphas, betas).
    pub fn reference(&self, v: &BlockedMatrix, v0: &BlockedMatrix) -> Result<(Vec<f64>, Vec<f64>)> {
        let vt = v.transpose();
        let mut vc = v0.scale(1.0 / v0.norm2());
        let mut prev: Option<(BlockedMatrix, f64)> = None;
        let mut alphas = Vec::new();
        let mut betas = Vec::new();
        for _ in 0..self.rank {
            let w = vt.matmul_reference(&v.matmul_reference(&vc)?)?;
            let alpha = vc.transpose().matmul_reference(&w)?.sum();
            let mut w2 = w.sub(&vc.scale(alpha))?;
            if let Some((pv, pb)) = &prev {
                w2 = w2.sub(&pv.scale(*pb))?;
            }
            let beta = w2.norm2();
            let vnext = w2.scale(1.0 / beta);
            alphas.push(alpha);
            betas.push(beta);
            prev = Some((vc, beta));
            vc = vnext;
        }
        Ok((alphas, betas))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanczos_recovers_known_singular_values() {
        // Diagonal-ish matrix with known singular values 4, 2, 1.
        let v = BlockedMatrix::from_fn(
            6,
            3,
            2,
            |i, j| {
                if i == j {
                    [4.0, 2.0, 1.0][j]
                } else {
                    0.0
                }
            },
        )
        .unwrap();
        let cfg = SvdLanczos {
            rows: 6,
            cols: 3,
            sparsity: 1.0,
            rank: 3,
        };
        let v0 = dmac_data::dense_random(3, 1, 2, 12);
        let (a, b) = cfg.reference(&v, &v0).unwrap();
        let sv = SvdLanczos::singular_values(&a, &b);
        assert!((sv[0] - 4.0).abs() < 1e-6, "{sv:?}");
        assert!((sv[1] - 2.0).abs() < 1e-6, "{sv:?}");
        assert!((sv[2] - 1.0).abs() < 1e-6, "{sv:?}");
    }

    #[test]
    fn engine_matches_reference_spectrum() {
        let cfg = SvdLanczos {
            rows: 30,
            cols: 12,
            sparsity: 0.4,
            rank: 4,
        };
        let v = dmac_data::uniform_sparse(cfg.rows, cfg.cols, cfg.sparsity, 8, 21);
        let mut session = Session::builder()
            .workers(2)
            .local_threads(2)
            .block_size(8)
            .seed(33)
            .build();
        let (_, sv) = cfg.run(&mut session, v.clone()).unwrap();
        assert_eq!(sv.len(), 4);
        // The dominant singular value must match a locally-computed
        // Lanczos with the same starting vector.
        // Reconstruct v0 exactly as the engine does: the random matrix
        // "lanczos0" is the second declaration (id 1) in this program.
        let lanczos0_id = 1;
        let v0 = BlockedMatrix::from_fn(cfg.cols, 1, 8, |i, j| {
            dmac_core::engine::random_cell(33, lanczos0_id, i, j)
        })
        .unwrap();
        let (a, b) = cfg.reference(&v, &v0).unwrap();
        let expect = SvdLanczos::singular_values(&a, &b);
        for (g, x) in sv.iter().zip(expect.iter()) {
            assert!(
                (g - x).abs() < 1e-6 * x.abs().max(1.0),
                "{sv:?} vs {expect:?}"
            );
        }
    }

    #[test]
    fn singular_values_are_descending_and_nonnegative() {
        let cfg = SvdLanczos {
            rows: 40,
            cols: 16,
            sparsity: 0.3,
            rank: 6,
        };
        let v = dmac_data::uniform_sparse(cfg.rows, cfg.cols, cfg.sparsity, 8, 4);
        let v0 = dmac_data::dense_random(cfg.cols, 1, 8, 5);
        let (a, b) = cfg.reference(&v, &v0).unwrap();
        let sv = SvdLanczos::singular_values(&a, &b);
        for w in sv.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(sv.iter().all(|s| *s >= 0.0));
    }
}
