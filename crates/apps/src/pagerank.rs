//! PageRank (paper Code 2).
//!
//! `rank = (rank %*% link) * 0.85 + D * 0.15`, where `link` is the
//! row-normalised adjacency matrix and `rank` a `1 × N` vector. `D` is the
//! teleport vector (uniform `1/N`). The link matrix is loop-invariant: the
//! whole point of the Figure 9(a) experiment is that DMac caches its
//! Column scheme once and only a Broadcast of the small rank vector moves
//! per iteration, while SystemML-S repartitions `link` every time.

use dmac_core::engine::{random_cell, ExecReport};
use dmac_core::{Result, Session};
use dmac_lang::{Expr, Program};
use dmac_matrix::BlockedMatrix;

use crate::checkpoint::CheckpointedRun;

/// Store names the checkpointed PageRank driver snapshots at every phase
/// boundary. The loop-invariant `link` and `D` ride along so their
/// cached schemes restore on recovery (content addressing makes their
/// re-checkpoint free — the blobs already exist).
pub const PAGERANK_CHECKPOINT_NAMES: [&str; 3] = ["link", "D", "rank"];

/// PageRank configuration.
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    /// Node count.
    pub nodes: usize,
    /// Sparsity of the link matrix (edges / nodes²).
    pub link_sparsity: f64,
    /// Damping factor (0.85 in the paper).
    pub damping: f64,
    /// Iterations.
    pub iterations: usize,
}

/// Handles into the built program.
#[derive(Debug, Clone, Copy)]
pub struct PageRankProgram {
    /// The link matrix expression.
    pub link: Expr,
    /// The initial rank vector.
    pub rank0: Expr,
    /// The final rank vector.
    pub rank: Expr,
}

impl PageRank {
    /// Build the unrolled program; `link` and `D` must be bound.
    pub fn build(&self, p: &mut Program) -> Result<PageRankProgram> {
        let link = p.load("link", self.nodes, self.nodes, self.link_sparsity);
        let d = p.load("D", 1, self.nodes, 1.0);
        let rank0 = p.random("rank0", 1, self.nodes);
        let mut rank = rank0;
        for i in 0..self.iterations {
            p.set_phase(i);
            let walk = p.matmul(rank, link)?;
            let damped = p.scale_const(walk, self.damping)?;
            let teleport = p.scale_const(d, 1.0 - self.damping)?;
            rank = p.add(damped, teleport)?;
        }
        p.store(rank, "rank");
        Ok(PageRankProgram { link, rank0, rank })
    }

    /// Build the init program of the checkpointed driver: generate the
    /// random initial rank vector and store it under `"rank"` (identity
    /// scale keeps it op-produced; `× 1.0` is bit-exact).
    pub fn build_init(&self, p: &mut Program) -> Result<Expr> {
        let rank0 = p.random("rank0", 1, self.nodes);
        let rank = p.scale_const(rank0, 1.0)?;
        p.store(rank, "rank");
        Ok(rank0)
    }

    /// Build the per-iteration program of the checkpointed driver: one
    /// damped walk step, reading and storing `"rank"`.
    pub fn build_step(&self, p: &mut Program) -> Result<()> {
        let link = p.load("link", self.nodes, self.nodes, self.link_sparsity);
        let d = p.load("D", 1, self.nodes, 1.0);
        let rank = p.load("rank", 1, self.nodes, 1.0);
        let walk = p.matmul(rank, link)?;
        let damped = p.scale_const(walk, self.damping)?;
        let teleport = p.scale_const(d, 1.0 - self.damping)?;
        let next = p.add(damped, teleport)?;
        p.store(next, "rank");
        Ok(())
    }

    /// Run PageRank one iteration at a time, checkpointing
    /// `link`/`D`/`rank` at every phase boundary. Resumes from a
    /// recovered snapshot when the session's store holds one (see
    /// `Gnmf::run_checkpointed` for the recovery contract); otherwise
    /// binds the row-normalised `adjacency` and starts fresh. Read the
    /// final vector with `session.env_value("rank")`.
    pub fn run_checkpointed(
        &self,
        session: &mut Session,
        adjacency: &BlockedMatrix,
    ) -> Result<CheckpointedRun> {
        let names: Vec<String> = PAGERANK_CHECKPOINT_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect();
        let store = session.shared_store().clone();
        let start = match store.latest_snapshot() {
            Some((_, phase))
                if phase as usize <= self.iterations && names.iter().all(|n| store.contains(n)) =>
            {
                phase as usize
            }
            _ => {
                let link = dmac_data::row_normalize(adjacency)?;
                session.bind("link", link)?;
                let d = BlockedMatrix::from_fn(1, self.nodes, session.block_size(), |_, _| {
                    1.0 / self.nodes as f64
                })?;
                session.bind("D", d)?;
                let mut init = Program::new();
                self.build_init(&mut init)?;
                session.run(&init)?;
                session.checkpoint(&names, 0)?;
                0
            }
        };
        let mut step = Program::new();
        self.build_step(&mut step)?;
        for i in start..self.iterations {
            session.run(&step)?;
            session.checkpoint(&names, (i + 1) as u64)?;
        }
        let (final_snapshot, _) = store.latest_snapshot().unwrap_or((0, 0));
        Ok(CheckpointedRun {
            resumed_from: start,
            ran_iterations: self.iterations - start,
            final_snapshot,
        })
    }

    /// Run on a session with a given adjacency matrix (row-normalised
    /// internally).
    pub fn run(
        &self,
        session: &mut Session,
        adjacency: &BlockedMatrix,
    ) -> Result<(ExecReport, PageRankProgram)> {
        let link = dmac_data::row_normalize(adjacency)?;
        session.bind("link", link)?;
        let d = BlockedMatrix::from_fn(1, self.nodes, session.block_size(), |_, _| {
            1.0 / self.nodes as f64
        })?;
        session.bind("D", d)?;
        let mut p = Program::new();
        let handles = self.build(&mut p)?;
        let report = session.run(&p)?;
        Ok((report, handles))
    }

    /// Deterministic initial rank vector matching the engine's generator.
    pub fn initial_rank(
        &self,
        handles: &PageRankProgram,
        block: usize,
        seed: u64,
    ) -> Result<BlockedMatrix> {
        BlockedMatrix::from_fn(1, self.nodes, block, |i, j| {
            random_cell(seed, handles.rank0.id, i, j)
        })
        .map_err(Into::into)
    }

    /// Plain local reference.
    pub fn reference(
        &self,
        link: &BlockedMatrix,
        mut rank: BlockedMatrix,
    ) -> Result<BlockedMatrix> {
        let teleport = 1.0 / self.nodes as f64 * (1.0 - self.damping);
        for _ in 0..self.iterations {
            rank = rank
                .matmul_reference(link)?
                .scale(self.damping)
                .add_scalar(teleport);
        }
        Ok(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PageRank {
        PageRank {
            nodes: 40,
            link_sparsity: 0.1,
            damping: 0.85,
            iterations: 3,
        }
    }

    #[test]
    fn engine_matches_reference() {
        let cfg = tiny();
        let g = dmac_data::powerlaw_graph(cfg.nodes, 160, 8, 3);
        let mut session = Session::builder()
            .workers(2)
            .local_threads(2)
            .block_size(8)
            .seed(5)
            .build();
        let (_, handles) = cfg.run(&mut session, &g).unwrap();
        let got = session.value(handles.rank).unwrap();

        let link = dmac_data::row_normalize(&g).unwrap();
        let r0 = cfg.initial_rank(&handles, 8, 5).unwrap();
        let expect = cfg.reference(&link, r0).unwrap();
        assert!(dmac_matrix::approx_eq_slice(
            got.to_dense().data(),
            expect.to_dense().data(),
            1e-9
        )
        .is_none());
    }

    #[test]
    fn dmac_moves_less_than_systemml_per_iteration() {
        let cfg = PageRank {
            iterations: 4,
            ..tiny()
        };
        let g = dmac_data::powerlaw_graph(cfg.nodes, 160, 8, 3);
        let run = |sys| {
            let mut s = Session::builder()
                .workers(2)
                .local_threads(1)
                .block_size(8)
                .system(sys)
                .build();
            let (report, _) = cfg.run(&mut s, &g).unwrap();
            report.comm.total_bytes()
        };
        use dmac_core::baselines::SystemKind;
        let dmac = run(SystemKind::Dmac);
        let sysml = run(SystemKind::SystemMlS);
        assert!(
            dmac < sysml,
            "DMac must communicate less: {dmac} vs {sysml}"
        );
    }

    /// With a fully dense link matrix the cost model's worst-case sizes
    /// are exact, so the flight recorder must show every step's measured
    /// bytes equal to the planner's prediction — and the per-iteration
    /// broadcast of the rank vector at `N·|rank|`.
    #[test]
    fn dense_run_conforms_to_cost_model_exactly() {
        let cfg = PageRank {
            nodes: 32,
            link_sparsity: 1.0,
            damping: 0.85,
            iterations: 2,
        };
        let adj = BlockedMatrix::from_fn(cfg.nodes, cfg.nodes, 8, |_, _| 1.0).unwrap();
        let mut s = Session::builder()
            .workers(4)
            .local_threads(1)
            .block_size(8)
            .seed(5)
            .build();
        let (report, _) = cfg.run(&mut s, &adj).unwrap();
        let trace = &report.trace;
        for c in trace.conformance() {
            assert_eq!(
                c.predicted, c.actual,
                "step {} ({} {}) must conform",
                c.step, c.kind, c.label
            );
        }
        assert_eq!(trace.predicted_total(), report.planner_estimate);
        let rank_bytes = 8 * cfg.nodes as u64;
        let broadcasts: Vec<u64> = trace
            .steps
            .iter()
            .filter(|t| t.kind == "broadcast")
            .map(|t| t.predicted_bytes)
            .collect();
        assert_eq!(
            broadcasts,
            vec![4 * rank_bytes; cfg.iterations],
            "one N·|rank| broadcast per iteration"
        );
    }

    #[test]
    fn ranks_stay_positive_and_bounded() {
        let cfg = tiny();
        let g = dmac_data::powerlaw_graph(cfg.nodes, 160, 8, 3);
        let link = dmac_data::row_normalize(&g).unwrap();
        let r0 = BlockedMatrix::from_fn(1, cfg.nodes, 8, |_, _| 1.0 / cfg.nodes as f64).unwrap();
        let r = cfg.reference(&link, r0).unwrap();
        for (_, _, v) in r.to_triplets() {
            assert!(v > 0.0 && v < 1.0, "rank {v} out of range");
        }
    }
}
