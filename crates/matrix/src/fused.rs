//! Fused cell-wise expression kernel.
//!
//! The planner collapses chains/DAGs of scheme-aligned cell-wise operators
//! into a single plan step carrying a small post-order expression program
//! (see `dmac-core`). This module is the matrix-level half: it evaluates the
//! whole expression per block in one pass, producing exactly one output
//! block per tile instead of one intermediate per fused operator.
//!
//! Bit-for-bit equivalence with the unfused pipeline is the contract, so the
//! kernel mirrors [`crate::Block`]'s semantics precisely:
//!
//! * every cell is computed by the same `f64` operation sequence the unfused
//!   chain would apply (including the `b == 0 → 0` convention of cell_div),
//!   in the same order, and
//! * the output *representation* (dense vs. sparse) follows the same rules
//!   the chain of `Block` ops would — sparse only when every binary op on
//!   the path had two sparse operands (and was not a division), with
//!   `scale` preserving and `add_scalar` densifying unless the addend is 0.
//!   A sparse result is rebuilt with [`CscBlock::from_dense`], which stores
//!   exactly the non-zero cells — the same set (and the same values) the
//!   unfused triplet-merge path stores.

use crate::block::Block;
use crate::csc::CscBlock;
use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};
use crate::exec::ResultBufferPool;

/// One post-order instruction of a fused cell-wise expression. Scalars are
/// already resolved to concrete values (the plan layer keeps them symbolic
/// for lineage replay; the engine evaluates them before dispatch).
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp {
    /// Push input operand `i` (index into the leaf slice).
    Leaf(usize),
    /// Pop b, pop a, push `a + b`.
    Add,
    /// Pop b, pop a, push `a - b`.
    Sub,
    /// Pop b, pop a, push `a * b`.
    CellMul,
    /// Pop b, pop a, push `if b == 0 { 0 } else { a / b }`.
    CellDiv,
    /// Pop a, push `a * c`.
    Scale(f64),
    /// Pop a, push `a + c`.
    AddScalar(f64),
}

impl FusedOp {
    /// Stack effect: values popped and pushed.
    fn arity(&self) -> (usize, usize) {
        match self {
            FusedOp::Leaf(_) => (0, 1),
            FusedOp::Add | FusedOp::Sub | FusedOp::CellMul | FusedOp::CellDiv => (2, 1),
            FusedOp::Scale(_) | FusedOp::AddScalar(_) => (1, 1),
        }
    }
}

/// Check a program is well-formed: stack never underflows, every leaf index
/// is in range, and exactly one value remains. Returns the maximum stack
/// depth reached.
pub fn validate_program(prog: &[FusedOp], n_leaves: usize) -> Result<usize> {
    let mut depth = 0usize;
    let mut max_depth = 0usize;
    for op in prog {
        if let FusedOp::Leaf(i) = op {
            if *i >= n_leaves {
                return Err(MatrixError::MalformedSparse(format!(
                    "fused program leaf {i} out of range ({n_leaves} operands)"
                )));
            }
        }
        let (pops, pushes) = op.arity();
        if depth < pops {
            return Err(MatrixError::MalformedSparse(
                "fused program stack underflow".into(),
            ));
        }
        depth = depth - pops + pushes;
        max_depth = max_depth.max(depth);
    }
    if depth != 1 {
        return Err(MatrixError::MalformedSparse(format!(
            "fused program leaves {depth} values on the stack (expected 1)"
        )));
    }
    Ok(max_depth)
}

/// One chunk-sized value on the evaluation stack: either a borrowed slice
/// of a leaf operand (no copy) or a recycled scratch buffer.
enum Slot<'a> {
    /// A view into a leaf's chunk.
    Borrowed(&'a [f64]),
    /// A scratch buffer holding an intermediate chunk.
    Owned(Vec<f64>),
}

impl Slot<'_> {
    fn as_slice(&self) -> &[f64] {
        match self {
            Slot::Borrowed(s) => s,
            Slot::Owned(v) => v,
        }
    }
}

/// Pop two chunks, push `f(a, b)` element-wise. Writes in place into an
/// operand's scratch buffer when one exists; only a leaf/leaf pair draws a
/// buffer from the free list.
fn apply_binary<'a>(
    f: impl Fn(f64, f64) -> f64,
    stack: &mut Vec<Slot<'a>>,
    free: &mut Vec<Vec<f64>>,
) {
    let b = stack.pop().expect("validated program");
    let a = stack.pop().expect("validated program");
    let slot = match (a, b) {
        (Slot::Owned(mut av), b) => {
            for (x, &y) in av.iter_mut().zip(b.as_slice()) {
                *x = f(*x, y);
            }
            if let Slot::Owned(bv) = b {
                free.push(bv);
            }
            Slot::Owned(av)
        }
        (Slot::Borrowed(asl), Slot::Owned(mut bv)) => {
            for (y, &x) in bv.iter_mut().zip(asl) {
                *y = f(x, *y);
            }
            Slot::Owned(bv)
        }
        (Slot::Borrowed(asl), Slot::Borrowed(bsl)) => {
            let mut buf = free.pop().expect("stack depth bounds the buffers");
            buf.clear();
            buf.extend(asl.iter().zip(bsl).map(|(&x, &y)| f(x, y)));
            Slot::Owned(buf)
        }
    };
    stack.push(slot);
}

/// Replace the top chunk with `f(a)` element-wise.
fn apply_unary<'a>(f: impl Fn(f64) -> f64, stack: &mut Vec<Slot<'a>>, free: &mut Vec<Vec<f64>>) {
    let a = stack.pop().expect("validated program");
    let slot = match a {
        Slot::Owned(mut av) => {
            for x in av.iter_mut() {
                *x = f(*x);
            }
            Slot::Owned(av)
        }
        Slot::Borrowed(asl) => {
            let mut buf = free.pop().expect("stack depth bounds the buffers");
            buf.clear();
            buf.extend(asl.iter().map(|&x| f(x)));
            Slot::Owned(buf)
        }
    };
    stack.push(slot);
}

/// Abstract interpretation of the output representation: replays the
/// representation rules of [`Block::add`]/[`Block::cell_div`]/etc. over the
/// program so the fused result is stored exactly like the unfused chain's.
fn result_is_sparse(prog: &[FusedOp], leaves: &[&Block]) -> bool {
    let mut stack: Vec<bool> = Vec::with_capacity(4);
    for op in prog {
        match op {
            FusedOp::Leaf(i) => stack.push(leaves[*i].is_sparse()),
            FusedOp::Add | FusedOp::Sub | FusedOp::CellMul => {
                let b = stack.pop().unwrap_or(false);
                let a = stack.pop().unwrap_or(false);
                stack.push(a && b);
            }
            FusedOp::CellDiv => {
                stack.pop();
                stack.pop();
                stack.push(false);
            }
            FusedOp::Scale(_) => {} // keeps representation
            FusedOp::AddScalar(c) => {
                if *c != 0.0 {
                    stack.pop();
                    stack.push(false);
                }
            }
        }
    }
    stack.pop().unwrap_or(false)
}

/// Evaluate a fused cell-wise program over one tile.
///
/// All leaves must share the same shape. The single output allocation is
/// drawn from `pool`; when the result representation is sparse the dense
/// scratch is converted and released back to the pool.
pub fn eval_fused_block(
    prog: &[FusedOp],
    leaves: &[&Block],
    pool: &ResultBufferPool,
) -> Result<Block> {
    let max_depth = validate_program(prog, leaves.len())?;
    let (rows, cols) = match leaves.first() {
        Some(b) => (b.rows(), b.cols()),
        None => {
            return Err(MatrixError::MalformedSparse(
                "fused program has no operands".into(),
            ))
        }
    };
    for b in leaves {
        if b.rows() != rows || b.cols() != cols {
            return Err(MatrixError::DimensionMismatch {
                op: "fused",
                left: (rows, cols),
                right: (b.rows(), b.cols()),
            });
        }
    }

    // Densify sparse leaves once per tile (the fallback path); dense leaves
    // are borrowed directly so the dense/dense fast path does zero copies.
    let densified: Vec<Option<DenseBlock>> = leaves
        .iter()
        .map(|b| match b {
            Block::Dense(_) => None,
            Block::Sparse(s) => Some(s.to_dense()),
        })
        .collect();
    let views: Vec<&[f64]> = leaves
        .iter()
        .zip(densified.iter())
        .map(|(b, d)| match (b, d) {
            (Block::Dense(d), _) => d.data(),
            (_, Some(d)) => d.data(),
            _ => unreachable!("sparse leaf was densified above"),
        })
        .collect();

    let mut acc = pool.acquire(rows, cols);
    let total = rows * cols;
    let out = acc.data_mut();
    // One pass over the tile in L1-sized chunks: per chunk the program runs
    // over slices, so every op is a tight autovectorizable loop and the
    // interpreter dispatch cost is amortized over CHUNK cells. Leaves are
    // pushed as borrowed slices (zero copies); the first op over a leaf
    // pair writes into one of `max_depth` recycled chunk buffers — a few
    // KiB total — so no intermediate tile is ever materialized. Each cell
    // still sees exactly the per-element op sequence of the unfused chain.
    const CHUNK: usize = 512;
    let mut free: Vec<Vec<f64>> = (0..max_depth).map(|_| Vec::with_capacity(CHUNK)).collect();
    let mut stack: Vec<Slot<'_>> = Vec::with_capacity(max_depth);
    let mut start = 0usize;
    while start < total {
        let len = CHUNK.min(total - start);
        for op in prog {
            match op {
                FusedOp::Leaf(i) => stack.push(Slot::Borrowed(&views[*i][start..start + len])),
                FusedOp::Add => apply_binary(|a, b| a + b, &mut stack, &mut free),
                FusedOp::Sub => apply_binary(|a, b| a - b, &mut stack, &mut free),
                FusedOp::CellMul => apply_binary(|a, b| a * b, &mut stack, &mut free),
                FusedOp::CellDiv => apply_binary(
                    |a, b| if b == 0.0 { 0.0 } else { a / b },
                    &mut stack,
                    &mut free,
                ),
                FusedOp::Scale(c) => apply_unary(|a| a * c, &mut stack, &mut free),
                FusedOp::AddScalar(c) => apply_unary(|a| a + c, &mut stack, &mut free),
            }
        }
        match stack.pop().expect("validated program") {
            Slot::Borrowed(s) => out[start..start + len].copy_from_slice(s),
            Slot::Owned(buf) => {
                out[start..start + len].copy_from_slice(&buf);
                free.push(buf);
            }
        }
        start += len;
    }

    if result_is_sparse(prog, leaves) {
        let sparse = CscBlock::from_dense(&acc);
        pool.release(acc);
        Ok(Block::Sparse(sparse))
    } else {
        Ok(Block::Dense(acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize, v: &[f64]) -> Block {
        Block::Dense(DenseBlock::from_vec(rows, cols, v.to_vec()).unwrap())
    }

    fn sparse(rows: usize, cols: usize, t: &[(usize, usize, f64)]) -> Block {
        Block::Sparse(CscBlock::from_triplets(rows, cols, t.to_vec()).unwrap())
    }

    #[test]
    fn validates_programs() {
        assert!(validate_program(&[FusedOp::Add], 0).is_err());
        assert!(validate_program(&[FusedOp::Leaf(0)], 0).is_err());
        assert!(validate_program(&[FusedOp::Leaf(0), FusedOp::Leaf(0)], 1).is_err());
        let depth =
            validate_program(&[FusedOp::Leaf(0), FusedOp::Leaf(0), FusedOp::Add], 1).unwrap();
        assert_eq!(depth, 2);
    }

    #[test]
    fn gnmf_style_mul_div_matches_unfused() {
        let pool = ResultBufferPool::new(2);
        let w = dense(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let num = dense(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let den = dense(2, 2, &[2.0, 0.0, 4.0, 8.0]);
        // w .* num ./ den
        let prog = [
            FusedOp::Leaf(0),
            FusedOp::Leaf(1),
            FusedOp::CellMul,
            FusedOp::Leaf(2),
            FusedOp::CellDiv,
        ];
        let fused = eval_fused_block(&prog, &[&w, &num, &den], &pool).unwrap();
        let unfused = w.cell_mul(&num).unwrap().cell_div(&den).unwrap();
        assert_eq!(fused, unfused);
    }

    #[test]
    fn sparse_chain_keeps_sparse_representation() {
        let pool = ResultBufferPool::new(2);
        let a = sparse(3, 3, &[(0, 0, 2.0), (2, 1, -1.0)]);
        let b = sparse(3, 3, &[(0, 0, -2.0), (1, 2, 5.0)]);
        // (a + b) scaled: sparse add of sparse operands stays sparse, and the
        // cancelled (0,0) cell must be dropped from storage like the
        // triplet-merge path drops it.
        let prog = [
            FusedOp::Leaf(0),
            FusedOp::Leaf(1),
            FusedOp::Add,
            FusedOp::Scale(2.0),
        ];
        let fused = eval_fused_block(&prog, &[&a, &b], &pool).unwrap();
        let unfused = a.add(&b).unwrap().scale(2.0);
        assert!(fused.is_sparse());
        assert_eq!(fused, unfused);
    }

    #[test]
    fn cell_div_and_add_scalar_densify() {
        let pool = ResultBufferPool::new(2);
        let a = sparse(2, 2, &[(0, 0, 4.0)]);
        let b = sparse(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]);
        let prog = [FusedOp::Leaf(0), FusedOp::Leaf(1), FusedOp::CellDiv];
        let fused = eval_fused_block(&prog, &[&a, &b], &pool).unwrap();
        assert!(!fused.is_sparse());
        assert_eq!(fused, a.cell_div(&b).unwrap());

        let shift = [FusedOp::Leaf(0), FusedOp::AddScalar(1.0)];
        let fused = eval_fused_block(&shift, &[&a], &pool).unwrap();
        assert!(!fused.is_sparse());
        assert_eq!(fused, a.add_scalar(1.0));
        // addend 0 keeps representation, like Block::add_scalar's clone
        let keep = [FusedOp::Leaf(0), FusedOp::AddScalar(0.0)];
        assert!(eval_fused_block(&keep, &[&a], &pool).unwrap().is_sparse());
    }

    #[test]
    fn mixed_dense_sparse_falls_back_correctly() {
        let pool = ResultBufferPool::new(2);
        let a = dense(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = sparse(2, 3, &[(0, 1, 2.0), (1, 0, -4.0)]);
        let prog = [
            FusedOp::Leaf(0),
            FusedOp::Scale(0.5),
            FusedOp::Leaf(1),
            FusedOp::Sub,
        ];
        let fused = eval_fused_block(&prog, &[&a, &b], &pool).unwrap();
        let unfused = a.scale(0.5).sub(&b).unwrap();
        assert_eq!(fused, unfused);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let pool = ResultBufferPool::new(1);
        let a = dense(2, 2, &[1.0; 4]);
        let b = dense(2, 3, &[1.0; 6]);
        let prog = [FusedOp::Leaf(0), FusedOp::Leaf(1), FusedOp::Add];
        assert!(eval_fused_block(&prog, &[&a, &b], &pool).is_err());
    }

    #[test]
    fn pool_is_reused_across_tiles() {
        let pool = ResultBufferPool::new(2);
        let a = dense(4, 4, &[1.0; 16]);
        let prog = [FusedOp::Leaf(0), FusedOp::Scale(3.0)];
        for _ in 0..4 {
            let out = eval_fused_block(&prog, &[&a], &pool).unwrap();
            match out {
                Block::Dense(d) => pool.release(d),
                Block::Sparse(_) => unreachable!("dense leaf, scale keeps dense"),
            }
        }
        assert!(pool.stats().reused >= 3);
    }
}
