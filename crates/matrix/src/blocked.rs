//! [`BlockedMatrix`]: a matrix split into a grid of square blocks.
//!
//! This is DMac's two-level representation (§5.3): "a given matrix is
//! partitioned into blocks and block becomes the base computing unit". A
//! `BlockedMatrix` is the *local* view — a full grid of tiles. The cluster
//! crate distributes subsets of this grid (block-rows or block-columns) to
//! workers; each worker then computes on its sub-grid with the executors in
//! [`crate::exec`].
//!
//! Tiles are reference-counted ([`Arc<Block>`]) so that broadcasting a
//! matrix to `N` simulated workers inside one process does not physically
//! copy the payload `N` times (the communication *meter* still charges the
//! bytes — see `dmac-cluster`).

use std::sync::Arc;

use crate::block::Block;
use crate::blocking::blocks_along;
use crate::csc::CscBlock;
use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};

/// A dense or sparse matrix stored as an `rb × cb` grid of square blocks
/// (edge blocks are trimmed to the matrix boundary).
///
/// ```
/// use dmac_matrix::BlockedMatrix;
///
/// // 5x4 matrix in 2x2 blocks (edges trimmed), from triplets.
/// let m = BlockedMatrix::from_triplets(5, 4, 2, vec![(0, 0, 1.0), (4, 3, 2.0)]).unwrap();
/// assert_eq!(m.row_blocks(), 3);
/// assert_eq!(m.col_blocks(), 2);
/// assert_eq!(m.get(4, 3).unwrap(), 2.0);
/// assert_eq!(m.nnz(), 2);
///
/// // transpose is local re-indexing; multiply against the reference.
/// let g = m.transpose().matmul_reference(&m).unwrap();
/// assert_eq!(g.rows(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct BlockedMatrix {
    rows: usize,
    cols: usize,
    block: usize,
    row_blocks: usize,
    col_blocks: usize,
    /// Row-major grid of tiles: `blocks[bi * col_blocks + bj]`.
    blocks: Vec<Arc<Block>>,
}

impl BlockedMatrix {
    /// Build from a grid of blocks. Validates every tile's shape.
    pub fn from_blocks(
        rows: usize,
        cols: usize,
        block: usize,
        blocks: Vec<Arc<Block>>,
    ) -> Result<Self> {
        if block == 0 {
            return Err(MatrixError::InvalidBlockSize(0));
        }
        let row_blocks = blocks_along(rows, block);
        let col_blocks = blocks_along(cols, block);
        if blocks.len() != row_blocks * col_blocks {
            return Err(MatrixError::MalformedSparse(format!(
                "expected {} blocks, got {}",
                row_blocks * col_blocks,
                blocks.len()
            )));
        }
        let m = BlockedMatrix {
            rows,
            cols,
            block,
            row_blocks,
            col_blocks,
            blocks,
        };
        for bi in 0..row_blocks {
            for bj in 0..col_blocks {
                let t = m.block_at(bi, bj);
                let (er, ec) = (m.block_rows_of(bi), m.block_cols_of(bj));
                if t.rows() != er || t.cols() != ec {
                    return Err(MatrixError::DimensionMismatch {
                        op: "from_blocks",
                        left: (t.rows(), t.cols()),
                        right: (er, ec),
                    });
                }
            }
        }
        Ok(m)
    }

    /// All-zero matrix with sparse (empty) tiles.
    pub fn zeros(rows: usize, cols: usize, block: usize) -> Result<Self> {
        if block == 0 {
            return Err(MatrixError::InvalidBlockSize(0));
        }
        let row_blocks = blocks_along(rows, block);
        let col_blocks = blocks_along(cols, block);
        let mut blocks = Vec::with_capacity(row_blocks * col_blocks);
        for bi in 0..row_blocks {
            for bj in 0..col_blocks {
                let r = Self::edge(rows, block, bi);
                let c = Self::edge(cols, block, bj);
                blocks.push(Arc::new(Block::zeros(r, c)));
            }
        }
        Ok(BlockedMatrix {
            rows,
            cols,
            block,
            row_blocks,
            col_blocks,
            blocks,
        })
    }

    fn edge(len: usize, block: usize, idx: usize) -> usize {
        let start = idx * block;
        block.min(len.saturating_sub(start))
    }

    /// Build a dense blocked matrix by evaluating `f(row, col)` everywhere.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        block: usize,
        f: impl Fn(usize, usize) -> f64,
    ) -> Result<Self> {
        if block == 0 {
            return Err(MatrixError::InvalidBlockSize(0));
        }
        let row_blocks = blocks_along(rows, block);
        let col_blocks = blocks_along(cols, block);
        let mut blocks = Vec::with_capacity(row_blocks * col_blocks);
        for bi in 0..row_blocks {
            for bj in 0..col_blocks {
                let r0 = bi * block;
                let c0 = bj * block;
                let d = DenseBlock::from_fn(
                    Self::edge(rows, block, bi),
                    Self::edge(cols, block, bj),
                    |i, j| f(r0 + i, c0 + j),
                );
                blocks.push(Arc::new(Block::Dense(d)));
            }
        }
        Ok(BlockedMatrix {
            rows,
            cols,
            block,
            row_blocks,
            col_blocks,
            blocks,
        })
    }

    /// Build a sparse blocked matrix from global `(row, col, value)`
    /// triplets, routing each item to its tile.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        block: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self> {
        if block == 0 {
            return Err(MatrixError::InvalidBlockSize(0));
        }
        let row_blocks = blocks_along(rows, block);
        let col_blocks = blocks_along(cols, block);
        let mut per_tile: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); row_blocks * col_blocks];
        for (i, j, v) in triplets {
            if i >= rows || j >= cols {
                return Err(MatrixError::IndexOutOfBounds {
                    index: (i, j),
                    dims: (rows, cols),
                });
            }
            let (bi, bj) = (i / block, j / block);
            per_tile[bi * col_blocks + bj].push((i % block, j % block, v));
        }
        let mut blocks = Vec::with_capacity(per_tile.len());
        for (t, trips) in per_tile.into_iter().enumerate() {
            let (bi, bj) = (t / col_blocks, t % col_blocks);
            let tile = CscBlock::from_triplets(
                Self::edge(rows, block, bi),
                Self::edge(cols, block, bj),
                trips,
            )?;
            blocks.push(Arc::new(Block::Sparse(tile).compact()));
        }
        Ok(BlockedMatrix {
            rows,
            cols,
            block,
            row_blocks,
            col_blocks,
            blocks,
        })
    }

    /// Build from a single dense block (test convenience).
    pub fn from_dense(d: DenseBlock, block: usize) -> Result<Self> {
        let (rows, cols) = (d.rows(), d.cols());
        Self::from_fn(rows, cols, block, |i, j| d.at(i, j))
    }

    /// Total rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Configured (square) block size.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Number of block-rows in the grid.
    pub fn row_blocks(&self) -> usize {
        self.row_blocks
    }

    /// Number of block-columns in the grid.
    pub fn col_blocks(&self) -> usize {
        self.col_blocks
    }

    /// Rows covered by block-row `bi` (trimmed at the edge).
    pub fn block_rows_of(&self, bi: usize) -> usize {
        Self::edge(self.rows, self.block, bi)
    }

    /// Columns covered by block-column `bj` (trimmed at the edge).
    pub fn block_cols_of(&self, bj: usize) -> usize {
        Self::edge(self.cols, self.block, bj)
    }

    /// Borrow the tile at grid position `(bi, bj)`.
    pub fn block_at(&self, bi: usize, bj: usize) -> &Arc<Block> {
        &self.blocks[bi * self.col_blocks + bj]
    }

    /// Iterate `(bi, bj, tile)` over the whole grid.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (usize, usize, &Arc<Block>)> {
        self.blocks
            .iter()
            .enumerate()
            .map(move |(t, b)| (t / self.col_blocks, t % self.col_blocks, b))
    }

    /// Checked global element access.
    pub fn get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows || j >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                index: (i, j),
                dims: (self.rows, self.cols),
            });
        }
        self.block_at(i / self.block, j / self.block)
            .get(i % self.block, j % self.block)
    }

    /// Exact non-zero count over all tiles.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.nnz()).sum()
    }

    /// Real bytes across all tiles (what the communication meter charges
    /// when the whole matrix moves).
    pub fn actual_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.actual_bytes()).sum()
    }

    /// Materialise the full matrix as one dense block (tests/small results).
    pub fn to_dense(&self) -> DenseBlock {
        let mut out = DenseBlock::zeros(self.rows, self.cols);
        for (bi, bj, tile) in self.iter_blocks() {
            let (r0, c0) = (bi * self.block, bj * self.block);
            let d = tile.to_dense();
            for i in 0..d.rows() {
                for j in 0..d.cols() {
                    out.data_mut()[(r0 + i) * self.cols + c0 + j] = d.at(i, j);
                }
            }
        }
        out
    }

    /// Transposed copy: tiles transposed and grid re-indexed. Purely local
    /// (this is what makes DMac's *Transpose dependency* communication-free).
    pub fn transpose(&self) -> BlockedMatrix {
        let mut blocks = vec![None; self.blocks.len()];
        for (bi, bj, tile) in self.iter_blocks() {
            blocks[bj * self.row_blocks + bi] = Some(Arc::new(tile.transpose()));
        }
        BlockedMatrix {
            rows: self.cols,
            cols: self.rows,
            block: self.block,
            row_blocks: self.col_blocks,
            col_blocks: self.row_blocks,
            blocks: blocks.into_iter().map(|b| b.unwrap()).collect(),
        }
    }

    /// Apply an element-wise binary op tile-by-tile (sequential reference
    /// path; the threaded path lives in [`crate::exec`]).
    pub fn zip_with(
        &self,
        other: &BlockedMatrix,
        op: &'static str,
        f: impl Fn(&Block, &Block) -> Result<Block>,
    ) -> Result<BlockedMatrix> {
        if self.rows != other.rows || self.cols != other.cols || self.block != other.block {
            return Err(MatrixError::DimensionMismatch {
                op,
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let blocks = self
            .blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(a, b)| Ok(Arc::new(f(a, b)?)))
            .collect::<Result<Vec<_>>>()?;
        Ok(BlockedMatrix {
            blocks,
            ..self.clone()
        })
    }

    /// Element-wise addition (sequential).
    pub fn add(&self, other: &BlockedMatrix) -> Result<BlockedMatrix> {
        self.zip_with(other, "add", |a, b| a.add(b))
    }

    /// Element-wise subtraction (sequential).
    pub fn sub(&self, other: &BlockedMatrix) -> Result<BlockedMatrix> {
        self.zip_with(other, "sub", |a, b| a.sub(b))
    }

    /// Cell-wise multiplication (sequential).
    pub fn cell_mul(&self, other: &BlockedMatrix) -> Result<BlockedMatrix> {
        self.zip_with(other, "cell_mul", |a, b| a.cell_mul(b))
    }

    /// Cell-wise division (sequential).
    pub fn cell_div(&self, other: &BlockedMatrix) -> Result<BlockedMatrix> {
        self.zip_with(other, "cell_div", |a, b| a.cell_div(b))
    }

    /// Map every tile (unary ops: scale, add-scalar, arbitrary map).
    pub fn map_blocks(&self, f: impl Fn(&Block) -> Block) -> BlockedMatrix {
        BlockedMatrix {
            blocks: self.blocks.iter().map(|b| Arc::new(f(b))).collect(),
            ..self.clone()
        }
    }

    /// Scale every cell by `c`.
    pub fn scale(&self, c: f64) -> BlockedMatrix {
        self.map_blocks(|b| b.scale(c))
    }

    /// Add `c` to every cell.
    pub fn add_scalar(&self, c: f64) -> BlockedMatrix {
        self.map_blocks(|b| b.add_scalar(c))
    }

    /// Sum of all cells.
    pub fn sum(&self) -> f64 {
        self.blocks.iter().map(|b| b.sum()).sum()
    }

    /// Frobenius norm.
    pub fn norm2(&self) -> f64 {
        self.blocks.iter().map(|b| b.sum_sq()).sum::<f64>().sqrt()
    }

    /// Iterate all non-zero cells as global `(row, col, value)` triplets.
    pub fn to_triplets(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.nnz());
        for (bi, bj, tile) in self.iter_blocks() {
            let (r0, c0) = (bi * self.block, bj * self.block);
            match tile.as_ref() {
                Block::Dense(d) => {
                    for i in 0..d.rows() {
                        for j in 0..d.cols() {
                            let v = d.at(i, j);
                            if v != 0.0 {
                                out.push((r0 + i, c0 + j, v));
                            }
                        }
                    }
                }
                Block::Sparse(s) => {
                    for j in 0..s.cols() {
                        for t in s.col_range(j) {
                            out.push((r0 + s.row_indices()[t] as usize, c0 + j, s.values()[t]));
                        }
                    }
                }
            }
        }
        out
    }

    /// Rebuild this matrix with a different block size. Sparse-aware: goes
    /// through triplets, never materialises a dense copy.
    pub fn reblock(&self, new_block: usize) -> Result<BlockedMatrix> {
        if new_block == self.block {
            return Ok(self.clone());
        }
        let density = self.nnz() as f64 / (self.rows * self.cols).max(1) as f64;
        if density > 0.5 {
            let d = self.to_dense();
            BlockedMatrix::from_fn(self.rows, self.cols, new_block, |i, j| d.at(i, j))
        } else {
            BlockedMatrix::from_triplets(self.rows, self.cols, new_block, self.to_triplets())
        }
    }

    /// Sequential reference matrix multiply (`self · other`). The parallel,
    /// memory-managed versions live in [`crate::exec::LocalExecutor`]; this
    /// one exists as the correctness oracle.
    pub fn matmul_reference(&self, other: &BlockedMatrix) -> Result<BlockedMatrix> {
        if self.cols != other.rows || self.block != other.block {
            return Err(MatrixError::DimensionMismatch {
                op: "multiply",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut blocks = Vec::with_capacity(self.row_blocks * other.col_blocks);
        for bi in 0..self.row_blocks {
            for bj in 0..other.col_blocks {
                let mut acc = DenseBlock::zeros(self.block_rows_of(bi), other.block_cols_of(bj));
                for bk in 0..self.col_blocks {
                    self.block_at(bi, bk)
                        .matmul_acc(other.block_at(bk, bj), &mut acc)?;
                }
                blocks.push(Arc::new(Block::Dense(acc).compact()));
            }
        }
        BlockedMatrix::from_blocks(self.rows, other.cols, self.block, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_matrix(rows: usize, cols: usize, block: usize) -> BlockedMatrix {
        BlockedMatrix::from_fn(rows, cols, block, |i, j| (i * cols + j) as f64).unwrap()
    }

    #[test]
    fn grid_geometry_with_edge_blocks() {
        let m = seq_matrix(5, 7, 3);
        assert_eq!(m.row_blocks(), 2);
        assert_eq!(m.col_blocks(), 3);
        assert_eq!(m.block_rows_of(1), 2);
        assert_eq!(m.block_cols_of(2), 1);
        assert_eq!(m.get(4, 6).unwrap(), 34.0);
        assert!(m.get(5, 0).is_err());
    }

    #[test]
    fn from_triplets_routes_to_tiles() {
        let m = BlockedMatrix::from_triplets(6, 6, 2, vec![(0, 0, 1.0), (5, 5, 2.0), (2, 3, 3.0)])
            .unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(5, 5).unwrap(), 2.0);
        assert_eq!(m.get(2, 3).unwrap(), 3.0);
        assert_eq!(m.get(0, 1).unwrap(), 0.0);
        assert!(BlockedMatrix::from_triplets(2, 2, 2, vec![(3, 0, 1.0)]).is_err());
    }

    #[test]
    fn transpose_blocked_matches_dense() {
        let m = seq_matrix(5, 3, 2);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 5);
        assert_eq!(t.to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn matmul_reference_matches_flat_dense() {
        let a = seq_matrix(5, 4, 2);
        let b = seq_matrix(4, 3, 2);
        let c = a.matmul_reference(&b).unwrap();
        let expect = a.to_dense().matmul(&b.to_dense()).unwrap();
        assert_eq!(c.to_dense(), expect);
    }

    #[test]
    fn matmul_block_size_mismatch_rejected() {
        let a = seq_matrix(4, 4, 2);
        let b = seq_matrix(4, 4, 3);
        assert!(a.matmul_reference(&b).is_err());
    }

    #[test]
    fn elementwise_ops_match_dense() {
        let a = seq_matrix(4, 5, 3);
        let b = BlockedMatrix::from_fn(4, 5, 3, |i, j| 1.0 + (i + j) as f64).unwrap();
        assert_eq!(
            a.add(&b).unwrap().to_dense(),
            a.to_dense().add(&b.to_dense()).unwrap()
        );
        assert_eq!(
            a.sub(&b).unwrap().to_dense(),
            a.to_dense().sub(&b.to_dense()).unwrap()
        );
        assert_eq!(
            a.cell_mul(&b).unwrap().to_dense(),
            a.to_dense().cell_mul(&b.to_dense()).unwrap()
        );
        assert_eq!(
            a.cell_div(&b).unwrap().to_dense(),
            a.to_dense().cell_div(&b.to_dense()).unwrap()
        );
    }

    #[test]
    fn scalar_ops_and_reductions() {
        let a = seq_matrix(3, 3, 2);
        assert_eq!(a.scale(2.0).get(1, 1).unwrap(), 8.0);
        assert_eq!(a.add_scalar(1.0).get(0, 0).unwrap(), 1.0);
        assert_eq!(a.sum(), (0..9).sum::<usize>() as f64);
        let expect: f64 = (0..9).map(|v| (v * v) as f64).sum();
        assert!((a.norm2() - expect.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zeros_is_all_sparse() {
        let z = BlockedMatrix::zeros(5, 5, 2).unwrap();
        assert_eq!(z.nnz(), 0);
        assert!(z.iter_blocks().all(|(_, _, b)| b.is_sparse()));
    }

    #[test]
    fn invalid_block_size_rejected() {
        assert!(BlockedMatrix::zeros(5, 5, 0).is_err());
    }
}
