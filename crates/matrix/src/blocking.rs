//! Block-size model and automatic chooser (paper §5.3, Equations 2–3).
//!
//! DMac partitions every matrix into square `m × m` blocks. The block size
//! trades memory against parallelism:
//!
//! * **Memory** (Equation 2): for an `M × N` matrix of sparsity `S` split
//!   into `m × n` blocks, the value and row-index arrays are independent of
//!   the blocking, but every block needs its own column-start-index array,
//!   so small blocks duplicate `4·N·(M/m)` bytes of pointers:
//!   `Mem(A) = 4·N·(M/m) + 8·M·N·S` (sparse) or `4·M·N` (dense).
//! * **Parallelism** (Equation 3): with the In-Place strategy the task count
//!   equals the result-block count; for the cheapest strategy (RMM) a worker
//!   holds at least `M·N/(K·m²)` tasks, and each of `L` local threads needs
//!   one, giving the upper bound `m ≤ sqrt(M·N / (L·K))`.
//!
//! [`choose_block_size`] picks the largest block size under the Equation-3
//! bound, which is what the paper reports DMac doing automatically.

/// Cluster/hardware facts needed to choose a block size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingConfig {
    /// `K`: number of workers in the cluster.
    pub workers: usize,
    /// `L`: local threads per worker.
    pub local_parallelism: usize,
    /// Smallest block size we will ever choose (guards tiny matrices).
    pub min_block: usize,
    /// Largest block size we will ever choose (guards huge matrices).
    pub max_block: usize,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        BlockingConfig {
            workers: 4,
            local_parallelism: 8,
            min_block: 64,
            max_block: 1 << 20,
        }
    }
}

/// Equation 3: the upper bound `m ≤ sqrt(M·N / (L·K))` on the block row
/// (and, since blocks are square, column) size.
pub fn block_size_upper_bound(m_rows: usize, n_cols: usize, cfg: &BlockingConfig) -> usize {
    let denom = (cfg.local_parallelism * cfg.workers).max(1);
    let bound = ((m_rows as f64 * n_cols as f64) / denom as f64).sqrt();
    bound.floor().max(1.0) as usize
}

/// Choose the block size for an `M × N` matrix: the largest value under the
/// Equation-3 bound, clamped to the configured range and to the matrix
/// dimensions themselves.
pub fn choose_block_size(m_rows: usize, n_cols: usize, cfg: &BlockingConfig) -> usize {
    let bound = block_size_upper_bound(m_rows, n_cols, cfg);
    bound
        .clamp(cfg.min_block, cfg.max_block)
        .min(m_rows.max(1))
        .min(n_cols.max(1))
        .max(1)
}

/// Equation 2 (sparse case): analytical bytes for an `M × N` sparsity-`S`
/// matrix stored as CSC blocks with block row size `m`:
/// `4·N·ceil(M/m) + 8·M·N·S`.
pub fn model_sparse_bytes(m_rows: usize, n_cols: usize, sparsity: f64, block: usize) -> f64 {
    let row_blocks = m_rows.div_ceil(block.max(1));
    4.0 * n_cols as f64 * row_blocks as f64 + 8.0 * m_rows as f64 * n_cols as f64 * sparsity
}

/// Equation 2 (dense case): `4·M·N` — the paper models 4-byte dense cells.
pub fn model_dense_bytes(m_rows: usize, n_cols: usize) -> f64 {
    4.0 * m_rows as f64 * n_cols as f64
}

/// Paper §5.3 per-block memory: `Mem(b) = 4n + 8mns` for a sparse `m × n`
/// block of sparsity `s`, `4mn` for dense.
pub fn model_block_bytes(m: usize, n: usize, sparsity: f64, sparse: bool) -> f64 {
    if sparse {
        4.0 * n as f64 + 8.0 * m as f64 * n as f64 * sparsity
    } else {
        4.0 * m as f64 * n as f64
    }
}

/// Number of blocks along a dimension of length `len` with block size `m`.
pub fn blocks_along(len: usize, block: usize) -> usize {
    len.div_ceil(block.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation3_paper_examples() {
        // Paper §6.3: 4-node cluster, K = 4, L = 8; thresholds "about 856k,
        // 289k and 667k respectively for LiveJournal, soc-pokec and
        // cit-Patents" (square adjacency matrices of side = node count).
        let cfg = BlockingConfig {
            workers: 4,
            local_parallelism: 8,
            ..Default::default()
        };
        let lj = block_size_upper_bound(4_847_571, 4_847_571, &cfg);
        assert!(
            (lj as f64 - 856_000.0).abs() / 856_000.0 < 0.01,
            "lj = {lj}"
        );
        let pokec = block_size_upper_bound(1_632_803, 1_632_803, &cfg);
        assert!(
            (pokec as f64 - 289_000.0).abs() / 289_000.0 < 0.01,
            "pokec = {pokec}"
        );
        let patents = block_size_upper_bound(3_774_768, 3_774_768, &cfg);
        assert!(
            (patents as f64 - 667_000.0).abs() / 667_000.0 < 0.01,
            "patents = {patents}"
        );
    }

    #[test]
    fn choose_respects_clamps_and_dims() {
        let cfg = BlockingConfig {
            workers: 4,
            local_parallelism: 8,
            min_block: 64,
            max_block: 512,
        };
        // tiny matrix: clamped to dims
        assert_eq!(choose_block_size(10, 10, &cfg), 10);
        // large matrix: clamped to max_block
        assert_eq!(choose_block_size(1_000_000, 1_000_000, &cfg), 512);
        // degenerate
        assert_eq!(choose_block_size(0, 0, &cfg), 1);
    }

    #[test]
    fn equation2_pointer_duplication_shrinks_with_block_size() {
        // LiveJournal-like: memory at m=10k should far exceed memory at the
        // ideal blocking; the paper quotes ~19GB vs ~6GB.
        let n = 4_847_571;
        let s = 68_993_773.0 / (n as f64 * n as f64);
        let small = model_sparse_bytes(n, n, s, 10_000);
        let ideal = model_sparse_bytes(n, n, s, 856_000);
        assert!(small > 3.0 * ideal, "small={small:.3e} ideal={ideal:.3e}");
        // ideal ≈ 8 * nnz ≈ 0.55 GB + small pointer term
        assert!(ideal < 0.7e9);
    }

    #[test]
    fn block_bytes_model_matches_units() {
        // dense 100x100 -> 40_000 model bytes
        assert_eq!(model_block_bytes(100, 100, 1.0, false), 40_000.0);
        // sparse 100x100 at 1% -> 400 + 800
        assert_eq!(model_block_bytes(100, 100, 0.01, true), 400.0 + 800.0);
    }

    #[test]
    fn blocks_along_rounds_up() {
        assert_eq!(blocks_along(10, 3), 4);
        assert_eq!(blocks_along(9, 3), 3);
        assert_eq!(blocks_along(1, 100), 1);
        assert_eq!(blocks_along(0, 5), 1);
    }
}
