//! The task queue of Figure 4: a bag of independent tasks drained by `L`
//! worker threads.
//!
//! DMac packages "the meta data of operations which can be executed
//! independently" into tasks and lets each thread pull from a shared queue.
//! We reproduce that with a mutex-guarded queue drained by `std::thread`
//! scoped workers (no external crates — the workspace builds offline),
//! returning results tagged with their task index so callers can
//! reassemble ordered output.

use std::sync::Mutex;

/// Run `tasks` on `threads` worker threads, applying `f` to each.
///
/// Results come back in task order. `f` runs concurrently, so it must be
/// `Sync`; tasks are handed out through a shared queue exactly like the
/// paper's task-queue execution flow. With `threads == 1` (or a single
/// task) the work runs inline on the caller's thread.
pub fn run_tasks<T, R, F>(threads: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 || n == 1 {
        return tasks.into_iter().map(f).collect();
    }
    let queue = Mutex::new(tasks.into_iter().enumerate());
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    let workers = threads.min(n);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                // Pull the next task under the queue lock, then release the
                // lock before running `f` so workers execute concurrently.
                let next = queue.lock().expect("queue poisoned").next();
                let Some((idx, t)) = next else { break };
                // A panic inside `f` propagates out of the scope; other
                // workers finish their current task and the scope re-panics.
                let r = f(t);
                *results[idx].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("all tasks ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<usize> = (0..100).collect();
        let out = run_tasks(4, tasks, |t| t * 2);
        assert_eq!(out, (0..100).map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_tasks(1, vec![1, 2, 3], |t| t + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_task_list() {
        let out: Vec<i32> = run_tasks(4, Vec::<i32>::new(), |t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn all_tasks_execute_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_tasks(8, (0..1000).collect::<Vec<_>>(), |t| {
            counter.fetch_add(1, Ordering::Relaxed);
            t
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn more_threads_than_tasks() {
        let out = run_tasks(16, vec![5, 6], |t| t);
        assert_eq!(out, vec![5, 6]);
    }
}
