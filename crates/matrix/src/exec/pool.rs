//! The task queue of Figure 4: a bag of independent tasks drained by `L`
//! worker threads.
//!
//! DMac packages "the meta data of operations which can be executed
//! independently" into tasks and lets each thread pull from a shared queue.
//! We reproduce that with `std::thread` scoped workers (no external crates —
//! the workspace builds offline). Handout is a single shared atomic index
//! over a pre-built slot array — one `fetch_add` per task instead of a
//! contended queue lock — and each worker accumulates `(index, result)`
//! pairs in a private vector; the caller stitches them back into task order
//! after the scope joins, so no result slot is ever shared between threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `tasks` on `threads` worker threads, applying `f` to each.
///
/// Results come back in task order. `f` runs concurrently, so it must be
/// `Sync`; tasks are claimed through a shared atomic cursor exactly like the
/// paper's task-queue execution flow. With `threads == 1` (or a single
/// task) the work runs inline on the caller's thread.
pub fn run_tasks<T, R, F>(threads: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 || n == 1 {
        return tasks.into_iter().map(f).collect();
    }
    // Each slot is locked exactly once, by the worker whose `fetch_add`
    // claimed its index, so the mutexes are uncontended — they only move
    // ownership of `T` out of the shared array safely.
    let slots: Vec<Mutex<Option<T>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);

    let workers = threads.min(n);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        let t = slots[idx]
                            .lock()
                            .expect("task slot poisoned")
                            .take()
                            .expect("slot claimed exactly once");
                        // A panic inside `f` propagates through the join
                        // below; other workers finish their current task.
                        local.push((idx, f(t)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Stitch the per-worker runs back into task order.
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for local in per_worker {
        for (idx, r) in local {
            out[idx] = Some(r);
        }
    }
    out.into_iter().map(|r| r.expect("all tasks ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<usize> = (0..100).collect();
        let out = run_tasks(4, tasks, |t| t * 2);
        assert_eq!(out, (0..100).map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_tasks(1, vec![1, 2, 3], |t| t + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_task_list() {
        let out: Vec<i32> = run_tasks(4, Vec::<i32>::new(), |t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn all_tasks_execute_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_tasks(8, (0..1000).collect::<Vec<_>>(), |t| {
            counter.fetch_add(1, Ordering::Relaxed);
            t
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn more_threads_than_tasks() {
        let out = run_tasks(16, vec![5, 6], |t| t);
        assert_eq!(out, vec![5, 6]);
    }
}
