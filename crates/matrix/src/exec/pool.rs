//! The task queue of Figure 4: a bag of independent tasks drained by `L`
//! worker threads.
//!
//! DMac packages "the meta data of operations which can be executed
//! independently" into tasks and lets each thread pull from a shared queue.
//! We reproduce that with a crossbeam channel as the queue and scoped
//! threads, returning results tagged with their task index so callers can
//! reassemble ordered output.

use crossbeam::channel;

/// Run `tasks` on `threads` worker threads, applying `f` to each.
///
/// Results come back in task order. `f` runs concurrently, so it must be
/// `Sync`; tasks are handed out through a shared queue exactly like the
/// paper's task-queue execution flow. With `threads == 1` (or a single
/// task) the work runs inline on the caller's thread.
pub fn run_tasks<T, R, F>(threads: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 || n == 1 {
        return tasks.into_iter().map(f).collect();
    }
    let (task_tx, task_rx) = channel::unbounded::<(usize, T)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
    for item in tasks.into_iter().enumerate() {
        task_tx.send(item).expect("queue open");
    }
    drop(task_tx);

    let workers = threads.min(n);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            s.spawn(move |_| {
                while let Ok((idx, t)) = task_rx.recv() {
                    // A panic inside `f` propagates out of the scope; the
                    // channel disconnects and other workers drain and stop.
                    let r = f(t);
                    if res_tx.send((idx, r)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        while let Ok((idx, r)) = res_rx.recv() {
            out[idx] = Some(r);
        }
        out.into_iter().map(|r| r.expect("all tasks ran")).collect()
    })
    .expect("worker thread panicked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<usize> = (0..100).collect();
        let out = run_tasks(4, tasks, |t| t * 2);
        assert_eq!(out, (0..100).map(|t| t * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_tasks(1, vec![1, 2, 3], |t| t + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_task_list() {
        let out: Vec<i32> = run_tasks(4, Vec::<i32>::new(), |t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn all_tasks_execute_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_tasks(8, (0..1000).collect::<Vec<_>>(), |t| {
            counter.fetch_add(1, Ordering::Relaxed);
            t
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn more_threads_than_tasks() {
        let out = run_tasks(16, vec![5, 6], |t| t);
        assert_eq!(out, vec![5, 6]);
    }
}
