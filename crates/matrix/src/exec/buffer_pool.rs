//! The result buffer pool of Figure 4.
//!
//! "A result buffer pool is employed for reusing the inter-thread memory.
//! It maintains a fixed number of blocks in memory. At the beginning of each
//! task inside a thread, it acquires a clean block from the result buffer
//! pool. After the task is finished, the block will be returned to the
//! pool." (§5.3)
//!
//! [`ResultBufferPool`] keeps up to `capacity` recycled dense blocks. An
//! acquire either reuses a pooled allocation (reshaped and zeroed) or
//! allocates fresh; a release returns the block for reuse unless the pool is
//! full, in which case the block is simply dropped.

use std::sync::Mutex;

use crate::dense::DenseBlock;

/// A bounded pool of reusable dense accumulation blocks.
#[derive(Debug)]
pub struct ResultBufferPool {
    capacity: usize,
    free: Mutex<Vec<DenseBlock>>,
    stats: Mutex<PoolStats>,
}

/// Counters describing pool behaviour (observability for tests/benches).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions satisfied by recycling a pooled block.
    pub reused: usize,
    /// Acquisitions that had to allocate a fresh block.
    pub allocated: usize,
    /// Releases that returned the block to the pool.
    pub returned: usize,
    /// Releases dropped because the pool was full.
    pub dropped: usize,
}

impl PoolStats {
    /// Pool hits: acquisitions served by recycling (alias of `reused`).
    pub fn hits(&self) -> usize {
        self.reused
    }

    /// Pool misses: acquisitions that allocated fresh (alias of `allocated`).
    pub fn misses(&self) -> usize {
        self.allocated
    }

    /// Total acquisitions.
    pub fn acquires(&self) -> usize {
        self.reused + self.allocated
    }

    /// Total releases (whether the block was pooled or dropped).
    pub fn releases(&self) -> usize {
        self.returned + self.dropped
    }

    /// Blocks acquired and never released. A balanced workload (every
    /// accumulator handed back, e.g. a pure-CPMM run) reports 0.
    pub fn outstanding(&self) -> usize {
        self.acquires().saturating_sub(self.releases())
    }
}

impl ResultBufferPool {
    /// Create a pool holding at most `capacity` recycled blocks. In the
    /// paper the capacity is "a fixed number of blocks" sized to the local
    /// parallelism; `LocalExecutor` uses `2 × threads`.
    pub fn new(capacity: usize) -> Self {
        ResultBufferPool {
            capacity,
            free: Mutex::new(Vec::with_capacity(capacity)),
            stats: Mutex::new(PoolStats::default()),
        }
    }

    /// Acquire a clean `rows × cols` block, recycling a pooled allocation
    /// when available.
    pub fn acquire(&self, rows: usize, cols: usize) -> DenseBlock {
        let recycled = self.free.lock().expect("pool lock poisoned").pop();
        match recycled {
            Some(mut b) => {
                b.reset_shape(rows, cols);
                self.stats.lock().expect("pool lock poisoned").reused += 1;
                b
            }
            None => {
                self.stats.lock().expect("pool lock poisoned").allocated += 1;
                DenseBlock::zeros(rows, cols)
            }
        }
    }

    /// Return a block to the pool for reuse.
    pub fn release(&self, block: DenseBlock) {
        let mut free = self.free.lock().expect("pool lock poisoned");
        if free.len() < self.capacity {
            free.push(block);
            self.stats.lock().expect("pool lock poisoned").returned += 1;
        } else {
            self.stats.lock().expect("pool lock poisoned").dropped += 1;
        }
    }

    /// Snapshot the pool counters.
    pub fn stats(&self) -> PoolStats {
        *self.stats.lock().expect("pool lock poisoned")
    }

    /// Number of blocks currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.lock().expect("pool lock poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle_reuses_memory() {
        let pool = ResultBufferPool::new(4);
        let b1 = pool.acquire(10, 10);
        assert_eq!(pool.stats().allocated, 1);
        pool.release(b1);
        assert_eq!(pool.pooled(), 1);
        let b2 = pool.acquire(5, 20);
        assert_eq!(pool.stats().reused, 1);
        assert_eq!(b2.rows(), 5);
        assert_eq!(b2.cols(), 20);
        assert_eq!(b2.sum(), 0.0, "recycled block must be clean");
    }

    #[test]
    fn pool_capacity_is_bounded() {
        let pool = ResultBufferPool::new(2);
        for _ in 0..5 {
            pool.release(DenseBlock::zeros(4, 4));
        }
        assert_eq!(pool.pooled(), 2);
        let s = pool.stats();
        assert_eq!(s.returned, 2);
        assert_eq!(s.dropped, 3);
    }

    #[test]
    fn recycled_block_is_zeroed_even_after_writes() {
        let pool = ResultBufferPool::new(1);
        let mut b = pool.acquire(3, 3);
        b.set(1, 1, 42.0).unwrap();
        pool.release(b);
        let b = pool.acquire(3, 3);
        assert_eq!(b.at(1, 1), 0.0);
    }
}
