//! The local execution engine (paper §5.3, Figure 4).
//!
//! Each DMac worker executes the operators of a stage with:
//!
//! * a **task queue** drained by `L` threads ([`pool::run_tasks`]),
//! * a **result buffer pool** recycling accumulation blocks between tasks
//!   ([`buffer_pool::ResultBufferPool`]),
//! * the **In-Place** aggregation strategy for multiplication: the block
//!   products contributing to one result block are packaged into a single
//!   task that folds them into one pooled accumulator — no intermediate
//!   product blocks are ever materialised.
//!
//! The paper's Figure 7 compares In-Place against the naive **Buffer**
//! strategy (materialise all `MA × NA × NB` intermediate block products,
//! aggregate at the end); [`AggregationMode`] selects between the two so the
//! experiment can be reproduced.

pub mod buffer_pool;
pub mod pool;

pub use buffer_pool::{PoolStats, ResultBufferPool};
pub use pool::run_tasks;

use std::sync::Arc;

use crate::block::Block;
use crate::blocked::BlockedMatrix;
use crate::csc::CscBlock;
use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};

/// How block products are aggregated into result blocks during
/// multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregationMode {
    /// One task per result block; products folded into a pooled accumulator
    /// in place (DMac's strategy).
    InPlace,
    /// One task per block product; all intermediates buffered, then summed
    /// (the baseline of Figure 7).
    Buffer,
}

/// A multi-threaded local executor for blocked-matrix operations.
///
/// ```
/// use dmac_matrix::{AggregationMode, BlockedMatrix, LocalExecutor};
///
/// let a = BlockedMatrix::from_fn(8, 8, 4, |i, j| (i + j) as f64).unwrap();
/// let ex = LocalExecutor::new(2, AggregationMode::InPlace);
/// let c = ex.matmul(&a, &a).unwrap();
/// assert_eq!(c.to_dense(), a.matmul_reference(&a).unwrap().to_dense());
/// ```
#[derive(Debug)]
pub struct LocalExecutor {
    threads: usize,
    mode: AggregationMode,
    pool: ResultBufferPool,
}

impl LocalExecutor {
    /// Create an executor with `threads` local threads (the paper's `L`).
    pub fn new(threads: usize, mode: AggregationMode) -> Self {
        let threads = threads.max(1);
        LocalExecutor {
            threads,
            mode,
            pool: ResultBufferPool::new(2 * threads),
        }
    }

    /// Local thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured aggregation mode.
    pub fn mode(&self) -> AggregationMode {
        self.mode
    }

    /// Buffer-pool statistics (observability).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// `a · b` with the configured aggregation mode.
    pub fn matmul(&self, a: &BlockedMatrix, b: &BlockedMatrix) -> Result<BlockedMatrix> {
        if a.cols() != b.rows() || a.block_size() != b.block_size() {
            return Err(MatrixError::DimensionMismatch {
                op: "multiply",
                left: (a.rows(), a.cols()),
                right: (b.rows(), b.cols()),
            });
        }
        match self.mode {
            AggregationMode::InPlace => self.matmul_in_place(a, b),
            AggregationMode::Buffer => self.matmul_buffered(a, b),
        }
    }

    /// In-Place multiplication: one task per result block `(bi, bj)`, each
    /// folding all `k` products into a single pooled accumulator.
    fn matmul_in_place(&self, a: &BlockedMatrix, b: &BlockedMatrix) -> Result<BlockedMatrix> {
        let tasks: Vec<(usize, usize)> = (0..a.row_blocks())
            .flat_map(|bi| (0..b.col_blocks()).map(move |bj| (bi, bj)))
            .collect();
        let results = run_tasks(self.threads, tasks, |(bi, bj)| -> Result<Arc<Block>> {
            let rows = a.block_rows_of(bi);
            let cols = b.block_cols_of(bj);
            let mut acc = self.pool.acquire(rows, cols);
            let mut touched = false;
            for bk in 0..a.col_blocks() {
                let ab = a.block_at(bi, bk);
                let bb = b.block_at(bk, bj);
                if ab.nnz() == 0 || bb.nnz() == 0 {
                    continue;
                }
                ab.matmul_acc(bb, &mut acc)?;
                touched = true;
            }
            // Keep the result sparse when it is; otherwise hand the pooled
            // accumulator over as the result block.
            let nnz = if touched { acc.nnz() } else { 0 };
            let dense_cells = rows * cols;
            let out = if nnz * 2 < dense_cells {
                let sparse = CscBlock::from_dense(&acc);
                self.pool.release(acc);
                Block::Sparse(sparse)
            } else {
                Block::Dense(acc)
            };
            Ok(Arc::new(out))
        });
        let blocks = results.into_iter().collect::<Result<Vec<_>>>()?;
        BlockedMatrix::from_blocks(a.rows(), b.cols(), a.block_size(), blocks)
    }

    /// Buffer multiplication: materialise every `(bi, bk, bj)` product as an
    /// intermediate dense block, then aggregate. This is intentionally
    /// memory-hungry; it exists to reproduce Figure 7.
    fn matmul_buffered(&self, a: &BlockedMatrix, b: &BlockedMatrix) -> Result<BlockedMatrix> {
        // Phase 1: all products.
        let mut triples = Vec::new();
        for bi in 0..a.row_blocks() {
            for bk in 0..a.col_blocks() {
                for bj in 0..b.col_blocks() {
                    if a.block_at(bi, bk).nnz() > 0 && b.block_at(bk, bj).nnz() > 0 {
                        triples.push((bi, bk, bj));
                    }
                }
            }
        }
        let products = run_tasks(
            self.threads,
            triples,
            |(bi, bk, bj)| -> Result<((usize, usize), Block)> {
                let mut acc = DenseBlock::zeros(a.block_rows_of(bi), b.block_cols_of(bj));
                a.block_at(bi, bk)
                    .matmul_acc(b.block_at(bk, bj), &mut acc)?;
                // Intermediates are buffered in their natural (compacted)
                // representation — the memory cost of this strategy is the
                // sheer *number* of intermediates held live at once.
                Ok(((bi, bj), Block::Dense(acc).compact()))
            },
        )
        .into_iter()
        .collect::<Result<Vec<_>>>()?;

        // Phase 2: group the buffered intermediates by result block and sum.
        let cb = b.col_blocks();
        let mut groups: Vec<Vec<Block>> = (0..a.row_blocks() * cb).map(|_| Vec::new()).collect();
        for ((bi, bj), p) in products {
            groups[bi * cb + bj].push(p);
        }
        let tasks: Vec<(usize, Vec<Block>)> = groups.into_iter().enumerate().collect();
        let results = run_tasks(self.threads, tasks, |(t, group)| -> Result<Arc<Block>> {
            let (bi, bj) = (t / cb, t % cb);
            let rows = a.block_rows_of(bi);
            let cols = b.block_cols_of(bj);
            let mut acc = DenseBlock::zeros(rows, cols);
            for p in &group {
                acc.add_assign(&p.to_dense())?;
            }
            Ok(Arc::new(Block::Dense(acc).compact()))
        });
        let blocks = results.into_iter().collect::<Result<Vec<_>>>()?;
        BlockedMatrix::from_blocks(a.rows(), b.cols(), a.block_size(), blocks)
    }

    /// Parallel element-wise combination of two aligned matrices.
    pub fn zip(
        &self,
        a: &BlockedMatrix,
        b: &BlockedMatrix,
        op: &'static str,
        f: impl Fn(&Block, &Block) -> Result<Block> + Sync,
    ) -> Result<BlockedMatrix> {
        if a.rows() != b.rows() || a.cols() != b.cols() || a.block_size() != b.block_size() {
            return Err(MatrixError::DimensionMismatch {
                op,
                left: (a.rows(), a.cols()),
                right: (b.rows(), b.cols()),
            });
        }
        let tasks: Vec<(usize, usize)> = (0..a.row_blocks())
            .flat_map(|bi| (0..a.col_blocks()).map(move |bj| (bi, bj)))
            .collect();
        let results = run_tasks(self.threads, tasks, |(bi, bj)| -> Result<Arc<Block>> {
            Ok(Arc::new(f(a.block_at(bi, bj), b.block_at(bi, bj))?))
        });
        let blocks = results.into_iter().collect::<Result<Vec<_>>>()?;
        BlockedMatrix::from_blocks(a.rows(), a.cols(), a.block_size(), blocks)
    }

    /// Parallel per-block map (unary operators).
    pub fn map(
        &self,
        a: &BlockedMatrix,
        f: impl Fn(&Block) -> Block + Sync,
    ) -> Result<BlockedMatrix> {
        let tasks: Vec<(usize, usize)> = (0..a.row_blocks())
            .flat_map(|bi| (0..a.col_blocks()).map(move |bj| (bi, bj)))
            .collect();
        let results = run_tasks(self.threads, tasks, |(bi, bj)| {
            Arc::new(f(a.block_at(bi, bj)))
        });
        BlockedMatrix::from_blocks(a.rows(), a.cols(), a.block_size(), results)
    }

    /// Parallel element-wise addition.
    pub fn add(&self, a: &BlockedMatrix, b: &BlockedMatrix) -> Result<BlockedMatrix> {
        self.zip(a, b, "add", |x, y| x.add(y))
    }

    /// Parallel element-wise subtraction.
    pub fn sub(&self, a: &BlockedMatrix, b: &BlockedMatrix) -> Result<BlockedMatrix> {
        self.zip(a, b, "sub", |x, y| x.sub(y))
    }

    /// Parallel cell-wise multiplication.
    pub fn cell_mul(&self, a: &BlockedMatrix, b: &BlockedMatrix) -> Result<BlockedMatrix> {
        self.zip(a, b, "cell_mul", |x, y| x.cell_mul(y))
    }

    /// Parallel cell-wise division.
    pub fn cell_div(&self, a: &BlockedMatrix, b: &BlockedMatrix) -> Result<BlockedMatrix> {
        self.zip(a, b, "cell_div", |x, y| x.cell_div(y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(rows: usize, cols: usize, block: usize) -> BlockedMatrix {
        BlockedMatrix::from_fn(rows, cols, block, |i, j| ((i * cols + j) % 7) as f64 - 3.0).unwrap()
    }

    fn sparse_rand(rows: usize, cols: usize, block: usize) -> BlockedMatrix {
        // deterministic pseudo-sparse pattern
        BlockedMatrix::from_triplets(
            rows,
            cols,
            block,
            (0..rows * cols)
                .filter(|t| t % 13 == 0)
                .map(|t| (t / cols, t % cols, (t % 5) as f64 + 1.0)),
        )
        .unwrap()
    }

    #[test]
    fn in_place_matches_reference() {
        let a = seq(13, 9, 4);
        let b = seq(9, 11, 4);
        let ex = LocalExecutor::new(4, AggregationMode::InPlace);
        let c = ex.matmul(&a, &b).unwrap();
        assert_eq!(c.to_dense(), a.matmul_reference(&b).unwrap().to_dense());
    }

    #[test]
    fn buffered_matches_reference() {
        let a = seq(13, 9, 4);
        let b = seq(9, 11, 4);
        let ex = LocalExecutor::new(4, AggregationMode::Buffer);
        let c = ex.matmul(&a, &b).unwrap();
        assert_eq!(c.to_dense(), a.matmul_reference(&b).unwrap().to_dense());
    }

    #[test]
    fn sparse_inputs_sparse_output() {
        let a = sparse_rand(40, 40, 8);
        let b = sparse_rand(40, 40, 8);
        let ex = LocalExecutor::new(2, AggregationMode::InPlace);
        let c = ex.matmul(&a, &b).unwrap();
        let expect = a.matmul_reference(&b).unwrap();
        assert_eq!(c.to_dense(), expect.to_dense());
        // the mostly-zero result should be held sparsely
        assert!(c.iter_blocks().filter(|(_, _, b)| b.is_sparse()).count() > 0);
    }

    #[test]
    fn pool_is_exercised_by_in_place_multiply() {
        let a = sparse_rand(64, 64, 8);
        let b = sparse_rand(64, 64, 8);
        let ex = LocalExecutor::new(2, AggregationMode::InPlace);
        let _ = ex.matmul(&a, &b).unwrap();
        let s = ex.pool_stats();
        assert!(s.reused + s.allocated >= 64, "{s:?}");
        assert!(
            s.reused > 0,
            "sparse results must recycle accumulators: {s:?}"
        );
    }

    #[test]
    fn parallel_elementwise_matches_sequential() {
        let a = seq(10, 12, 5);
        let b = seq(10, 12, 5);
        let ex = LocalExecutor::new(4, AggregationMode::InPlace);
        assert_eq!(
            ex.add(&a, &b).unwrap().to_dense(),
            a.add(&b).unwrap().to_dense()
        );
        assert_eq!(
            ex.sub(&a, &b).unwrap().to_dense(),
            a.sub(&b).unwrap().to_dense()
        );
        assert_eq!(
            ex.cell_mul(&a, &b).unwrap().to_dense(),
            a.cell_mul(&b).unwrap().to_dense()
        );
        assert_eq!(
            ex.cell_div(&a, &b).unwrap().to_dense(),
            a.cell_div(&b).unwrap().to_dense()
        );
    }

    #[test]
    fn map_scales_in_parallel() {
        let a = seq(10, 10, 3);
        let ex = LocalExecutor::new(4, AggregationMode::InPlace);
        let c = ex.map(&a, |b| b.scale(2.0)).unwrap();
        assert_eq!(c.to_dense(), a.scale(2.0).to_dense());
    }

    #[test]
    fn dim_mismatch_is_rejected() {
        let a = seq(4, 4, 2);
        let b = seq(5, 5, 2);
        let ex = LocalExecutor::new(2, AggregationMode::InPlace);
        assert!(ex.matmul(&a, &b).is_err());
        assert!(ex.add(&a, &b).is_err());
    }

    #[test]
    fn in_place_uses_less_memory_than_buffer() {
        // A multiplication with a long shared dimension: many intermediate
        // products per result block. Buffer must hold them all; In-Place
        // holds one accumulator per live task.
        let a = seq(32, 256, 8);
        let b = seq(256, 32, 8);
        let ex_ip = LocalExecutor::new(2, AggregationMode::InPlace);
        let guard = crate::mem::PeakGuard::start();
        let c1 = ex_ip.matmul(&a, &b).unwrap();
        let ip_peak = guard.peak_delta();

        let ex_buf = LocalExecutor::new(2, AggregationMode::Buffer);
        let guard = crate::mem::PeakGuard::start();
        let c2 = ex_buf.matmul(&a, &b).unwrap();
        let buf_peak = guard.peak_delta();

        assert_eq!(c1.to_dense(), c2.to_dense());
        assert!(
            buf_peak > ip_peak,
            "buffer peak {buf_peak} should exceed in-place peak {ip_peak}"
        );
    }
}
