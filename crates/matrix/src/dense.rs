//! Dense blocks: row-major `f64` tiles.
//!
//! A [`DenseBlock`] is the dense half of DMac's block representation
//! (paper §5.3): "a one-dimensional array is used for dense block". All
//! kernels are written as straightforward loops with cache-friendly
//! orderings (i-k-j for multiplication) rather than calling out to BLAS, so
//! the reproduction is self-contained.

use crate::error::{MatrixError, Result};
use crate::mem;

/// A dense `rows × cols` tile stored row-major in a single `Vec<f64>`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseBlock {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseBlock {
    /// Create a zero-filled block. Registers the allocation with the global
    /// memory tracker.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        mem::track_alloc(rows * cols * 8);
        DenseBlock {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a block from row-major data.
    ///
    /// # Errors
    /// Returns [`MatrixError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::DimensionMismatch {
                op: "from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        mem::track_alloc(data.len() * 8);
        Ok(DenseBlock { rows, cols, data })
    }

    /// Build a block by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        mem::track_alloc(data.len() * 8);
        DenseBlock { rows, cols, data }
    }

    /// Identity-like block: ones on the diagonal, zeros elsewhere.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the row-major backing storage.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the row-major backing storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access (checked).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows || j >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                index: (i, j),
                dims: (self.rows, self.cols),
            });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Element access (unchecked in release; debug-asserted).
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Set an element (checked).
    pub fn set(&mut self, i: usize, j: usize, v: f64) -> Result<()> {
        if i >= self.rows || j >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                index: (i, j),
                dims: (self.rows, self.cols),
            });
        }
        self.data[i * self.cols + j] = v;
        Ok(())
    }

    /// Number of stored (i.e. all) cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the block has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Count of non-zero entries (exact).
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Bytes of payload this block occupies in memory (`8·m·n`); the paper's
    /// analytical model (§5.3) charges `4·m·n` because it assumes 4-byte
    /// floats — see [`crate::blocking::model_dense_bytes`] for the paper's
    /// formula used in the Figure 8(b) analytics.
    pub fn actual_bytes(&self) -> usize {
        self.data.len() * 8
    }

    /// `self · other`, dense × dense, i-k-j loop order.
    pub fn matmul(&self, other: &DenseBlock) -> Result<DenseBlock> {
        if self.cols != other.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "multiply",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = DenseBlock::zeros(self.rows, other.cols);
        self.matmul_acc(other, &mut out)?;
        Ok(out)
    }

    /// `acc += self · other` — the In-Place building block: no intermediate
    /// allocation, results folded straight into the caller-owned block.
    pub fn matmul_acc(&self, other: &DenseBlock, acc: &mut DenseBlock) -> Result<()> {
        if self.cols != other.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "multiply",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        if acc.rows != self.rows || acc.cols != other.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "multiply-acc",
                left: (acc.rows, acc.cols),
                right: (self.rows, other.cols),
            });
        }
        // Cache-blocked i-k-j: the k×j panel of `other` touched by the two
        // inner loops is capped at KC×NC cells (256 KiB of f64, L2-resident)
        // so it is reused across the whole i sweep instead of being
        // re-streamed from memory for every row. Within one (i, j) cell the
        // k loop still visits ascending k — panels ascend and k ascends
        // inside a panel — so the f64 accumulation order (and the result
        // bit pattern) is identical to the naïve i-k-j loop.
        const KC: usize = 64;
        const NC: usize = 512;
        let n = other.cols;
        for k0 in (0..self.cols).step_by(KC) {
            let k1 = (k0 + KC).min(self.cols);
            for j0 in (0..n).step_by(NC) {
                let j1 = (j0 + NC).min(n);
                for i in 0..self.rows {
                    let arow = &self.data[i * self.cols + k0..i * self.cols + k1];
                    let crow = &mut acc.data[i * n + j0..i * n + j1];
                    for (dk, &aik) in arow.iter().enumerate() {
                        if aik == 0.0 {
                            continue;
                        }
                        let k = k0 + dk;
                        let brow = &other.data[k * n + j0..k * n + j1];
                        for (c, &b) in crow.iter_mut().zip(brow.iter()) {
                            *c += aik * b;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Element-wise combine with another block of identical shape.
    pub fn zip_with(
        &self,
        other: &DenseBlock,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<DenseBlock> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MatrixError::DimensionMismatch {
                op,
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        DenseBlock::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise addition.
    pub fn add(&self, other: &DenseBlock) -> Result<DenseBlock> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &DenseBlock) -> Result<DenseBlock> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Cell-wise (Hadamard) multiplication.
    pub fn cell_mul(&self, other: &DenseBlock) -> Result<DenseBlock> {
        self.zip_with(other, "cell_mul", |a, b| a * b)
    }

    /// Cell-wise division. Division by zero yields `0.0`, matching the
    /// GNMF-style update conventions (a zero denominator means a zero
    /// numerator in well-formed factorization updates).
    pub fn cell_div(&self, other: &DenseBlock) -> Result<DenseBlock> {
        self.zip_with(other, "cell_div", |a, b| if b == 0.0 { 0.0 } else { a / b })
    }

    /// Map every element through `f`.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DenseBlock {
        let data = self.data.iter().map(|&v| f(v)).collect();
        DenseBlock::from_vec(self.rows, self.cols, data).expect("same shape")
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, c: f64) -> DenseBlock {
        self.map(|v| v * c)
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, c: f64) -> DenseBlock {
        self.map(|v| v + c)
    }

    /// In-place `self += other` (same shape).
    pub fn add_assign(&mut self, other: &DenseBlock) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "add_assign",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseBlock {
        let mut out = DenseBlock::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Sum of squares (for norms computed across blocks).
    pub fn sum_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Reset all cells to zero, keeping the allocation (used by the result
    /// buffer pool when recycling blocks between tasks).
    pub fn clear(&mut self) {
        for v in &mut self.data {
            *v = 0.0;
        }
    }

    /// Reshape the block in place to `rows × cols`, reusing the allocation
    /// when capacity allows. Contents are zeroed.
    pub fn reset_shape(&mut self, rows: usize, cols: usize) {
        let need = rows * cols;
        if need > self.data.len() {
            mem::track_alloc((need - self.data.len()) * 8);
        }
        self.data.clear();
        self.data.resize(need, 0.0);
        self.rows = rows;
        self.cols = cols;
    }
}

impl Drop for DenseBlock {
    fn drop(&mut self) {
        mem::track_free(self.data.capacity() * 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(rows: usize, cols: usize, v: &[f64]) -> DenseBlock {
        DenseBlock::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn zeros_and_accessors() {
        let z = DenseBlock::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert_eq!(z.len(), 6);
        assert!(!z.is_empty());
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.get(1, 2).unwrap(), 0.0);
        assert!(z.get(2, 0).is_err());
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(DenseBlock::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = b(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = b(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&x).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = DenseBlock::zeros(2, 3);
        let x = DenseBlock::zeros(2, 3);
        assert!(matches!(
            a.matmul(&x),
            Err(MatrixError::DimensionMismatch { op: "multiply", .. })
        ));
    }

    #[test]
    fn matmul_acc_accumulates() {
        let a = DenseBlock::eye(2);
        let x = b(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut acc = b(2, 2, &[10.0, 10.0, 10.0, 10.0]);
        a.matmul_acc(&x, &mut acc).unwrap();
        assert_eq!(acc.data(), &[11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = b(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let c = b(2, 2, &[4.0, 3.0, 2.0, 0.0]);
        assert_eq!(a.add(&c).unwrap().data(), &[5.0, 5.0, 5.0, 4.0]);
        assert_eq!(a.sub(&c).unwrap().data(), &[-3.0, -1.0, 1.0, 4.0]);
        assert_eq!(a.cell_mul(&c).unwrap().data(), &[4.0, 6.0, 6.0, 0.0]);
        // division by zero yields zero by convention
        assert_eq!(a.cell_div(&c).unwrap().data(), &[0.25, 2.0 / 3.0, 1.5, 0.0]);
    }

    #[test]
    fn scalar_ops_and_reductions() {
        let a = b(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.sum_sq(), 30.0);
    }

    #[test]
    fn transpose_round_trip() {
        let a = b(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.at(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn reset_shape_reuses_allocation() {
        let mut a = DenseBlock::zeros(4, 4);
        a.set(0, 0, 5.0).unwrap();
        a.reset_shape(2, 2);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.sum(), 0.0);
    }

    #[test]
    fn zip_with_shape_mismatch() {
        let a = DenseBlock::zeros(2, 2);
        let c = DenseBlock::zeros(2, 3);
        assert!(a.add(&c).is_err());
    }
}
