//! [`Block`]: the tagged dense/sparse tile the whole system computes on.
//!
//! DMac keeps most blocks of a sparse input matrix sparse (CSC) and promotes
//! to dense where an operation fills the tile in (e.g. products of factor
//! matrices in GNMF). `Block` centralises that dispatch so the executors and
//! the distributed runtime never care which representation a tile uses.

use crate::csc::CscBlock;
use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};

/// Density threshold above which [`Block::compact`] converts a sparse block
/// to dense (CSC stores 12 bytes per item vs. 8 per dense cell, so the
/// break-even is 2/3; we use 0.5 to also buy the faster dense kernels).
pub const DENSIFY_THRESHOLD: f64 = 0.5;

/// A single tile of a blocked matrix: dense or CSC-sparse.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// Dense row-major tile.
    Dense(DenseBlock),
    /// Sparse CSC tile.
    Sparse(CscBlock),
}

impl Block {
    /// A zero tile, represented sparsely (zero storage for items).
    pub fn zeros(rows: usize, cols: usize) -> Block {
        Block::Sparse(CscBlock::zeros(rows, cols))
    }

    /// A zero tile, represented densely (for accumulation targets).
    pub fn dense_zeros(rows: usize, cols: usize) -> Block {
        Block::Dense(DenseBlock::zeros(rows, cols))
    }

    /// Rows of the tile.
    pub fn rows(&self) -> usize {
        match self {
            Block::Dense(d) => d.rows(),
            Block::Sparse(s) => s.rows(),
        }
    }

    /// Columns of the tile.
    pub fn cols(&self) -> usize {
        match self {
            Block::Dense(d) => d.cols(),
            Block::Sparse(s) => s.cols(),
        }
    }

    /// Exact number of non-zero cells.
    pub fn nnz(&self) -> usize {
        match self {
            Block::Dense(d) => d.nnz(),
            Block::Sparse(s) => s.nnz(),
        }
    }

    /// True if stored sparsely.
    pub fn is_sparse(&self) -> bool {
        matches!(self, Block::Sparse(_))
    }

    /// Checked element access.
    pub fn get(&self, i: usize, j: usize) -> Result<f64> {
        match self {
            Block::Dense(d) => d.get(i, j),
            Block::Sparse(s) => s.get(i, j),
        }
    }

    /// Bytes this tile would occupy on the wire / in memory with its current
    /// representation. This is what the cluster's communication meter counts
    /// when a tile is shuffled or broadcast.
    pub fn actual_bytes(&self) -> usize {
        match self {
            Block::Dense(d) => d.actual_bytes(),
            Block::Sparse(s) => s.actual_bytes(),
        }
    }

    /// View as dense, converting if necessary.
    pub fn to_dense(&self) -> DenseBlock {
        match self {
            Block::Dense(d) => d.clone(),
            Block::Sparse(s) => s.to_dense(),
        }
    }

    /// Pick the cheaper representation for this tile's density: sparse tiles
    /// denser than [`DENSIFY_THRESHOLD`] become dense; dense tiles sparser
    /// than half of it become sparse.
    pub fn compact(self) -> Block {
        let total = (self.rows() * self.cols()).max(1);
        let density = self.nnz() as f64 / total as f64;
        match self {
            Block::Sparse(s) if density > DENSIFY_THRESHOLD => Block::Dense(s.to_dense()),
            Block::Dense(ref d) if density < DENSIFY_THRESHOLD / 2.0 => {
                Block::Sparse(CscBlock::from_dense(d))
            }
            other => other,
        }
    }

    /// `acc += self · other` dispatching over all four representation
    /// combinations. The accumulator is always dense (the In-Place strategy
    /// needs a mutable random-access target).
    pub fn matmul_acc(&self, other: &Block, acc: &mut DenseBlock) -> Result<()> {
        match (self, other) {
            (Block::Dense(a), Block::Dense(b)) => a.matmul_acc(b, acc),
            (Block::Sparse(a), Block::Dense(b)) => a.matmul_dense_acc(b, acc),
            (Block::Dense(a), Block::Sparse(b)) => b.rmatmul_dense_acc(a, acc),
            (Block::Sparse(a), Block::Sparse(b)) => a.matmul_sparse_acc(b, acc),
        }
    }

    /// Element-wise binary operation; result is dense unless both operands
    /// are sparse and the op preserves zero-zero (add/sub do; mul does with
    /// an intersection, div does not — for simplicity results of sparse
    /// pairs for add/sub/mul stay sparse via triplet merge).
    fn zip(&self, other: &Block, op: &'static str, f: impl Fn(f64, f64) -> f64) -> Result<Block> {
        if self.rows() != other.rows() || self.cols() != other.cols() {
            return Err(MatrixError::DimensionMismatch {
                op,
                left: (self.rows(), self.cols()),
                right: (other.rows(), other.cols()),
            });
        }
        match (self, other) {
            (Block::Sparse(a), Block::Sparse(b)) if op != "cell_div" => {
                // Merge stored items; f must map (0,0) -> 0 for this to be
                // sound, which holds for add/sub/cell_mul.
                let mut trips = Vec::with_capacity(a.nnz() + b.nnz());
                for j in 0..a.cols() {
                    let mut ra = a.col_range(j).peekable_items(a);
                    let mut rb = b.col_range(j).peekable_items(b);
                    loop {
                        match (ra.peek(), rb.peek()) {
                            (Some(&(ia, va)), Some(&(ib, vb))) => {
                                use std::cmp::Ordering::*;
                                match ia.cmp(&ib) {
                                    Less => {
                                        trips.push((ia as usize, j, f(va, 0.0)));
                                        ra.next();
                                    }
                                    Greater => {
                                        trips.push((ib as usize, j, f(0.0, vb)));
                                        rb.next();
                                    }
                                    Equal => {
                                        trips.push((ia as usize, j, f(va, vb)));
                                        ra.next();
                                        rb.next();
                                    }
                                }
                            }
                            (Some(&(ia, va)), None) => {
                                trips.push((ia as usize, j, f(va, 0.0)));
                                ra.next();
                            }
                            (None, Some(&(ib, vb))) => {
                                trips.push((ib as usize, j, f(0.0, vb)));
                                rb.next();
                            }
                            (None, None) => break,
                        }
                    }
                }
                Ok(Block::Sparse(CscBlock::from_triplets(
                    a.rows(),
                    a.cols(),
                    trips,
                )?))
            }
            _ => {
                let a = self.to_dense();
                let b = other.to_dense();
                Ok(Block::Dense(a.zip_with(&b, op, f)?))
            }
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Block) -> Result<Block> {
        self.zip(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Block) -> Result<Block> {
        self.zip(other, "sub", |a, b| a - b)
    }

    /// Cell-wise multiplication.
    pub fn cell_mul(&self, other: &Block) -> Result<Block> {
        self.zip(other, "cell_mul", |a, b| a * b)
    }

    /// Cell-wise division (zero divisor yields zero, see
    /// [`DenseBlock::cell_div`]).
    pub fn cell_div(&self, other: &Block) -> Result<Block> {
        self.zip(other, "cell_div", |a, b| if b == 0.0 { 0.0 } else { a / b })
    }

    /// Scale by a constant (keeps representation).
    pub fn scale(&self, c: f64) -> Block {
        match self {
            Block::Dense(d) => Block::Dense(d.scale(c)),
            Block::Sparse(s) => Block::Sparse(s.scale(c)),
        }
    }

    /// Add a constant to every cell. Forces dense unless `c == 0`.
    pub fn add_scalar(&self, c: f64) -> Block {
        if c == 0.0 {
            return self.clone();
        }
        Block::Dense(self.to_dense().add_scalar(c))
    }

    /// Map every (stored and implicit-zero) cell through `f`; keeps sparsity
    /// only if `f(0) == 0`.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Block {
        if f(0.0) == 0.0 {
            match self {
                Block::Dense(d) => Block::Dense(d.map(&f)),
                Block::Sparse(s) => Block::Sparse(s.map_values(&f)),
            }
        } else {
            Block::Dense(self.to_dense().map(&f))
        }
    }

    /// Transposed copy (keeps representation).
    pub fn transpose(&self) -> Block {
        match self {
            Block::Dense(d) => Block::Dense(d.transpose()),
            Block::Sparse(s) => Block::Sparse(s.transpose()),
        }
    }

    /// Sum of all cells.
    pub fn sum(&self) -> f64 {
        match self {
            Block::Dense(d) => d.sum(),
            Block::Sparse(s) => s.sum(),
        }
    }

    /// Sum of squares of all cells.
    pub fn sum_sq(&self) -> f64 {
        match self {
            Block::Dense(d) => d.sum_sq(),
            Block::Sparse(s) => s.sum_sq(),
        }
    }
}

/// Helper: iterate a CSC column range as `(row, value)` pairs with peeking.
trait PeekableItems {
    fn peekable_items(self, b: &CscBlock) -> std::iter::Peekable<ColItems<'_>>;
}

/// Iterator over `(row, value)` items of one CSC column.
struct ColItems<'a> {
    block: &'a CscBlock,
    range: std::ops::Range<usize>,
}

impl Iterator for ColItems<'_> {
    type Item = (u32, f64);
    fn next(&mut self) -> Option<(u32, f64)> {
        let t = self.range.next()?;
        Some((self.block.row_indices()[t], self.block.values()[t]))
    }
}

impl PeekableItems for std::ops::Range<usize> {
    fn peekable_items(self, b: &CscBlock) -> std::iter::Peekable<ColItems<'_>> {
        ColItems {
            block: b,
            range: self,
        }
        .peekable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize, v: &[f64]) -> Block {
        Block::Dense(DenseBlock::from_vec(rows, cols, v.to_vec()).unwrap())
    }

    fn sparse(rows: usize, cols: usize, t: &[(usize, usize, f64)]) -> Block {
        Block::Sparse(CscBlock::from_triplets(rows, cols, t.to_vec()).unwrap())
    }

    #[test]
    fn mixed_matmul_all_combinations_agree() {
        let ad = dense(2, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let as_ = sparse(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        let bd = dense(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let bs = Block::Sparse(CscBlock::from_dense(&bd.to_dense()));
        let expect = ad.to_dense().matmul(&bd.to_dense()).unwrap();
        for a in [&ad, &as_] {
            for b in [&bd, &bs] {
                let mut acc = DenseBlock::zeros(2, 2);
                a.matmul_acc(b, &mut acc).unwrap();
                assert_eq!(acc, expect, "combination failed");
            }
        }
    }

    #[test]
    fn sparse_add_stays_sparse() {
        let a = sparse(3, 3, &[(0, 0, 1.0), (2, 2, 2.0)]);
        let b = sparse(3, 3, &[(0, 0, -1.0), (1, 1, 5.0)]);
        let c = a.add(&b).unwrap();
        assert!(c.is_sparse());
        assert_eq!(c.get(0, 0).unwrap(), 0.0);
        assert_eq!(c.get(1, 1).unwrap(), 5.0);
        assert_eq!(c.get(2, 2).unwrap(), 2.0);
        // cancelled cell dropped from storage
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn sparse_sub_and_cellmul() {
        let a = sparse(2, 2, &[(0, 0, 3.0), (1, 1, 4.0)]);
        let b = sparse(2, 2, &[(0, 0, 1.0), (0, 1, 9.0)]);
        let s = a.sub(&b).unwrap();
        assert_eq!(s.get(0, 0).unwrap(), 2.0);
        assert_eq!(s.get(0, 1).unwrap(), -9.0);
        let m = a.cell_mul(&b).unwrap();
        assert_eq!(m.get(0, 0).unwrap(), 3.0);
        assert_eq!(m.get(0, 1).unwrap(), 0.0);
        assert_eq!(m.get(1, 1).unwrap(), 0.0);
    }

    #[test]
    fn cell_div_mixed_goes_dense() {
        let a = sparse(2, 2, &[(0, 0, 4.0)]);
        let b = dense(2, 2, &[2.0, 1.0, 1.0, 0.0]);
        let c = a.cell_div(&b).unwrap();
        assert!(!c.is_sparse());
        assert_eq!(c.get(0, 0).unwrap(), 2.0);
        assert_eq!(c.get(1, 1).unwrap(), 0.0); // 0/0 -> 0 by convention
    }

    #[test]
    fn compact_densifies_and_sparsifies() {
        // fully dense sparse block -> dense
        let full = sparse(2, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)]);
        assert!(!full.compact().is_sparse());
        // nearly-empty dense block -> sparse
        let mut d = DenseBlock::zeros(10, 10);
        d.set(0, 0, 1.0).unwrap();
        assert!(Block::Dense(d).compact().is_sparse());
    }

    #[test]
    fn transpose_and_reductions() {
        let a = sparse(2, 3, &[(0, 2, 5.0), (1, 0, -1.0)]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 0).unwrap(), 5.0);
        assert_eq!(a.sum(), 4.0);
        assert_eq!(a.sum_sq(), 26.0);
    }

    #[test]
    fn map_respects_zero_preservation() {
        let a = sparse(2, 2, &[(0, 0, 2.0)]);
        let doubled = a.map(|v| v * 2.0);
        assert!(doubled.is_sparse());
        let shifted = a.map(|v| v + 1.0);
        assert!(!shifted.is_sparse());
        assert_eq!(shifted.get(1, 1).unwrap(), 1.0);
    }

    #[test]
    fn scale_and_add_scalar() {
        let a = dense(1, 2, &[1.0, 2.0]);
        assert_eq!(a.scale(3.0).get(0, 1).unwrap(), 6.0);
        assert_eq!(a.add_scalar(1.0).get(0, 0).unwrap(), 2.0);
        let s = sparse(1, 2, &[(0, 0, 1.0)]);
        assert!(s.add_scalar(0.0).is_sparse());
    }

    #[test]
    fn dimension_mismatch_errors() {
        let a = Block::zeros(2, 2);
        let b = Block::zeros(3, 3);
        assert!(a.add(&b).is_err());
        let mut acc = DenseBlock::zeros(2, 2);
        assert!(a.matmul_acc(&b, &mut acc).is_err());
    }
}
