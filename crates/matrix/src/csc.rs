//! Sparse blocks in Compressed Sparse Column (CSC) format.
//!
//! This is the representation of paper Figure 5: a *value* array holding the
//! non-zero items, a *row index* array with the row of each item, and a
//! *column start index* array whose `j`-th entry is the offset of the first
//! item of column `j` (with a final sentinel equal to `nnz`).
//!
//! The paper's memory model charges `4n + 8mns` bytes for an `m × n` block
//! of sparsity `s` (4-byte column pointers and 8 bytes per stored item); our
//! physical layout uses `u32` pointers/indices and `f64` values, and
//! [`CscBlock::actual_bytes`] reports the real footprint while
//! [`crate::blocking`] exposes the paper's analytical formula.

use crate::dense::DenseBlock;
use crate::error::{MatrixError, Result};
use crate::mem;

/// A sparse `rows × cols` tile in CSC format.
#[derive(Debug, Clone, PartialEq)]
pub struct CscBlock {
    rows: usize,
    cols: usize,
    /// `col_ptr[j] .. col_ptr[j+1]` indexes the items of column `j`.
    col_ptr: Vec<u32>,
    /// Row index of each stored item, grouped by column, ascending per column.
    row_idx: Vec<u32>,
    /// The stored item values.
    values: Vec<f64>,
}

impl CscBlock {
    /// An empty (all-zero) sparse block.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        mem::track_alloc((cols + 1) * 4);
        CscBlock {
            rows,
            cols,
            col_ptr: vec![0; cols + 1],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from raw CSC arrays, validating every invariant.
    ///
    /// # Errors
    /// [`MatrixError::MalformedSparse`] when the arrays are inconsistent
    /// (wrong pointer length, non-monotone pointers, out-of-range or
    /// unsorted row indices, length mismatch).
    pub fn from_csc(
        rows: usize,
        cols: usize,
        col_ptr: Vec<u32>,
        row_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if col_ptr.len() != cols + 1 {
            return Err(MatrixError::MalformedSparse(format!(
                "col_ptr length {} != cols+1 = {}",
                col_ptr.len(),
                cols + 1
            )));
        }
        if row_idx.len() != values.len() {
            return Err(MatrixError::MalformedSparse(format!(
                "row_idx length {} != values length {}",
                row_idx.len(),
                values.len()
            )));
        }
        if col_ptr[0] != 0 || *col_ptr.last().unwrap() as usize != values.len() {
            return Err(MatrixError::MalformedSparse(
                "col_ptr must start at 0 and end at nnz".into(),
            ));
        }
        for j in 0..cols {
            if col_ptr[j] > col_ptr[j + 1] {
                return Err(MatrixError::MalformedSparse(format!(
                    "col_ptr not monotone at column {j}"
                )));
            }
            let lo = col_ptr[j] as usize;
            let hi = col_ptr[j + 1] as usize;
            for t in lo..hi {
                if row_idx[t] as usize >= rows {
                    return Err(MatrixError::MalformedSparse(format!(
                        "row index {} out of range in column {j}",
                        row_idx[t]
                    )));
                }
                if t > lo && row_idx[t] <= row_idx[t - 1] {
                    return Err(MatrixError::MalformedSparse(format!(
                        "row indices not strictly ascending in column {j}"
                    )));
                }
            }
        }
        mem::track_alloc(col_ptr.len() * 4 + row_idx.len() * 4 + values.len() * 8);
        Ok(CscBlock {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Build from `(row, col, value)` triplets (any order; duplicates summed).
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self> {
        let mut per_col: Vec<Vec<(u32, f64)>> = vec![Vec::new(); cols];
        for (i, j, v) in triplets {
            if i >= rows || j >= cols {
                return Err(MatrixError::IndexOutOfBounds {
                    index: (i, j),
                    dims: (rows, cols),
                });
            }
            if v != 0.0 {
                per_col[j].push((i as u32, v));
            }
        }
        let mut col_ptr = Vec::with_capacity(cols + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0u32);
        for col in per_col.iter_mut() {
            col.sort_unstable_by_key(|(i, _)| *i);
            let mut k = 0;
            while k < col.len() {
                let (i, mut v) = col[k];
                let mut k2 = k + 1;
                while k2 < col.len() && col[k2].0 == i {
                    v += col[k2].1;
                    k2 += 1;
                }
                if v != 0.0 {
                    row_idx.push(i);
                    values.push(v);
                }
                k = k2;
            }
            col_ptr.push(values.len() as u32);
        }
        mem::track_alloc(col_ptr.len() * 4 + row_idx.len() * 4 + values.len() * 8);
        Ok(CscBlock {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Convert a dense block into CSC, dropping zeros.
    pub fn from_dense(d: &DenseBlock) -> Self {
        let mut col_ptr = Vec::with_capacity(d.cols() + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0u32);
        for j in 0..d.cols() {
            for i in 0..d.rows() {
                let v = d.at(i, j);
                if v != 0.0 {
                    row_idx.push(i as u32);
                    values.push(v);
                }
            }
            col_ptr.push(values.len() as u32);
        }
        mem::track_alloc(col_ptr.len() * 4 + row_idx.len() * 4 + values.len() * 8);
        CscBlock {
            rows: d.rows(),
            cols: d.cols(),
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Materialise as a dense block.
    pub fn to_dense(&self) -> DenseBlock {
        let mut out = DenseBlock::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            for t in self.col_range(j) {
                let i = self.row_idx[t] as usize;
                out.data_mut()[i * self.cols + j] = self.values[t];
            }
        }
        out
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero items.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of cells that are non-zero.
    pub fn sparsity(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// Item range of column `j` into [`Self::row_indices`]/[`Self::values`].
    #[inline]
    pub fn col_range(&self, j: usize) -> std::ops::Range<usize> {
        self.col_ptr[j] as usize..self.col_ptr[j + 1] as usize
    }

    /// The column-start-index array (length `cols + 1`).
    #[inline]
    pub fn col_ptrs(&self) -> &[u32] {
        &self.col_ptr
    }

    /// The row-index array.
    #[inline]
    pub fn row_indices(&self) -> &[u32] {
        &self.row_idx
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Element lookup (binary search within the column).
    pub fn get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows || j >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                index: (i, j),
                dims: (self.rows, self.cols),
            });
        }
        let r = self.col_range(j);
        match self.row_idx[r.clone()].binary_search(&(i as u32)) {
            Ok(off) => Ok(self.values[r.start + off]),
            Err(_) => Ok(0.0),
        }
    }

    /// Real bytes used by the three arrays (`4(n+1) + 4·nnz + 8·nnz`).
    pub fn actual_bytes(&self) -> usize {
        self.col_ptr.len() * 4 + self.row_idx.len() * 4 + self.values.len() * 8
    }

    /// Transposed copy (CSC of the transpose == CSR of self, re-encoded).
    pub fn transpose(&self) -> CscBlock {
        // Counting sort by row index to build the transposed column pointers.
        let mut counts = vec![0u32; self.rows + 1];
        for &i in &self.row_idx {
            counts[i as usize + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let col_ptr = counts.clone();
        let mut cursor = counts;
        let mut row_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for j in 0..self.cols {
            for t in self.col_range(j) {
                let i = self.row_idx[t] as usize;
                let dst = cursor[i] as usize;
                row_idx[dst] = j as u32;
                values[dst] = self.values[t];
                cursor[i] += 1;
            }
        }
        mem::track_alloc(col_ptr.len() * 4 + row_idx.len() * 4 + values.len() * 8);
        CscBlock {
            rows: self.cols,
            cols: self.rows,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// `acc += self · other` where `other` is dense; the sparse × dense
    /// workhorse. Iterates stored items of `self` once.
    pub fn matmul_dense_acc(&self, other: &DenseBlock, acc: &mut DenseBlock) -> Result<()> {
        if self.cols != other.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "multiply",
                left: (self.rows, self.cols),
                right: (other.rows(), other.cols()),
            });
        }
        if acc.rows() != self.rows || acc.cols() != other.cols() {
            return Err(MatrixError::DimensionMismatch {
                op: "multiply-acc",
                left: (acc.rows(), acc.cols()),
                right: (self.rows, other.cols()),
            });
        }
        let n = other.cols();
        // acc[i, :] += v_ik * other[k, :]
        for k in 0..self.cols {
            for t in self.col_range(k) {
                let i = self.row_idx[t] as usize;
                let v = self.values[t];
                let brow = &other.data()[k * n..(k + 1) * n];
                let crow = &mut acc.data_mut()[i * n..(i + 1) * n];
                for (c, &b) in crow.iter_mut().zip(brow.iter()) {
                    *c += v * b;
                }
            }
        }
        Ok(())
    }

    /// `acc += other · self` where `other` is dense (dense × sparse).
    pub fn rmatmul_dense_acc(&self, other: &DenseBlock, acc: &mut DenseBlock) -> Result<()> {
        if other.cols() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "multiply",
                left: (other.rows(), other.cols()),
                right: (self.rows, self.cols),
            });
        }
        if acc.rows() != other.rows() || acc.cols() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "multiply-acc",
                left: (acc.rows(), acc.cols()),
                right: (other.rows(), self.cols),
            });
        }
        // acc[:, j] += other[:, k] * v_kj  — iterate columns of self.
        let m = other.rows();
        let oc = other.cols();
        let n = self.cols;
        for j in 0..n {
            for t in self.col_range(j) {
                let k = self.row_idx[t] as usize;
                let v = self.values[t];
                for i in 0..m {
                    acc.data_mut()[i * n + j] += other.data()[i * oc + k] * v;
                }
            }
        }
        Ok(())
    }

    /// `acc += self · other` where both are sparse; the result accumulator
    /// stays dense (products of sparse blocks fill in quickly, and the
    /// In-Place strategy needs a mutable accumulation target).
    pub fn matmul_sparse_acc(&self, other: &CscBlock, acc: &mut DenseBlock) -> Result<()> {
        if self.cols != other.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "multiply",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        if acc.rows() != self.rows || acc.cols() != other.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "multiply-acc",
                left: (acc.rows(), acc.cols()),
                right: (self.rows, other.cols),
            });
        }
        let n = other.cols;
        for j in 0..n {
            for t in other.col_range(j) {
                let k = other.row_idx[t] as usize;
                let bv = other.values[t];
                for s in self.col_range(k) {
                    let i = self.row_idx[s] as usize;
                    acc.data_mut()[i * n + j] += self.values[s] * bv;
                }
            }
        }
        Ok(())
    }

    /// Map stored values through `f` (zeros stay zero, so sparsity is kept).
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> CscBlock {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = f(*v);
        }
        out
    }

    /// Scale all stored values.
    pub fn scale(&self, c: f64) -> CscBlock {
        self.map_values(|v| v * c)
    }

    /// Sum of all stored values.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Sum of squares of stored values.
    pub fn sum_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }
}

impl Drop for CscBlock {
    fn drop(&mut self) {
        mem::track_free(
            self.col_ptr.capacity() * 4 + self.row_idx.capacity() * 4 + self.values.capacity() * 8,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example matrix of paper Figure 5 (4×4):
    /// ```text
    /// col: 0    1    2       3
    ///      .    3    2       .
    ///      2(1,0) .  4(r1?)  ...
    /// ```
    /// We use the exact arrays from the figure: col_ptr = [0,1,3,6,7],
    /// row_idx = [1,0,2,0,1,3,2], values = [2,3,2,2,4,2,1].
    #[test]
    fn figure5_example_round_trips() {
        let b = CscBlock::from_csc(
            4,
            4,
            vec![0, 1, 3, 6, 7],
            vec![1, 0, 2, 0, 1, 3, 2],
            vec![2.0, 3.0, 2.0, 2.0, 4.0, 2.0, 1.0],
        )
        .unwrap();
        assert_eq!(b.nnz(), 7);
        assert_eq!(b.get(1, 0).unwrap(), 2.0);
        assert_eq!(b.get(0, 1).unwrap(), 3.0);
        assert_eq!(b.get(2, 1).unwrap(), 2.0);
        assert_eq!(b.get(0, 2).unwrap(), 2.0);
        assert_eq!(b.get(1, 2).unwrap(), 4.0);
        assert_eq!(b.get(3, 2).unwrap(), 2.0);
        assert_eq!(b.get(2, 3).unwrap(), 1.0);
        assert_eq!(b.get(0, 0).unwrap(), 0.0);
        let d = b.to_dense();
        let back = CscBlock::from_dense(&d);
        assert_eq!(back, b);
    }

    #[test]
    fn from_csc_validates() {
        // wrong col_ptr length
        assert!(CscBlock::from_csc(2, 2, vec![0, 0], vec![], vec![]).is_err());
        // non-monotone
        assert!(CscBlock::from_csc(2, 2, vec![0, 1, 0], vec![0], vec![1.0]).is_err());
        // row out of range
        assert!(CscBlock::from_csc(2, 2, vec![0, 1, 1], vec![5], vec![1.0]).is_err());
        // duplicate rows in a column
        assert!(CscBlock::from_csc(3, 1, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // values/row_idx length mismatch
        assert!(CscBlock::from_csc(2, 2, vec![0, 1, 1], vec![0], vec![]).is_err());
    }

    #[test]
    fn from_triplets_sums_duplicates_and_sorts() {
        let b = CscBlock::from_triplets(
            3,
            3,
            vec![
                (2, 1, 1.0),
                (0, 1, 5.0),
                (2, 1, 2.0),
                (1, 0, -1.0),
                (1, 2, 0.0),
            ],
        )
        .unwrap();
        assert_eq!(b.nnz(), 3);
        assert_eq!(b.get(2, 1).unwrap(), 3.0);
        assert_eq!(b.get(0, 1).unwrap(), 5.0);
        assert_eq!(b.get(1, 0).unwrap(), -1.0);
        assert_eq!(b.get(1, 2).unwrap(), 0.0);
    }

    #[test]
    fn triplets_cancelling_to_zero_are_dropped() {
        let b = CscBlock::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, -1.0)]).unwrap();
        assert_eq!(b.nnz(), 0);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let b = CscBlock::from_triplets(
            3,
            4,
            vec![(0, 3, 1.5), (2, 0, -2.0), (1, 1, 4.0), (2, 3, 7.0)],
        )
        .unwrap();
        let t = b.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.to_dense(), b.to_dense().transpose());
        // double transpose is identity
        assert_eq!(t.transpose(), b);
    }

    #[test]
    fn sparse_dense_multiply_matches_dense() {
        let s = CscBlock::from_triplets(3, 3, vec![(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]).unwrap();
        let d = DenseBlock::from_fn(3, 2, |i, j| (i * 2 + j) as f64 + 1.0);
        let mut acc = DenseBlock::zeros(3, 2);
        s.matmul_dense_acc(&d, &mut acc).unwrap();
        let expect = s.to_dense().matmul(&d).unwrap();
        assert_eq!(acc, expect);
    }

    #[test]
    fn dense_sparse_multiply_matches_dense() {
        let s = CscBlock::from_triplets(3, 4, vec![(0, 1, 2.0), (1, 3, 3.0), (2, 0, 4.0)]).unwrap();
        let d = DenseBlock::from_fn(2, 3, |i, j| (i + j) as f64);
        let mut acc = DenseBlock::zeros(2, 4);
        s.rmatmul_dense_acc(&d, &mut acc).unwrap();
        let expect = d.matmul(&s.to_dense()).unwrap();
        assert_eq!(acc, expect);
    }

    #[test]
    fn sparse_sparse_multiply_matches_dense() {
        let a = CscBlock::from_triplets(
            3,
            3,
            vec![(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (0, 2, 1.0)],
        )
        .unwrap();
        let b =
            CscBlock::from_triplets(3, 3, vec![(0, 1, 5.0), (2, 0, 1.0), (2, 2, -1.0)]).unwrap();
        let mut acc = DenseBlock::zeros(3, 3);
        a.matmul_sparse_acc(&b, &mut acc).unwrap();
        let expect = a.to_dense().matmul(&b.to_dense()).unwrap();
        assert_eq!(acc, expect);
    }

    #[test]
    fn sparsity_and_bytes() {
        let b = CscBlock::from_triplets(10, 10, vec![(0, 0, 1.0), (5, 5, 1.0)]).unwrap();
        assert!((b.sparsity() - 0.02).abs() < 1e-12);
        // 11 col ptrs * 4 + 2 * 4 + 2 * 8
        assert_eq!(b.actual_bytes(), 44 + 8 + 16);
    }

    #[test]
    fn reductions_and_scaling() {
        let b = CscBlock::from_triplets(2, 2, vec![(0, 0, 3.0), (1, 1, -4.0)]).unwrap();
        assert_eq!(b.sum(), -1.0);
        assert_eq!(b.sum_sq(), 25.0);
        assert_eq!(b.scale(2.0).get(1, 1).unwrap(), -8.0);
    }

    #[test]
    fn get_out_of_bounds() {
        let b = CscBlock::zeros(2, 2);
        assert!(b.get(2, 0).is_err());
        assert!(b.get(0, 2).is_err());
    }
}
