//! # dmac-matrix — local block-matrix kernels for DMac
//!
//! This crate implements the *local execution engine* of the DMac system
//! (SIGMOD'15, §5.3): the per-worker, block-based matrix representation and
//! the multi-threaded, memory-frugal execution flow of Figure 4.
//!
//! The pieces, bottom-up:
//!
//! * [`DenseBlock`] — a row-major dense `f64` tile.
//! * [`CscBlock`] — a sparse tile in Compressed Sparse Column format
//!   (paper Figure 5: value array, row-index array, column-start-index array).
//! * [`Block`] — the tagged union the rest of the system computes on, with
//!   the full operator set (multiply, add, sub, cell-wise multiply/divide,
//!   scalar ops, transpose, reductions).
//! * [`BlockedMatrix`] — a matrix split into an `rb × cb` grid of square
//!   blocks; the unit that is distributed across workers and computed on
//!   locally.
//! * [`exec`] — the local execution flow: a task queue drained by `L`
//!   threads, a [`exec::ResultBufferPool`] for inter-thread memory reuse, and
//!   the **In-Place** aggregation strategy (each task owns one result block
//!   and folds every contributing block product into it), compared against
//!   the naive **Buffer** strategy the paper evaluates in Figure 7.
//! * [`blocking`] — the analytical memory model (Equation 2) and the
//!   automatic block-size chooser (Equation 3: `m ≤ sqrt(MN / (L·K))`).
//! * [`mem`] — a process-wide peak-memory tracker used to reproduce the
//!   memory measurements of Figures 7 and 8(b).
//!
//! Everything here is deliberately dependency-light: plain `Vec<f64>`
//! kernels, no BLAS, so the reproduction is self-contained and portable.

#![forbid(unsafe_code)]

pub mod block;
pub mod blocked;
pub mod blocking;
pub mod csc;
pub mod dense;
pub mod error;
pub mod exec;
pub mod fused;
pub mod mem;
pub mod rng;

pub use block::Block;
pub use blocked::BlockedMatrix;
pub use blocking::{choose_block_size, BlockingConfig};
pub use csc::CscBlock;
pub use dense::DenseBlock;
pub use error::{MatrixError, Result};
pub use exec::{AggregationMode, LocalExecutor};
pub use fused::{eval_fused_block, FusedOp};
pub use rng::SplitMix64;

/// Relative tolerance used by the test helpers when comparing floating-point
/// matrices produced by different execution orders.
pub const TEST_EPS: f64 = 1e-9;

/// Compare two slices of `f64` with a mixed absolute/relative tolerance.
///
/// Returns the index of the first mismatch, if any. Exposed so that every
/// crate in the workspace compares numerics the same way.
pub fn approx_eq_slice(a: &[f64], b: &[f64], tol: f64) -> Option<usize> {
    if a.len() != b.len() {
        return Some(a.len().min(b.len()));
    }
    a.iter().zip(b.iter()).position(|(x, y)| {
        let scale = x.abs().max(y.abs()).max(1.0);
        (x - y).abs() > tol * scale
    })
}
