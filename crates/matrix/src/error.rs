//! Error types for local matrix computation.

use std::fmt;

/// Errors produced by local block/matrix kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Two operands had incompatible dimensions for the requested operation.
    DimensionMismatch {
        /// Operation name, e.g. `"multiply"`.
        op: &'static str,
        /// Dimensions of the left operand.
        left: (usize, usize),
        /// Dimensions of the right operand.
        right: (usize, usize),
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// The offending `(row, col)` index.
        index: (usize, usize),
        /// The matrix dimensions.
        dims: (usize, usize),
    },
    /// A block size of zero (or otherwise unusable) was requested.
    InvalidBlockSize(usize),
    /// A sparse block's internal arrays were inconsistent.
    MalformedSparse(String),
    /// Cell-wise division encountered a zero divisor and the caller asked
    /// for strict semantics.
    DivisionByZero {
        /// The `(row, col)` position of the zero divisor.
        index: (usize, usize),
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatrixError::IndexOutOfBounds { index, dims } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, dims.0, dims.1
            ),
            MatrixError::InvalidBlockSize(m) => write!(f, "invalid block size {m}"),
            MatrixError::MalformedSparse(msg) => write!(f, "malformed sparse block: {msg}"),
            MatrixError::DivisionByZero { index } => {
                write!(
                    f,
                    "cell-wise division by zero at ({}, {})",
                    index.0, index.1
                )
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MatrixError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_readable() {
        let e = MatrixError::DimensionMismatch {
            op: "multiply",
            left: (2, 3),
            right: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch in multiply: left is 2x3, right is 4x5"
        );
        let e = MatrixError::IndexOutOfBounds {
            index: (9, 9),
            dims: (3, 3),
        };
        assert!(e.to_string().contains("out of bounds"));
        let e = MatrixError::InvalidBlockSize(0);
        assert_eq!(e.to_string(), "invalid block size 0");
        let e = MatrixError::DivisionByZero { index: (1, 2) };
        assert!(e.to_string().contains("(1, 2)"));
    }
}
