//! In-tree deterministic RNG: SplitMix64.
//!
//! The workspace builds with no registry access, so everything that needs
//! randomness — dataset generators, fault injection, randomized tests —
//! shares this tiny generator instead of the `rand` crate. SplitMix64 is
//! the same mixer the engine already uses for `RandomMatrix` cells; it is
//! statistically solid for simulation purposes, trivially seedable, and
//! its streams are reproducible across platforms (pure `u64` arithmetic).

/// A SplitMix64 pseudo-random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per
        // draw, irrelevant at simulation scale.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p`. Always advances the stream,
    /// even for `p <= 0`, so fault schedules stay aligned across configs.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fork a decorrelated child stream (for independent sub-generators).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_A5A5_A5A5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_uniform_ish() {
        let mut r = SplitMix64::new(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bounded_draws_cover_range() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.below(10);
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..100 {
            let x = r.range_inclusive(3, 5);
            assert!((3..=5).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(9);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.1)));
    }
}
