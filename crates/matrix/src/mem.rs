//! Process-wide memory accounting for block allocations.
//!
//! DMac's evaluation (Figures 7 and 8(b)) measures per-node memory usage of
//! the local execution engine. Since a Rust reproduction cannot ask the JVM
//! for heap statistics, we track every block allocation/free through a pair
//! of atomic counters and report the *peak* live block payload. The dense
//! and CSC constructors call [`track_alloc`], the destructors call
//! [`track_free`], so the counters reflect the live working set of matrix
//! data (the quantity the paper's comparison is about — intermediate-result
//! buffers vs. in-place accumulation).

use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Record `bytes` of newly allocated block payload.
pub fn track_alloc(bytes: usize) {
    let now = CURRENT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

/// Record `bytes` of freed block payload.
pub fn track_free(bytes: usize) {
    let _ = CURRENT.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
        Some(c.saturating_sub(bytes))
    });
}

/// Currently live tracked bytes.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live tracked bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current live level. Call before a measured region.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Scope guard measuring the peak allocation delta of a region: records the
/// live level at construction and reports the peak *increase* observed.
pub struct PeakGuard {
    baseline: usize,
}

impl PeakGuard {
    /// Start measuring: resets the peak to the current live level.
    pub fn start() -> Self {
        reset_peak();
        PeakGuard {
            baseline: current_bytes(),
        }
    }

    /// Peak bytes above the baseline observed since [`PeakGuard::start`].
    pub fn peak_delta(&self) -> usize {
        peak_bytes().saturating_sub(self.baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseBlock;

    #[test]
    fn tracker_sees_block_allocations() {
        let guard = PeakGuard::start();
        {
            let _a = DenseBlock::zeros(100, 100); // 80_000 bytes
            let _b = DenseBlock::zeros(10, 10); // 800 bytes
            assert!(guard.peak_delta() >= 80_800);
        }
        // after drop, peak remains
        assert!(guard.peak_delta() >= 80_800);
        // but current went back down by at least the two blocks
        let after = current_bytes();
        let g2 = PeakGuard::start();
        let _c = DenseBlock::zeros(1, 1);
        assert!(current_bytes() >= after);
        assert!(g2.peak_delta() >= 8);
    }

    #[test]
    fn track_free_saturates() {
        // Freeing more than is tracked must not underflow.
        track_free(usize::MAX);
        let _ = current_bytes();
    }
}
