//! `dmac-workerd` — worker daemon for the real multi-process cluster.
//!
//! Spawned by the coordinator (one per physical host), connects back to
//! the given address, and serves kernel commands until shut down:
//!
//! ```text
//! dmac-workerd --connect 127.0.0.1:PORT --host-id H [--heartbeat-ms 100]
//! ```

use dmac::cluster::transport::workerd::{run_worker, WorkerOptions};

fn usage() -> ! {
    eprintln!("usage: dmac-workerd --connect HOST:PORT --host-id N [--heartbeat-ms MS]");
    std::process::exit(2);
}

fn main() {
    let mut connect: Option<String> = None;
    let mut host_id: Option<usize> = None;
    let mut heartbeat_ms: u64 = 100;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            // Identity probe: lets a launcher confirm a candidate path is
            // really this daemon (and not e.g. a test-harness build).
            "--probe" => {
                println!("dmac-workerd");
                return;
            }
            "--connect" => connect = Some(value()),
            "--host-id" => host_id = value().parse().ok(),
            "--heartbeat-ms" => heartbeat_ms = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let (Some(connect), Some(host_id)) = (connect, host_id) else {
        usage();
    };
    let opts = WorkerOptions {
        connect,
        host_id,
        heartbeat_ms,
    };
    if let Err(e) = run_worker(&opts) {
        eprintln!("dmac-workerd[host {host_id}]: {e}");
        std::process::exit(1);
    }
}
