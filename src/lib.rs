//! # dmac — dependency-aware distributed matrix computation
//!
//! A from-scratch Rust reproduction of **DMac** (*"Exploiting Matrix
//! Dependency for Efficient Distributed Matrix Computation"*, SIGMOD 2015).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`matrix`] — local block kernels (dense + CSC sparse), the task-queue /
//!   buffer-pool / In-Place local execution engine, block-size model.
//! * [`cluster`] — the simulated distributed runtime: workers, Row/Column/
//!   Broadcast partition schemes, metered shuffle & broadcast, network model.
//! * [`lang`] — the R-like matrix-program DSL and operator decomposition.
//! * [`core`] — the paper's contribution: matrix-dependency analysis, the
//!   dependency-oriented cost model, the Algorithm-1 planner with its two
//!   heuristics, stage scheduling, the execution engine, and the baseline
//!   systems (SystemML-S, single-node R, ScaLAPACK-sim, SciDB-sim).
//! * [`analyze`] — static analysis: program lints over the DSL AST and an
//!   independent plan-invariant verifier that re-derives Table-2 dependency
//!   types and per-step communication from scratch.
//! * [`stats`] — sparsity statistics: measured [`stats::SparsityProfile`]s
//!   and the MatFast-style nnz estimator the planner prices against.
//! * [`data`] — synthetic dataset generators standing in for the paper's
//!   Netflix and graph datasets.
//! * [`apps`] — the five evaluated applications: GNMF, PageRank, linear
//!   regression (conjugate gradient), collaborative filtering, and
//!   SVD/Lanczos.
//!
//! ## Quickstart
//!
//! ```
//! use dmac::prelude::*;
//!
//! // A 2-worker cluster with 2 local threads per worker, 8-wide blocks.
//! let mut session = Session::builder()
//!     .workers(2)
//!     .local_threads(2)
//!     .block_size(8)
//!     .build();
//!
//! // Express a program: X = A · Aᵀ, then scale it.
//! let mut prog = Program::new();
//! let a = prog.load("A", 64, 32, 0.2);
//! let x = prog.matmul(a, prog.t(a)).unwrap();
//! let y = prog.scale_const(x, 0.5).unwrap();
//! prog.output(y);
//!
//! // Plan with dependency analysis and run on the simulated cluster.
//! let a_data = dmac::data::uniform_sparse(64, 32, 0.2, 8, 42);
//! session.bind("A", a_data).unwrap();
//! let report = session.run(&prog).unwrap();
//! assert!(report.stage_count >= 1);
//! let result = session.value(y).unwrap();
//! assert_eq!(result.rows(), 64);
//! ```

#![forbid(unsafe_code)]

pub use dmac_analyze as analyze;
pub use dmac_apps as apps;
pub use dmac_cluster as cluster;
pub use dmac_core as core;
pub use dmac_data as data;
pub use dmac_lang as lang;
pub use dmac_matrix as matrix;
pub use dmac_serve as serve;
pub use dmac_stats as stats;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use dmac_analyze::{lint_program, lint_script, verify_planned, Diagnostic, Severity};
    pub use dmac_apps::{
        cf::CollaborativeFiltering, gnmf::Gnmf, linreg::LinearRegression, pagerank::PageRank,
        svd::SvdLanczos, triangles::TriangleCount,
    };
    pub use dmac_cluster::{ClusterConfig, CommStats, NetworkModel, PartitionScheme};
    pub use dmac_core::{
        baselines::SystemKind, engine::ExecReport, planner::PlannerConfig, Session,
    };
    pub use dmac_lang::{Expr, Program};
    pub use dmac_matrix::{AggregationMode, Block, BlockedMatrix, DenseBlock};
    pub use dmac_serve::{Client, Server, ServerConfig};
}
